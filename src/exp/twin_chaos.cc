#include "exp/twin_chaos.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "rt/live_validator.h"

namespace webtx {

namespace {

constexpr char kReplayHeader[] = "webtx-twin-replay v1";

// DeriveSeed coordinates of the twin harness's own seed streams
// (arbitrary but fixed; reproducers depend on them). Distinct from the
// sim and live chaos streams so the campaigns never alias.
constexpr uint64_t kTwinCaseStream = 0x7714CA5Eull;
constexpr uint64_t kTwinFaultStream = 0x7714FA17ull;
constexpr uint64_t kTwinForecastStream = 0x7714F05Eull;

std::string FormatDouble(double d) {
  std::ostringstream os;
  os << std::setprecision(17) << d;
  return os.str();
}

bool ParseU64(const std::string& text, uint64_t* out) {
  std::istringstream is(text);
  is >> *out;
  return !is.fail() && is.eof();
}

bool ParseDouble(const std::string& text, double* out) {
  std::istringstream is(text);
  is >> *out;
  return !is.fail() && is.eof();
}

const char* AdmissionName(rt::TwinCandidate::Admission a) {
  switch (a) {
    case rt::TwinCandidate::Admission::kNone:
      return "none";
    case rt::TwinCandidate::Admission::kQueueDepth:
      return "depth";
    case rt::TwinCandidate::Admission::kBrownout:
      return "brownout";
  }
  return "?";
}

// Applies `mutate` to a copy; commits it iff the failure still
// reproduces. Returns whether the simplification was kept.
template <typename Mutation>
bool TryMutation(TwinChaosCase& c, Mutation mutate,
                 const TwinChaosPredicate& still_fails) {
  TwinChaosCase candidate = c;
  mutate(candidate);
  if (!still_fails(candidate)) return false;
  c = std::move(candidate);
  return true;
}

}  // namespace

rt::TwinOptions TwinOptionsFor(const TwinChaosCase& c) {
  rt::TwinOptions options;
  options.num_workers = c.num_workers;
  options.candidates = c.candidates;
  options.static_index = c.static_index;
  options.controller_enabled = c.controller_enabled;
  options.control_interval = c.control_interval;
  options.forecast_horizon = c.forecast_horizon;
  options.switch_margin = c.switch_margin;
  options.dwell_ticks = c.dwell_ticks;
  options.shed_penalty = c.shed_penalty;
  options.divergence_tolerance = c.divergence_tolerance;
  options.divergence_abs_floor = c.divergence_abs_floor;
  options.shed_divergence = c.shed_divergence;
  options.guard_strikes = c.guard_strikes;
  options.guard_cooldown_ticks = c.guard_cooldown_ticks;
  options.forecast_seed = c.forecast_seed;
  options.snapshot_corruption = c.snapshot_corruption;
  options.forecast_threads = c.forecast_threads;
  options.pooled_forecasts = c.pooled_forecasts;
  options.pending_queue = c.pending_queue;
  options.txn_store = c.txn_store;
  options.prune = c.prune;
  options.prune_prefix = c.prune_prefix;
  options.faults.plan = c.fault;
  options.faults.latency_spike_prob = c.latency_spike_prob;
  options.faults.mean_latency_spike = c.mean_latency_spike;
  options.migration = c.fault.migration;
  options.watchdog = c.watchdog;
  options.watchdog_stall_seconds = c.watchdog_stall_seconds;
  options.retry_max_attempts = c.retry_max_attempts;
  options.retry_backoff = c.retry_backoff;
  options.retry_backoff_multiplier = c.retry_backoff_multiplier;
  options.retry_max_backoff = c.retry_max_backoff;
  options.retry_budget = c.retry_budget;
  return options;
}

Result<rt::TwinReport> RunTwinChaosCase(const TwinChaosCase& c) {
  if (c.num_tasks == 0) {
    return Status::InvalidArgument("twin chaos case has no tasks");
  }
  if (!(c.rate > 0.0) || !(c.mean_duration > 0.0)) {
    return Status::InvalidArgument("rate and mean_duration must be > 0");
  }
  LiveArrivalOptions workload;
  workload.shape = c.shape;
  workload.seed = c.workload_seed;
  workload.num_tasks = c.num_tasks;
  workload.rate = c.rate;
  workload.burstiness = c.burstiness;
  workload.on_off_mean_cycle = c.on_off_mean_cycle;
  workload.spike_factor = c.spike_factor;
  workload.spike_start = c.spike_start;
  workload.spike_duration = c.spike_duration;
  workload.mean_duration = c.mean_duration;
  workload.deadline_slack = c.deadline_slack;
  workload.max_weight = c.max_weight;
  const std::vector<LiveArrival> arrivals = GenerateLiveArrivals(workload);
  rt::Twin twin(TwinOptionsFor(c));
  return twin.Run(arrivals);
}

Status CheckTwinChaosInvariants(const TwinChaosCase& c,
                                const rt::TwinReport& report) {
  std::vector<std::string> violations;
  const rt::LiveValidationResult verdict = rt::ValidateLiveTrace(
      report.trace, report.tasks, report.outcomes, report.stats,
      report.validator_options);
  violations.insert(violations.end(), verdict.violations.begin(),
                    verdict.violations.end());

  // Controller contract.
  if (!c.controller_enabled && !report.decisions.empty()) {
    violations.push_back("decisions recorded with the controller disabled");
  }
  double prev_time = 0.0;
  size_t pending_cooldown = 0;
  for (size_t i = 0; i < report.decisions.size(); ++i) {
    const rt::TwinDecision& d = report.decisions[i];
    std::ostringstream at;
    at << "decision " << i << " (t=" << d.time << "): ";
    if (!(d.time > prev_time)) {
      violations.push_back(at.str() + "tick times not strictly increasing");
    }
    prev_time = d.time;
    if (d.applied >= c.candidates.size() || d.best >= c.candidates.size()) {
      violations.push_back(at.str() + "candidate index out of range");
      continue;
    }
    switch (d.kind) {
      case rt::TwinDecision::Kind::kFallback:
        if (d.applied != c.static_index) {
          violations.push_back(at.str() +
                               "fallback did not pin the static config");
        }
        pending_cooldown = c.guard_cooldown_ticks;
        break;
      case rt::TwinDecision::Kind::kCooldown:
      case rt::TwinDecision::Kind::kReenable: {
        if (pending_cooldown == 0) {
          violations.push_back(at.str() + "cooldown tick without a fallback");
          break;
        }
        --pending_cooldown;
        const bool last = pending_cooldown == 0;
        const bool is_reenable = d.kind == rt::TwinDecision::Kind::kReenable;
        if (last != is_reenable) {
          violations.push_back(at.str() + "cooldown/reenable out of order");
        }
        if (d.applied != c.static_index) {
          violations.push_back(at.str() + "left static during cooldown");
        }
        break;
      }
      case rt::TwinDecision::Kind::kHold:
      case rt::TwinDecision::Kind::kSwitch:
        if (pending_cooldown != 0) {
          violations.push_back(at.str() + "forecast tick during cooldown");
        }
        break;
    }
  }
  const size_t fallbacks = static_cast<size_t>(
      std::count_if(report.decisions.begin(), report.decisions.end(),
                    [](const rt::TwinDecision& d) {
                      return d.kind == rt::TwinDecision::Kind::kFallback;
                    }));
  if (fallbacks != report.fallbacks) {
    violations.push_back("fallback counter disagrees with the decision log");
  }

  if (violations.empty()) return Status();
  std::ostringstream os;
  os << violations.size() << " twin invariant violation(s):";
  const size_t show = std::min<size_t>(violations.size(), 3);
  for (size_t i = 0; i < show; ++i) os << " [" << violations[i] << "]";
  return Status::InvalidArgument(os.str());
}

std::string SerializeTwinChaosCase(const TwinChaosCase& c) {
  std::ostringstream os;
  os << kReplayHeader << "\n";
  os << "shape " << LiveArrivalShapeName(c.shape) << "\n";
  os << "workload_seed " << c.workload_seed << "\n";
  os << "num_tasks " << c.num_tasks << "\n";
  os << "rate " << FormatDouble(c.rate) << "\n";
  os << "burstiness " << FormatDouble(c.burstiness) << "\n";
  os << "on_off_mean_cycle " << FormatDouble(c.on_off_mean_cycle) << "\n";
  os << "spike_factor " << FormatDouble(c.spike_factor) << "\n";
  os << "spike_start " << FormatDouble(c.spike_start) << "\n";
  os << "spike_duration " << FormatDouble(c.spike_duration) << "\n";
  os << "mean_duration " << FormatDouble(c.mean_duration) << "\n";
  os << "deadline_slack " << FormatDouble(c.deadline_slack) << "\n";
  os << "max_weight " << c.max_weight << "\n";
  for (const rt::TwinCandidate& cand : c.candidates) {
    os << "candidate " << cand.policy << " " << AdmissionName(cand.admission)
       << " " << cand.max_ready << " " << FormatDouble(cand.capacity_slo)
       << "\n";
  }
  os << "static_index " << c.static_index << "\n";
  os << "controller_enabled " << (c.controller_enabled ? 1 : 0) << "\n";
  os << "control_interval " << FormatDouble(c.control_interval) << "\n";
  os << "forecast_horizon " << FormatDouble(c.forecast_horizon) << "\n";
  os << "switch_margin " << FormatDouble(c.switch_margin) << "\n";
  os << "dwell_ticks " << c.dwell_ticks << "\n";
  os << "shed_penalty " << FormatDouble(c.shed_penalty) << "\n";
  os << "divergence_tolerance " << FormatDouble(c.divergence_tolerance)
     << "\n";
  os << "divergence_abs_floor " << FormatDouble(c.divergence_abs_floor)
     << "\n";
  os << "shed_divergence " << FormatDouble(c.shed_divergence) << "\n";
  os << "guard_strikes " << c.guard_strikes << "\n";
  os << "guard_cooldown_ticks " << c.guard_cooldown_ticks << "\n";
  os << "forecast_seed " << c.forecast_seed << "\n";
  os << "snapshot_corruption " << FormatDouble(c.snapshot_corruption) << "\n";
  os << "forecast_threads " << c.forecast_threads << "\n";
  os << "pooled_forecasts " << (c.pooled_forecasts ? 1 : 0) << "\n";
  os << "pending_queue "
     << (c.pending_queue == PendingQueueImpl::kCalendarQueue ? "calendar"
                                                             : "heap")
     << "\n";
  os << "txn_store "
     << (c.txn_store == TxnStoreLayout::kArenaSoA ? "soa" : "vector") << "\n";
  os << "prune " << (c.prune ? 1 : 0) << "\n";
  os << "prune_prefix " << FormatDouble(c.prune_prefix) << "\n";
  os << "num_workers " << c.num_workers << "\n";
  os << "outage_rate " << FormatDouble(c.fault.outage_rate) << "\n";
  os << "mean_outage_duration " << FormatDouble(c.fault.mean_outage_duration)
     << "\n";
  os << "abort_rate " << FormatDouble(c.fault.abort_rate) << "\n";
  os << "crash_rate " << FormatDouble(c.fault.crash_rate) << "\n";
  os << "mean_repair_duration " << FormatDouble(c.fault.mean_repair_duration)
     << "\n";
  os << "migration " << MigrationPolicyName(c.fault.migration) << "\n";
  os << "correlated_crash_prob " << FormatDouble(c.fault.correlated_crash_prob)
     << "\n";
  os << "fault_seed " << c.fault.seed << "\n";
  os << "latency_spike_prob " << FormatDouble(c.latency_spike_prob) << "\n";
  os << "mean_latency_spike " << FormatDouble(c.mean_latency_spike) << "\n";
  os << "retry_max_attempts " << c.retry_max_attempts << "\n";
  os << "retry_backoff " << FormatDouble(c.retry_backoff) << "\n";
  os << "retry_backoff_multiplier "
     << FormatDouble(c.retry_backoff_multiplier) << "\n";
  os << "retry_max_backoff " << FormatDouble(c.retry_max_backoff) << "\n";
  os << "retry_budget " << c.retry_budget << "\n";
  os << "watchdog " << (c.watchdog ? 1 : 0) << "\n";
  os << "watchdog_stall_seconds " << FormatDouble(c.watchdog_stall_seconds)
     << "\n";
  return os.str();
}

Result<TwinChaosCase> ParseTwinChaosReplay(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  bool saw_header = false;
  TwinChaosCase c;
  c.candidates.clear();
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != kReplayHeader) {
        return Status::InvalidArgument("not a twin replay file: expected '" +
                                       std::string(kReplayHeader) +
                                       "', got '" + line + "'");
      }
      saw_header = true;
      continue;
    }
    const size_t space = line.find(' ');
    if (space == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 'key value', got '" + line +
                                     "'");
    }
    const std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    const auto bad = [&] {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad value for " + key + ": '" +
                                     value + "'");
    };
    uint64_t u = 0;
    if (key == "shape") {
      if (value == "poisson") {
        c.shape = LiveArrivalShape::kPoisson;
      } else if (value == "onoff") {
        c.shape = LiveArrivalShape::kOnOff;
      } else if (value == "flash") {
        c.shape = LiveArrivalShape::kFlashCrowd;
      } else {
        return bad();
      }
    } else if (key == "workload_seed") {
      if (!ParseU64(value, &c.workload_seed)) return bad();
    } else if (key == "num_tasks") {
      if (!ParseU64(value, &u)) return bad();
      c.num_tasks = u;
    } else if (key == "rate") {
      if (!ParseDouble(value, &c.rate)) return bad();
    } else if (key == "burstiness") {
      if (!ParseDouble(value, &c.burstiness)) return bad();
    } else if (key == "on_off_mean_cycle") {
      if (!ParseDouble(value, &c.on_off_mean_cycle)) return bad();
    } else if (key == "spike_factor") {
      if (!ParseDouble(value, &c.spike_factor)) return bad();
    } else if (key == "spike_start") {
      if (!ParseDouble(value, &c.spike_start)) return bad();
    } else if (key == "spike_duration") {
      if (!ParseDouble(value, &c.spike_duration)) return bad();
    } else if (key == "mean_duration") {
      if (!ParseDouble(value, &c.mean_duration)) return bad();
    } else if (key == "deadline_slack") {
      if (!ParseDouble(value, &c.deadline_slack)) return bad();
    } else if (key == "max_weight") {
      if (!ParseU64(value, &c.max_weight)) return bad();
    } else if (key == "candidate") {
      std::istringstream fields(value);
      rt::TwinCandidate cand;
      std::string admission;
      uint64_t max_ready = 0;
      if (!(fields >> cand.policy >> admission >> max_ready >>
            cand.capacity_slo) ||
          !fields.eof()) {
        return bad();
      }
      cand.max_ready = max_ready;
      if (admission == "none") {
        cand.admission = rt::TwinCandidate::Admission::kNone;
      } else if (admission == "depth") {
        cand.admission = rt::TwinCandidate::Admission::kQueueDepth;
      } else if (admission == "brownout") {
        cand.admission = rt::TwinCandidate::Admission::kBrownout;
      } else {
        return bad();
      }
      c.candidates.push_back(std::move(cand));
    } else if (key == "static_index") {
      if (!ParseU64(value, &u)) return bad();
      c.static_index = u;
    } else if (key == "controller_enabled") {
      if (!ParseU64(value, &u) || u > 1) return bad();
      c.controller_enabled = u == 1;
    } else if (key == "control_interval") {
      if (!ParseDouble(value, &c.control_interval)) return bad();
    } else if (key == "forecast_horizon") {
      if (!ParseDouble(value, &c.forecast_horizon)) return bad();
    } else if (key == "switch_margin") {
      if (!ParseDouble(value, &c.switch_margin)) return bad();
    } else if (key == "dwell_ticks") {
      if (!ParseU64(value, &u)) return bad();
      c.dwell_ticks = u;
    } else if (key == "shed_penalty") {
      if (!ParseDouble(value, &c.shed_penalty)) return bad();
    } else if (key == "divergence_tolerance") {
      if (!ParseDouble(value, &c.divergence_tolerance)) return bad();
    } else if (key == "divergence_abs_floor") {
      if (!ParseDouble(value, &c.divergence_abs_floor)) return bad();
    } else if (key == "shed_divergence") {
      if (!ParseDouble(value, &c.shed_divergence)) return bad();
    } else if (key == "guard_strikes") {
      if (!ParseU64(value, &u)) return bad();
      c.guard_strikes = u;
    } else if (key == "guard_cooldown_ticks") {
      if (!ParseU64(value, &u)) return bad();
      c.guard_cooldown_ticks = u;
    } else if (key == "forecast_seed") {
      if (!ParseU64(value, &c.forecast_seed)) return bad();
    } else if (key == "snapshot_corruption") {
      if (!ParseDouble(value, &c.snapshot_corruption)) return bad();
    } else if (key == "forecast_threads") {
      if (!ParseU64(value, &u)) return bad();
      c.forecast_threads = u;
    } else if (key == "pooled_forecasts") {
      if (!ParseU64(value, &u) || u > 1) return bad();
      c.pooled_forecasts = u == 1;
    } else if (key == "pending_queue") {
      if (value == "heap") {
        c.pending_queue = PendingQueueImpl::kBinaryHeap;
      } else if (value == "calendar") {
        c.pending_queue = PendingQueueImpl::kCalendarQueue;
      } else {
        return bad();
      }
    } else if (key == "txn_store") {
      if (value == "vector") {
        c.txn_store = TxnStoreLayout::kSpecVector;
      } else if (value == "soa") {
        c.txn_store = TxnStoreLayout::kArenaSoA;
      } else {
        return bad();
      }
    } else if (key == "prune") {
      if (!ParseU64(value, &u) || u > 1) return bad();
      c.prune = u == 1;
    } else if (key == "prune_prefix") {
      if (!ParseDouble(value, &c.prune_prefix)) return bad();
    } else if (key == "num_workers") {
      if (!ParseU64(value, &u)) return bad();
      c.num_workers = u;
    } else if (key == "outage_rate") {
      if (!ParseDouble(value, &c.fault.outage_rate)) return bad();
    } else if (key == "mean_outage_duration") {
      if (!ParseDouble(value, &c.fault.mean_outage_duration)) return bad();
    } else if (key == "abort_rate") {
      if (!ParseDouble(value, &c.fault.abort_rate)) return bad();
    } else if (key == "crash_rate") {
      if (!ParseDouble(value, &c.fault.crash_rate)) return bad();
    } else if (key == "mean_repair_duration") {
      if (!ParseDouble(value, &c.fault.mean_repair_duration)) return bad();
    } else if (key == "migration") {
      if (value == "warm") {
        c.fault.migration = MigrationPolicy::kWarm;
      } else if (value == "cold") {
        c.fault.migration = MigrationPolicy::kCold;
      } else {
        return bad();
      }
    } else if (key == "correlated_crash_prob") {
      if (!ParseDouble(value, &c.fault.correlated_crash_prob)) return bad();
    } else if (key == "fault_seed") {
      if (!ParseU64(value, &c.fault.seed)) return bad();
    } else if (key == "latency_spike_prob") {
      if (!ParseDouble(value, &c.latency_spike_prob)) return bad();
    } else if (key == "mean_latency_spike") {
      if (!ParseDouble(value, &c.mean_latency_spike)) return bad();
    } else if (key == "retry_max_attempts") {
      if (!ParseU64(value, &u)) return bad();
      c.retry_max_attempts = static_cast<uint32_t>(u);
    } else if (key == "retry_backoff") {
      if (!ParseDouble(value, &c.retry_backoff)) return bad();
    } else if (key == "retry_backoff_multiplier") {
      if (!ParseDouble(value, &c.retry_backoff_multiplier)) return bad();
    } else if (key == "retry_max_backoff") {
      if (!ParseDouble(value, &c.retry_max_backoff)) return bad();
    } else if (key == "retry_budget") {
      if (!ParseU64(value, &u)) return bad();
      c.retry_budget = u;
    } else if (key == "watchdog") {
      if (!ParseU64(value, &u) || u > 1) return bad();
      c.watchdog = u == 1;
    } else if (key == "watchdog_stall_seconds") {
      if (!ParseDouble(value, &c.watchdog_stall_seconds)) return bad();
    } else {
      // A replay must not silently lose a knob it doesn't understand.
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown key '" + key + "'");
    }
  }
  if (!saw_header) {
    return Status::InvalidArgument("empty replay file (no header)");
  }
  if (c.candidates.empty()) {
    return Status::InvalidArgument("twin replay has no candidate lines");
  }
  return c;
}

TwinChaosCase ShrinkTwinChaosCase(TwinChaosCase c,
                                  const TwinChaosPredicate& still_fails) {
  // Halve the workload first: every later probe re-runs the case (twice,
  // for the determinism audit), so a short horizon pays for the pass.
  while (c.num_tasks > 1 &&
         TryMutation(
             c, [](TwinChaosCase& x) { x.num_tasks /= 2; }, still_fails)) {
  }
  // Drop fault dimensions, least-suspect first.
  TryMutation(
      c,
      [](TwinChaosCase& x) {
        x.latency_spike_prob = 0.0;
        x.mean_latency_spike = 0.0;
      },
      still_fails);
  TryMutation(
      c, [](TwinChaosCase& x) { x.fault.abort_rate = 0.0; }, still_fails);
  TryMutation(
      c,
      [](TwinChaosCase& x) {
        x.watchdog = false;
        x.watchdog_stall_seconds = 0.0;
      },
      still_fails);
  TryMutation(
      c,
      [](TwinChaosCase& x) {
        x.fault.outage_rate = 0.0;
        x.fault.mean_outage_duration = 0.0;
      },
      still_fails);
  TryMutation(
      c,
      [](TwinChaosCase& x) {
        x.fault.crash_rate = 0.0;
        x.fault.mean_repair_duration = 0.0;
        x.fault.correlated_crash_prob = 0.0;
      },
      still_fails);
  TryMutation(
      c,
      [](TwinChaosCase& x) {
        x.retry_max_attempts = 1;
        x.retry_backoff = 0.0;
        x.retry_backoff_multiplier = 2.0;
        x.retry_max_backoff = 0.0;
        x.retry_budget = 0;
      },
      still_fails);
  // Make the model honest and the workload plain.
  TryMutation(
      c, [](TwinChaosCase& x) { x.snapshot_corruption = 1.0; }, still_fails);
  TryMutation(
      c, [](TwinChaosCase& x) { x.shape = LiveArrivalShape::kPoisson; },
      still_fails);
  TryMutation(c, [](TwinChaosCase& x) { x.max_weight = 1; }, still_fails);
  // Shrink the candidate table from the back (never dropping the static
  // config); with one candidate left, try disabling the controller
  // outright.
  while (c.candidates.size() > 1 &&
         TryMutation(
             c,
             [](TwinChaosCase& x) {
               const size_t victim = x.candidates.size() - 1;
               if (victim == x.static_index) {
                 std::swap(x.candidates[victim],
                           x.candidates[x.static_index == 0 ? 1 : 0]);
                 x.static_index = x.static_index == 0 ? 1 : 0;
               }
               x.candidates.pop_back();
               if (x.static_index >= x.candidates.size()) x.static_index = 0;
             },
             still_fails)) {
  }
  TryMutation(
      c, [](TwinChaosCase& x) { x.controller_enabled = false; }, still_fails);
  // Remove workers one at a time, then retry the workload halving.
  while (c.num_workers > 1 &&
         TryMutation(
             c, [](TwinChaosCase& x) { --x.num_workers; }, still_fails)) {
  }
  while (c.num_tasks > 1 &&
         TryMutation(
             c, [](TwinChaosCase& x) { x.num_tasks /= 2; }, still_fails)) {
  }
  return c;
}

TwinChaosCase RandomTwinChaosCase(uint64_t master_seed, uint64_t index) {
  Rng rng(DeriveSeed(master_seed, kTwinCaseStream, index));
  TwinChaosCase c;
  c.workload_seed = rng.Next();
  c.num_tasks = rng.NextInRange(40, 140);
  c.num_workers = rng.NextInRange(1, 4);
  c.mean_duration = 0.02 + 0.10 * rng.NextDouble();
  // Base load between 40% and 120% of capacity; the spike pushes far
  // beyond it — overload transitions are where the controller earns its
  // keep (and where a corrupted model visibly diverges).
  const double utilization = 0.4 + 0.8 * rng.NextDouble();
  c.rate = static_cast<double>(c.num_workers) * utilization / c.mean_duration;
  const double shape_draw = rng.NextDouble();
  if (shape_draw < 0.5) {
    c.shape = LiveArrivalShape::kFlashCrowd;
    c.spike_factor = 3.0 + 9.0 * rng.NextDouble();
    c.spike_start = 0.2 + 0.6 * rng.NextDouble();
    c.spike_duration = 0.2 + 0.8 * rng.NextDouble();
  } else if (shape_draw < 0.8) {
    c.shape = LiveArrivalShape::kOnOff;
    c.burstiness = 0.3 + 0.6 * rng.NextDouble();
    c.on_off_mean_cycle = 0.5 + 1.5 * rng.NextDouble();
  } else {
    c.shape = LiveArrivalShape::kPoisson;
  }
  c.deadline_slack = 0.5 + 3.0 * rng.NextDouble();
  c.max_weight = rng.NextDouble() < 0.5 ? 1 : 10;

  // Candidate table: static FCFS plus 1-3 alternatives.
  static const std::array<const char*, 4> kAltPolicies = {"EDF", "SRPT",
                                                          "HDF", "ASETS"};
  rt::TwinCandidate static_cand;
  static_cand.policy = "FCFS";
  c.candidates = {static_cand};
  const size_t num_alts = rng.NextInRange(1, 3);
  for (size_t i = 0; i < num_alts; ++i) {
    rt::TwinCandidate cand;
    cand.policy = kAltPolicies[rng.NextInRange(0, kAltPolicies.size() - 1)];
    const double admission_draw = rng.NextDouble();
    if (admission_draw < 0.4) {
      cand.admission = rt::TwinCandidate::Admission::kQueueDepth;
      cand.max_ready = rng.NextInRange(8, 48);
    } else if (admission_draw < 0.7) {
      cand.admission = rt::TwinCandidate::Admission::kBrownout;
      cand.capacity_slo =
          rng.NextDouble() < 0.5 ? 0.0 : 0.25 + 0.5 * rng.NextDouble();
    }
    c.candidates.push_back(std::move(cand));
  }
  c.static_index = 0;
  c.controller_enabled = rng.NextDouble() < 0.9;
  c.control_interval = 0.1 + 0.3 * rng.NextDouble();
  c.forecast_horizon = c.control_interval * (1.0 + 3.0 * rng.NextDouble());
  c.switch_margin = 0.05 + 0.2 * rng.NextDouble();
  c.dwell_ticks = rng.NextInRange(1, 3);
  c.shed_penalty = 0.5 + 2.0 * rng.NextDouble();
  c.guard_strikes = rng.NextInRange(1, 3);
  c.guard_cooldown_ticks = rng.NextInRange(1, 5);
  c.forecast_seed = DeriveSeed(master_seed, kTwinForecastStream, index);
  // A corrupted shadow model in a fifth of the cases: the guard must
  // catch it (and the validator must hold either way).
  const double corruption_draw = rng.NextDouble();
  if (corruption_draw < 0.1) {
    c.snapshot_corruption = 0.05 + 0.1 * rng.NextDouble();
  } else if (corruption_draw < 0.2) {
    c.snapshot_corruption = 4.0 + 8.0 * rng.NextDouble();
  }

  if (rng.NextDouble() < 0.6) {
    c.fault.crash_rate = 0.05 + 0.35 * rng.NextDouble();
    c.fault.mean_repair_duration = 0.2 + 1.3 * rng.NextDouble();
    c.fault.migration = rng.NextDouble() < 0.5 ? MigrationPolicy::kWarm
                                               : MigrationPolicy::kCold;
    if (rng.NextDouble() < 0.3) {
      c.fault.correlated_crash_prob = 0.1 + 0.6 * rng.NextDouble();
    }
  }
  if (rng.NextDouble() < 0.4) {
    c.fault.outage_rate = 0.03 + 0.2 * rng.NextDouble();
    c.fault.mean_outage_duration = 0.2 + 1.0 * rng.NextDouble();
    if (rng.NextDouble() < 0.6) {
      c.watchdog = true;
      c.watchdog_stall_seconds = 0.05 + 0.3 * rng.NextDouble();
    }
  }
  if (rng.NextDouble() < 0.4) {
    c.fault.abort_rate = 0.05 + 0.3 * rng.NextDouble();
  }
  if (rng.NextDouble() < 0.4) {
    c.latency_spike_prob = 0.1 + 0.3 * rng.NextDouble();
    c.mean_latency_spike = 0.01 + 0.05 * rng.NextDouble();
  }
  c.fault.seed = DeriveSeed(master_seed, kTwinFaultStream, index);
  c.retry_max_attempts = static_cast<uint32_t>(rng.NextInRange(1, 3));
  c.retry_backoff =
      rng.NextDouble() < 0.5 ? 0.0 : 0.01 + 0.1 * rng.NextDouble();
  c.retry_backoff_multiplier = 1.5 + 1.5 * rng.NextDouble();
  c.retry_max_backoff =
      rng.NextDouble() < 0.5 ? 0.0 : 0.05 + 0.3 * rng.NextDouble();
  c.retry_budget = rng.NextDouble() < 0.5 ? 0 : rng.NextInRange(4, 24);
  // Forecast-execution dimensions, drawn last so the case population
  // above is unchanged from earlier campaign versions. All of these are
  // digest-neutral by contract; the campaign's determinism audit and
  // neutrality sweep enforce it.
  const double threads_draw = rng.NextDouble();
  c.forecast_threads = threads_draw < 0.5 ? 1 : (threads_draw < 0.8 ? 2 : 8);
  c.pooled_forecasts = rng.NextDouble() < 0.8;
  c.pending_queue = rng.NextDouble() < 0.5 ? PendingQueueImpl::kBinaryHeap
                                           : PendingQueueImpl::kCalendarQueue;
  c.txn_store = rng.NextDouble() < 0.5 ? TxnStoreLayout::kSpecVector
                                       : TxnStoreLayout::kArenaSoA;
  if (rng.NextDouble() < 0.25) {
    c.prune = true;
    c.prune_prefix = 0.3 + 0.5 * rng.NextDouble();
  }
  return c;
}

Result<TwinChaosCampaignResult> RunTwinChaosCampaign(
    const TwinChaosCampaignOptions& options) {
  TwinChaosCampaignResult out;
  for (size_t i = 0; i < options.num_cases; ++i) {
    const TwinChaosCase c = RandomTwinChaosCase(options.master_seed, i);
    WEBTX_ASSIGN_OR_RETURN(rt::TwinReport first, RunTwinChaosCase(c));
    WEBTX_ASSIGN_OR_RETURN(rt::TwinReport second, RunTwinChaosCase(c));
    out.total_decisions += first.decisions.size();
    out.total_switches += first.switches;
    out.total_fallbacks += first.fallbacks;
    out.total_crashes += first.stats.crashes;
    out.total_migrations += first.stats.migrations;
    std::string verdict_text;
    bool mismatch = false;
    bool neutrality_broke = false;
    if (first.digest != second.digest) {
      mismatch = true;
      std::ostringstream os;
      os << "determinism: twin digests differ across identical runs ("
         << std::hex << first.digest << " vs " << second.digest << ")";
      verdict_text = os.str();
    } else {
      const Status verdict = CheckTwinChaosInvariants(c, first);
      if (!verdict.ok()) verdict_text = verdict.ToString();
    }
    if (verdict_text.empty() && c.controller_enabled) {
      // Digest-neutrality sweep: the forecast-execution knobs may only
      // change how fast the controller decides, never what it decides.
      // Re-run the case across forecast_threads 1/2/8 and with pooling
      // toggled; every digest must match the baseline.
      for (int variant_idx = 0; variant_idx < 3; ++variant_idx) {
        TwinChaosCase variant = c;
        std::string dim;
        if (variant_idx < 2) {
          const size_t threads[] = {c.forecast_threads == 1 ? 2u : 1u,
                                    c.forecast_threads == 8 ? 2u : 8u};
          variant.forecast_threads = threads[variant_idx];
          dim = "forecast_threads=" + std::to_string(variant.forecast_threads);
        } else {
          variant.pooled_forecasts = !c.pooled_forecasts;
          dim = variant.pooled_forecasts ? "pooled_forecasts=1"
                                         : "pooled_forecasts=0";
        }
        WEBTX_ASSIGN_OR_RETURN(rt::TwinReport swept, RunTwinChaosCase(variant));
        if (swept.digest != first.digest) {
          neutrality_broke = true;
          std::ostringstream os;
          os << "neutrality: " << dim << " changed the twin digest ("
             << std::hex << first.digest << " vs " << swept.digest << ")";
          verdict_text = os.str();
          break;
        }
      }
    }
    ++out.cases_run;
    if (options.progress) options.progress(i, verdict_text);
    if (verdict_text.empty()) continue;
    ++out.violations;
    if (mismatch) ++out.determinism_mismatches;
    if (neutrality_broke) ++out.neutrality_mismatches;
    if (out.violations > 1) continue;  // shrink only the first failure
    out.first_violation = verdict_text;
    const bool check_neutrality = neutrality_broke;
    const TwinChaosPredicate fails = [check_neutrality](
                                         const TwinChaosCase& x) {
      const auto a = RunTwinChaosCase(x);
      if (!a.ok()) return false;  // invalid shrink candidate
      const auto b = RunTwinChaosCase(x);
      if (!b.ok()) return false;
      if (a.ValueOrDie().digest != b.ValueOrDie().digest) return true;
      if (check_neutrality && x.controller_enabled) {
        for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
          TwinChaosCase v = x;
          v.forecast_threads = threads;
          const auto r = RunTwinChaosCase(v);
          if (r.ok() && r.ValueOrDie().digest != a.ValueOrDie().digest) {
            return true;
          }
        }
        TwinChaosCase v = x;
        v.pooled_forecasts = !x.pooled_forecasts;
        const auto r = RunTwinChaosCase(v);
        if (r.ok() && r.ValueOrDie().digest != a.ValueOrDie().digest) {
          return true;
        }
      }
      return !CheckTwinChaosInvariants(x, a.ValueOrDie()).ok();
    };
    out.first_reproducer = ShrinkTwinChaosCase(c, fails);
    if (!options.reproducer_path.empty()) {
      std::ofstream file(options.reproducer_path);
      file << SerializeTwinChaosCase(out.first_reproducer);
      if (!file.good()) {
        return Status::IOError("cannot write reproducer to " +
                               options.reproducer_path);
      }
    }
  }
  return out;
}

}  // namespace webtx
