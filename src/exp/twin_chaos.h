#ifndef WEBTX_EXP_TWIN_CHAOS_H_
#define WEBTX_EXP_TWIN_CHAOS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "rt/twin.h"
#include "sim/fault_plan.h"
#include "workload/live_arrivals.h"

namespace webtx {

/// One randomized digital-twin scenario (rt/twin.h) under a
/// VirtualClock: a seeded open-loop workload (Poisson / bursty ON-OFF /
/// flash crowd) served by the live executor while the shadow-simulator
/// controller forecasts, switches, and — when the model is corrupted —
/// falls back. Every knob is a value, so a case serializes to a replay
/// file and re-runs digest-identically (the twin counterpart of
/// exp/live_chaos.h; the digest additionally covers the controller's
/// decision log).
struct TwinChaosCase {
  // -- Workload shape (all draws derive from workload_seed) --
  LiveArrivalShape shape = LiveArrivalShape::kFlashCrowd;
  uint64_t workload_seed = 1;
  size_t num_tasks = 80;
  double rate = 100.0;
  double burstiness = 0.5;        // kOnOff
  double on_off_mean_cycle = 2.0;
  double spike_factor = 8.0;      // kFlashCrowd
  double spike_start = 0.5;
  double spike_duration = 0.5;
  double mean_duration = 0.05;
  double deadline_slack = 2.0;
  uint64_t max_weight = 1;

  // -- Controller configuration --
  std::vector<rt::TwinCandidate> candidates;
  size_t static_index = 0;
  bool controller_enabled = true;
  double control_interval = 0.25;
  double forecast_horizon = 0.5;
  double switch_margin = 0.1;
  size_t dwell_ticks = 2;
  double shed_penalty = 1.0;
  double divergence_tolerance = 2.0;
  double divergence_abs_floor = 0.05;
  double shed_divergence = 0.5;
  size_t guard_strikes = 2;
  size_t guard_cooldown_ticks = 4;
  uint64_t forecast_seed = 2009;
  double snapshot_corruption = 1.0;

  // -- Forecast execution (decision-loop cost knobs) --
  // Digest-neutral by contract (rt::TwinOptions); the campaign sweeps
  // them and the determinism audit is the enforcement.
  size_t forecast_threads = 1;
  bool pooled_forecasts = true;
  PendingQueueImpl pending_queue = PendingQueueImpl::kBinaryHeap;
  TxnStoreLayout txn_store = TxnStoreLayout::kSpecVector;
  bool prune = false;
  double prune_prefix = 0.4;

  // -- Executor configuration --
  size_t num_workers = 2;
  FaultPlanConfig fault;
  double latency_spike_prob = 0.0;
  double mean_latency_spike = 0.0;
  uint32_t retry_max_attempts = 1;
  double retry_backoff = 0.0;
  double retry_backoff_multiplier = 2.0;
  double retry_max_backoff = 0.0;
  size_t retry_budget = 0;
  bool watchdog = false;
  double watchdog_stall_seconds = 0.0;
};

/// Maps a case onto the twin's option struct (exposed so tools and
/// benches configure runs the exact way the campaign does).
rt::TwinOptions TwinOptionsFor(const TwinChaosCase& c);

/// Executes one case to quiescence and returns the twin's full report.
Result<rt::TwinReport> RunTwinChaosCase(const TwinChaosCase& c);

/// Audits a run: the live-trace invariants (rt/live_validator.h) plus
/// the controller contract — decision times strictly increasing on the
/// tick grid, applied indices in range, every fallback pinning the
/// static configuration and entering its cooldown. Ok iff no
/// violations.
Status CheckTwinChaosInvariants(const TwinChaosCase& c,
                                const rt::TwinReport& report);

/// Replay file round-trip: "key value" lines under a versioned header.
/// Candidates serialize as repeated `candidate <policy> <admission>
/// <max_ready> <capacity_slo>` lines in table order. Unknown keys are
/// an error (a replay must not silently lose a knob).
std::string SerializeTwinChaosCase(const TwinChaosCase& c);
Result<TwinChaosCase> ParseTwinChaosReplay(const std::string& text);

/// True when the (shrunk) case still exhibits the failure being chased.
using TwinChaosPredicate = std::function<bool(const TwinChaosCase&)>;

/// Greedy shrink: fewer tasks, dropped fault streams, an honest model,
/// a smaller candidate table, fewer workers — keeping only mutations
/// under which `still_fails` holds.
TwinChaosCase ShrinkTwinChaosCase(TwinChaosCase c,
                                  const TwinChaosPredicate& still_fails);

/// The `index`-th case of a campaign, derived deterministically from
/// `master_seed` (biased toward flash crowds and occasional corrupted
/// models — the guard is the point of the harness).
TwinChaosCase RandomTwinChaosCase(uint64_t master_seed, uint64_t index);

struct TwinChaosCampaignOptions {
  uint64_t master_seed = 1;
  size_t num_cases = 50;
  /// When non-empty, the shrunk reproducer of the first failure is
  /// written here as a replay file.
  std::string reproducer_path;
  /// Progress hook: case index and its verdict ("" = passed).
  std::function<void(size_t, const std::string&)> progress;
};

struct TwinChaosCampaignResult {
  size_t cases_run = 0;
  size_t violations = 0;
  /// Cases whose two runs produced different digests — the determinism
  /// contract (trace + decision log) broke. Counted in `violations` too.
  size_t determinism_mismatches = 0;
  /// Cases where re-running with a different forecast_threads (1/2/8)
  /// or with pooling toggled changed the digest — the digest-neutrality
  /// contract of the forecast-execution knobs broke. Counted in
  /// `violations` too.
  size_t neutrality_mismatches = 0;
  std::string first_violation;
  TwinChaosCase first_reproducer;
  // Aggregate controller exposure, to prove the campaign exercised the
  // loop (and its guard), not just the executor.
  size_t total_decisions = 0;
  size_t total_switches = 0;
  size_t total_fallbacks = 0;
  size_t total_crashes = 0;
  size_t total_migrations = 0;
};

/// Runs `num_cases` random cases. Every case is executed TWICE: the two
/// digests must match (determinism audit) and the first run must pass
/// the invariants. The first failing case is shrunk and (optionally)
/// written as a reproducer.
Result<TwinChaosCampaignResult> RunTwinChaosCampaign(
    const TwinChaosCampaignOptions& options);

}  // namespace webtx

#endif  // WEBTX_EXP_TWIN_CHAOS_H_
