#include "exp/chaos.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sched/admission.h"
#include "sched/policy_factory.h"
#include "sim/schedule_validator.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace webtx {

namespace {

constexpr char kReplayHeader[] = "webtx-chaos-replay v1";

// DeriveSeed coordinates carving out the chaos harness's own seed
// streams (arbitrary but fixed; reproducers depend on them).
constexpr uint64_t kChaosCaseStream = 0xCA05;
constexpr uint64_t kChaosFaultStream = 0xFA17;

WorkloadSpec SpecFor(const ChaosCase& c) {
  WorkloadSpec spec;
  spec.num_transactions = c.num_transactions;
  spec.utilization = c.utilization;
  spec.max_weight = c.max_weight;
  spec.max_workflow_length = c.max_workflow_length;
  spec.max_workflows_per_txn = c.max_workflows_per_txn;
  spec.burstiness = c.burstiness;
  spec.estimate_error = c.estimate_error;
  return spec;
}

Result<std::vector<TransactionSpec>> GenerateWorkload(const ChaosCase& c) {
  WEBTX_ASSIGN_OR_RETURN(WorkloadGenerator gen,
                         WorkloadGenerator::Create(SpecFor(c)));
  return gen.Generate(c.workload_seed);
}

// One FNV-1a step per byte of `v`, little-endian, so the digest is
// platform-stable.
uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Bits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::string FormatDouble(double d) {
  std::ostringstream os;
  os << std::setprecision(17) << d;
  return os.str();
}

bool ParseU64(const std::string& text, uint64_t* out) {
  std::istringstream is(text);
  is >> *out;
  return !is.fail() && is.eof();
}

bool ParseDouble(const std::string& text, double* out) {
  std::istringstream is(text);
  is >> *out;
  return !is.fail() && is.eof();
}

// Applies `mutate` to a copy; commits it iff the failure still
// reproduces. Returns whether the simplification was kept.
template <typename Mutation>
bool TryMutation(ChaosCase& c, Mutation mutate,
                 const ChaosPredicate& still_fails) {
  ChaosCase candidate = c;
  mutate(candidate);
  if (!still_fails(candidate)) return false;
  c = std::move(candidate);
  return true;
}

// The draw ordinal (per-server draw order) of the `index`-th *surviving*
// window on `server`, given the suppression keys already committed.
// Suppressed ordinals are drawn-and-discarded (sim/fault_plan.h), so
// they still occupy their slot in draw order but never show up in the
// observed window stream.
uint32_t SurvivorOrdinal(const std::vector<uint64_t>& suppressed,
                         uint32_t server, size_t index) {
  std::vector<uint32_t> dropped;
  for (const uint64_t key : suppressed) {
    if (FaultOrdinalServer(key) == server) {
      dropped.push_back(FaultOrdinalIndex(key));
    }
  }
  std::sort(dropped.begin(), dropped.end());
  size_t survivors = 0;
  for (uint32_t ordinal = 0;; ++ordinal) {
    if (std::binary_search(dropped.begin(), dropped.end(), ordinal)) continue;
    if (survivors == index) return ordinal;
    ++survivors;
  }
}

}  // namespace

Result<RunResult> RunChaosCase(const ChaosCase& c) {
  WEBTX_ASSIGN_OR_RETURN(std::vector<TransactionSpec> txns,
                         GenerateWorkload(c));
  SimOptions options;
  options.num_servers = c.num_servers;
  options.record_outcomes = true;
  options.record_schedule = true;
  options.retry = c.retry;
  options.pending_queue = c.pending_queue;
  options.txn_store = c.txn_store;
  WEBTX_ASSIGN_OR_RETURN(options.fault_plan, FaultPlan::Create(c.fault));
  if (c.admission_max_ready > 0) {
    QueueDepthAdmissionOptions admission;
    admission.max_ready = c.admission_max_ready;
    options.admission = MakeQueueDepthAdmission(admission);
  }
  WEBTX_ASSIGN_OR_RETURN(auto policy, CreatePolicy(c.policy));
  WEBTX_ASSIGN_OR_RETURN(
      Simulator sim, Simulator::Create(std::move(txns), std::move(options)));
  return sim.Run(*policy);
}

Status CheckChaosInvariants(const ChaosCase& c, const RunResult& result) {
  auto txns = GenerateWorkload(c);
  if (!txns.ok()) return txns.status();
  ValidationOptions options;
  options.num_servers = c.num_servers;
  options.outages = result.outages;
  options.crashes = result.crashes;
  options.migration = c.fault.migration;
  return ValidateSchedule(txns.ValueOrDie(), result, options);
}

uint64_t ScheduleDigest(const RunResult& result) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  h = Fnv1a(h, result.schedule.size());
  for (const ScheduleSegment& s : result.schedule) {
    h = Fnv1a(h, s.txn);
    h = Fnv1a(h, s.server);
    h = Fnv1a(h, Bits(s.start));
    h = Fnv1a(h, Bits(s.end));
    h = Fnv1a(h, s.attempt);
  }
  h = Fnv1a(h, result.outcomes.size());
  for (const TxnOutcome& o : result.outcomes) {
    h = Fnv1a(h, static_cast<uint64_t>(o.fate));
    h = Fnv1a(h, Bits(o.finish));
    h = Fnv1a(h, o.aborts);
    h = Fnv1a(h, o.migrations);
  }
  for (const uint64_t v :
       {result.num_completed, result.num_shed, result.num_dropped_retries,
        result.num_dropped_dependency, result.num_aborts, result.num_retries,
        result.retry_storm_suppressed, result.num_outages, result.num_crashes,
        result.num_migrations}) {
    h = Fnv1a(h, v);
  }
  return h;
}

std::string SerializeChaosCase(const ChaosCase& c) {
  std::ostringstream os;
  os << kReplayHeader << "\n";
  os << "workload_seed " << c.workload_seed << "\n";
  os << "num_transactions " << c.num_transactions << "\n";
  os << "utilization " << FormatDouble(c.utilization) << "\n";
  os << "max_weight " << c.max_weight << "\n";
  os << "max_workflow_length " << c.max_workflow_length << "\n";
  os << "max_workflows_per_txn " << c.max_workflows_per_txn << "\n";
  os << "burstiness " << FormatDouble(c.burstiness) << "\n";
  os << "estimate_error " << FormatDouble(c.estimate_error) << "\n";
  os << "num_servers " << c.num_servers << "\n";
  os << "policy " << c.policy << "\n";
  os << "outage_rate " << FormatDouble(c.fault.outage_rate) << "\n";
  os << "mean_outage_duration " << FormatDouble(c.fault.mean_outage_duration)
     << "\n";
  os << "abort_rate " << FormatDouble(c.fault.abort_rate) << "\n";
  os << "crash_rate " << FormatDouble(c.fault.crash_rate) << "\n";
  os << "mean_repair_duration " << FormatDouble(c.fault.mean_repair_duration)
     << "\n";
  os << "migration " << MigrationPolicyName(c.fault.migration) << "\n";
  os << "correlated_crash_prob "
     << FormatDouble(c.fault.correlated_crash_prob) << "\n";
  os << "fault_seed " << c.fault.seed << "\n";
  os << "retry_max_attempts " << c.retry.max_attempts << "\n";
  os << "retry_backoff " << FormatDouble(c.retry.backoff) << "\n";
  os << "retry_backoff_multiplier "
     << FormatDouble(c.retry.backoff_multiplier) << "\n";
  os << "retry_max_backoff " << FormatDouble(c.retry.max_backoff) << "\n";
  os << "admission_max_ready " << c.admission_max_ready << "\n";
  // Structure knobs only when non-default: historical replay files (and
  // their byte-for-byte reserialization) predate these keys.
  if (c.pending_queue != PendingQueueImpl::kBinaryHeap) {
    os << "pending_queue wheel\n";
  }
  if (c.txn_store != TxnStoreLayout::kSpecVector) {
    os << "txn_store soa\n";
  }
  for (const uint64_t key : c.fault.suppressed_crashes) {
    os << "suppress_crash " << FaultOrdinalServer(key) << " "
       << FaultOrdinalIndex(key) << "\n";
  }
  for (const uint64_t key : c.fault.suppressed_outages) {
    os << "suppress_outage " << FaultOrdinalServer(key) << " "
       << FaultOrdinalIndex(key) << "\n";
  }
  return os.str();
}

Result<ChaosCase> ParseChaosReplay(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  bool saw_header = false;
  ChaosCase c;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != kReplayHeader) {
        return Status::InvalidArgument("not a chaos replay file: expected '" +
                                       std::string(kReplayHeader) +
                                       "', got '" + line + "'");
      }
      saw_header = true;
      continue;
    }
    const size_t space = line.find(' ');
    if (space == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 'key value', got '" + line +
                                     "'");
    }
    const std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    const auto bad = [&] {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad value for " + key + ": '" +
                                     value + "'");
    };
    uint64_t u = 0;
    double d = 0.0;
    if (key == "workload_seed") {
      if (!ParseU64(value, &c.workload_seed)) return bad();
    } else if (key == "num_transactions") {
      if (!ParseU64(value, &u)) return bad();
      c.num_transactions = u;
    } else if (key == "utilization") {
      if (!ParseDouble(value, &c.utilization)) return bad();
    } else if (key == "max_weight") {
      if (!ParseU64(value, &c.max_weight)) return bad();
    } else if (key == "max_workflow_length") {
      if (!ParseU64(value, &u)) return bad();
      c.max_workflow_length = u;
    } else if (key == "max_workflows_per_txn") {
      if (!ParseU64(value, &u)) return bad();
      c.max_workflows_per_txn = u;
    } else if (key == "burstiness") {
      if (!ParseDouble(value, &c.burstiness)) return bad();
    } else if (key == "estimate_error") {
      if (!ParseDouble(value, &c.estimate_error)) return bad();
    } else if (key == "num_servers") {
      if (!ParseU64(value, &u)) return bad();
      c.num_servers = u;
    } else if (key == "policy") {
      c.policy = value;
    } else if (key == "outage_rate") {
      if (!ParseDouble(value, &c.fault.outage_rate)) return bad();
    } else if (key == "mean_outage_duration") {
      if (!ParseDouble(value, &c.fault.mean_outage_duration)) return bad();
    } else if (key == "abort_rate") {
      if (!ParseDouble(value, &c.fault.abort_rate)) return bad();
    } else if (key == "crash_rate") {
      if (!ParseDouble(value, &c.fault.crash_rate)) return bad();
    } else if (key == "mean_repair_duration") {
      if (!ParseDouble(value, &c.fault.mean_repair_duration)) return bad();
    } else if (key == "migration") {
      if (value == "warm") {
        c.fault.migration = MigrationPolicy::kWarm;
      } else if (value == "cold") {
        c.fault.migration = MigrationPolicy::kCold;
      } else {
        return bad();
      }
    } else if (key == "correlated_crash_prob") {
      if (!ParseDouble(value, &c.fault.correlated_crash_prob)) return bad();
    } else if (key == "fault_seed") {
      if (!ParseU64(value, &c.fault.seed)) return bad();
    } else if (key == "retry_max_attempts") {
      if (!ParseU64(value, &u)) return bad();
      c.retry.max_attempts = static_cast<uint32_t>(u);
    } else if (key == "retry_backoff") {
      if (!ParseDouble(value, &c.retry.backoff)) return bad();
    } else if (key == "retry_backoff_multiplier") {
      if (!ParseDouble(value, &c.retry.backoff_multiplier)) return bad();
    } else if (key == "retry_max_backoff") {
      if (!ParseDouble(value, &c.retry.max_backoff)) return bad();
    } else if (key == "admission_max_ready") {
      if (!ParseU64(value, &u)) return bad();
      c.admission_max_ready = u;
    } else if (key == "pending_queue") {
      if (value == "heap") {
        c.pending_queue = PendingQueueImpl::kBinaryHeap;
      } else if (value == "wheel") {
        c.pending_queue = PendingQueueImpl::kCalendarQueue;
      } else {
        return bad();
      }
    } else if (key == "txn_store") {
      if (value == "vec") {
        c.txn_store = TxnStoreLayout::kSpecVector;
      } else if (value == "soa") {
        c.txn_store = TxnStoreLayout::kArenaSoA;
      } else {
        return bad();
      }
    } else if (key == "suppress_crash" || key == "suppress_outage") {
      // "<server> <draw ordinal>": one suppressed natural fault window.
      const size_t sep = value.find(' ');
      uint64_t server = 0;
      uint64_t ordinal = 0;
      if (sep == std::string::npos ||
          !ParseU64(value.substr(0, sep), &server) ||
          !ParseU64(value.substr(sep + 1), &ordinal) ||
          server > 0xffffffffULL || ordinal > 0xffffffffULL) {
        return bad();
      }
      auto& list = key == "suppress_crash" ? c.fault.suppressed_crashes
                                           : c.fault.suppressed_outages;
      list.push_back(EncodeFaultOrdinal(static_cast<uint32_t>(server),
                                        static_cast<uint32_t>(ordinal)));
    } else {
      // A replay must not silently lose a knob it doesn't understand.
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown key '" + key + "'");
    }
    (void)d;
  }
  if (!saw_header) {
    return Status::InvalidArgument("empty replay file (no header)");
  }
  return c;
}

ChaosCase ShrinkChaosCase(ChaosCase c, const ChaosPredicate& still_fails) {
  // Halve the horizon first: every later probe re-runs the case, so
  // shrinking the workload early makes the rest of the pass cheap.
  while (c.num_transactions > 1 &&
         TryMutation(
             c, [](ChaosCase& x) { x.num_transactions /= 2; }, still_fails)) {
  }
  // Drop whole fault streams, least-suspect first, so the surviving
  // config names the stream that matters.
  TryMutation(
      c, [](ChaosCase& x) { x.fault.abort_rate = 0.0; }, still_fails);
  TryMutation(
      c,
      [](ChaosCase& x) {
        x.fault.outage_rate = 0.0;
        x.fault.mean_outage_duration = 0.0;
      },
      still_fails);
  TryMutation(
      c, [](ChaosCase& x) { x.fault.correlated_crash_prob = 0.0; },
      still_fails);
  TryMutation(
      c,
      [](ChaosCase& x) {
        // Correlated mode cannot outlive the crash stream it rides on.
        x.fault.crash_rate = 0.0;
        x.fault.mean_repair_duration = 0.0;
        x.fault.correlated_crash_prob = 0.0;
      },
      still_fails);
  // Disable the reactive machinery.
  TryMutation(
      c, [](ChaosCase& x) { x.admission_max_ready = 0; }, still_fails);
  TryMutation(
      c, [](ChaosCase& x) { x.retry = RetryOptions{}; }, still_fails);
  // Level the workload shape.
  TryMutation(
      c, [](ChaosCase& x) { x.estimate_error = 0.0; }, still_fails);
  TryMutation(c, [](ChaosCase& x) { x.burstiness = 0.0; }, still_fails);
  TryMutation(c, [](ChaosCase& x) { x.max_weight = 1; }, still_fails);
  TryMutation(
      c,
      [](ChaosCase& x) {
        x.max_workflow_length = 1;
        x.max_workflows_per_txn = 1;
      },
      still_fails);
  // Remove servers one at a time.
  while (c.num_servers > 1 &&
         TryMutation(
             c, [](ChaosCase& x) { --x.num_servers; }, still_fails)) {
  }
  // Bisect the fault timeline itself: drop individual natural crash /
  // outage instants that survived the whole-stream passes. Suppression
  // is draw-and-discard, so removing one window leaves every other
  // window's RNG draws — and the rest of the timeline — byte-identical;
  // every window still standing afterwards is load-bearing. Each
  // accepted drop restarts the pass from a fresh run: suppressing a
  // window can change the horizon (and so which later windows begin).
  const auto bisect_windows =
      [&](std::vector<uint64_t> FaultPlanConfig::*list,
          std::vector<OutageWindow> RunResult::*windows, bool enabled) {
        if (!enabled) return;
        constexpr size_t kMaxProbes = 64;  // rerun budget on huge timelines
        size_t probes = 0;
        bool progress = true;
        while (progress && probes < kMaxProbes) {
          progress = false;
          const auto run = RunChaosCase(c);
          if (!run.ok()) return;
          const std::vector<OutageWindow>& observed = run.ValueOrDie().*windows;
          std::vector<size_t> seen(c.num_servers, 0);
          for (const OutageWindow& w : observed) {
            const size_t index = seen[w.server]++;
            if (probes >= kMaxProbes) break;
            ++probes;
            const uint32_t ordinal =
                SurvivorOrdinal(c.fault.*list, w.server, index);
            if (TryMutation(
                    c,
                    [&](ChaosCase& x) {
                      (x.fault.*list)
                          .push_back(EncodeFaultOrdinal(w.server, ordinal));
                    },
                    still_fails)) {
              progress = true;
              break;  // survivor indices shifted; remap from a fresh run
            }
          }
        }
      };
  // Natural crash windows can only be told apart from correlated
  // (forced) ones when correlated mode is off: RunResult::crashes mixes
  // both, and a forced crash owns no draw ordinal to suppress.
  bisect_windows(
      &FaultPlanConfig::suppressed_crashes, &RunResult::crashes,
      c.fault.crash_rate > 0.0 && c.fault.correlated_crash_prob == 0.0);
  bisect_windows(&FaultPlanConfig::suppressed_outages, &RunResult::outages,
                 c.fault.outage_rate > 0.0);
  // The dropped streams, servers, and fault instants may have freed
  // slack for another round of horizon halving.
  while (c.num_transactions > 1 &&
         TryMutation(
             c, [](ChaosCase& x) { x.num_transactions /= 2; }, still_fails)) {
  }
  return c;
}

ChaosCase RandomChaosCase(uint64_t master_seed, uint64_t index) {
  Rng rng(DeriveSeed(master_seed, kChaosCaseStream, index));
  static const std::array<const char*, 8> kPolicies = {
      "FCFS",  "EDF",    "SRPT",
      "HDF",   "ASETS",  "ASETS*",
      "ASETS-BA(count=0.05)", "ASETS*-BA(time=0.005)"};
  ChaosCase c;
  c.policy = kPolicies[rng.NextInRange(0, kPolicies.size() - 1)];
  c.workload_seed = rng.Next();
  c.num_transactions = rng.NextInRange(40, 240);
  c.utilization = 0.3 + 1.2 * rng.NextDouble();
  c.num_servers = rng.NextInRange(1, 4);
  c.max_workflow_length = rng.NextInRange(1, 4);
  c.max_workflows_per_txn = rng.NextInRange(1, 2);
  c.max_weight = rng.NextDouble() < 0.5 ? 1 : 10;
  c.burstiness = rng.NextDouble() < 0.5 ? 0.0 : 0.5 * rng.NextDouble();
  c.estimate_error = rng.NextDouble() < 0.5 ? 0.0 : 0.3 * rng.NextDouble();
  // Crash streams are the point of this harness: most cases get one.
  if (rng.NextDouble() < 0.85) {
    c.fault.crash_rate = 0.002 + 0.03 * rng.NextDouble();
    c.fault.mean_repair_duration = 5.0 + 75.0 * rng.NextDouble();
    c.fault.migration = rng.NextDouble() < 0.5 ? MigrationPolicy::kWarm
                                               : MigrationPolicy::kCold;
    if (rng.NextDouble() < 0.4) {
      c.fault.correlated_crash_prob = 0.1 + 0.8 * rng.NextDouble();
    }
  }
  if (rng.NextDouble() < 0.4) {
    c.fault.outage_rate = 0.001 + 0.015 * rng.NextDouble();
    c.fault.mean_outage_duration = 5.0 + 45.0 * rng.NextDouble();
  }
  if (rng.NextDouble() < 0.5) {
    c.fault.abort_rate = 0.002 + 0.04 * rng.NextDouble();
  }
  c.fault.seed = DeriveSeed(master_seed, kChaosFaultStream, index);
  c.retry.max_attempts = static_cast<uint32_t>(rng.NextInRange(1, 5));
  c.retry.backoff =
      rng.NextDouble() < 0.5 ? 0.0 : 0.5 + 3.5 * rng.NextDouble();
  c.retry.backoff_multiplier = 1.5 + 1.5 * rng.NextDouble();
  c.retry.max_backoff =
      rng.NextDouble() < 0.5 ? 0.0 : 10.0 + 40.0 * rng.NextDouble();
  c.admission_max_ready =
      rng.NextDouble() < 0.6 ? 0 : rng.NextInRange(8, 64);
  return c;
}

Result<ChaosCampaignResult> RunChaosCampaign(
    const ChaosCampaignOptions& options) {
  ChaosCampaignResult out;
  for (size_t i = 0; i < options.num_cases; ++i) {
    const ChaosCase c = RandomChaosCase(options.master_seed, i);
    WEBTX_ASSIGN_OR_RETURN(RunResult result, RunChaosCase(c));
    out.total_crashes += result.num_crashes;
    out.total_migrations += result.num_migrations;
    out.total_aborts += result.num_aborts;
    out.total_outages += result.num_outages;
    const Status verdict = CheckChaosInvariants(c, result);
    ++out.cases_run;
    if (options.progress) {
      options.progress(i, verdict.ok() ? std::string() : verdict.ToString());
    }
    if (verdict.ok()) continue;
    ++out.violations;
    if (out.violations > 1) continue;  // shrink only the first failure
    out.first_violation = verdict.ToString();
    const ChaosPredicate fails = [](const ChaosCase& x) {
      auto rerun = RunChaosCase(x);
      if (!rerun.ok()) return false;  // invalid shrink candidate
      return !CheckChaosInvariants(x, rerun.ValueOrDie()).ok();
    };
    out.first_reproducer = ShrinkChaosCase(c, fails);
    if (!options.reproducer_path.empty()) {
      std::ofstream file(options.reproducer_path);
      file << SerializeChaosCase(out.first_reproducer);
      if (!file.good()) {
        return Status::IOError("cannot write reproducer to " +
                               options.reproducer_path);
      }
    }
  }
  return out;
}

}  // namespace webtx
