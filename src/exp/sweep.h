#ifndef WEBTX_EXP_SWEEP_H_
#define WEBTX_EXP_SWEEP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sched/scheduler_policy.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "workload/spec.h"

namespace webtx {

/// One utilization x policy cell, averaged over seeds (the paper reports
/// "the averages of five runs for each experiment setting", Sec. IV-A).
struct SweepCell {
  double utilization = 0.0;
  std::string policy;
  double avg_tardiness = 0.0;
  double avg_weighted_tardiness = 0.0;
  double max_tardiness = 0.0;
  double max_weighted_tardiness = 0.0;
  double miss_ratio = 0.0;
  double avg_response = 0.0;
  /// Robustness metrics (a failure-free sweep reports goodput 1 and
  /// ratios 0): fraction of transactions completed, shed by admission
  /// control, and dropped (retry budget spent or failed dependency).
  double goodput = 0.0;
  double shed_ratio = 0.0;
  double drop_ratio = 0.0;
  /// Sample standard deviations across seeds, for error bars.
  double avg_tardiness_stddev = 0.0;
  double avg_weighted_tardiness_stddev = 0.0;
};

/// Called as workload instances complete: `completed` out of `total`
/// (utilization, replication) instances are done. Invoked from worker
/// threads, but never concurrently (the engine serializes calls);
/// completion order varies run to run, so only `completed / total` is
/// meaningful — never use the callback to infer which cell finished.
using SweepProgressFn = std::function<void(size_t completed, size_t total)>;

/// A utilization sweep over a set of policies, the workhorse behind every
/// figure in Sec. IV.
struct SweepConfig {
  /// Workload template; `utilization` is overridden per sweep point.
  WorkloadSpec base;
  /// Utilization values to sweep (paper: 0.1 .. 1.0).
  std::vector<double> utilizations;
  /// Policy specs understood by CreatePolicy (sched/policy_factory.h).
  std::vector<std::string> policies;
  /// Seeds averaged per cell (paper: five runs). Each seed is the `base`
  /// of DeriveSeed (common/rng.h); the workload instance for utilization
  /// index u and replication r is generated from DeriveSeed(seeds[r], u,
  /// r), so every cell owns an independent RNG stream.
  std::vector<uint64_t> seeds = {1, 2, 3, 4, 5};
  /// Worker threads to fan workload instances out to. 0 = hardware
  /// concurrency, 1 = run inline on the calling thread. Results are
  /// bit-identical for every value (see RunSweep).
  size_t num_threads = 0;
  /// Simulator knobs applied to every run: fault plan, retry policy,
  /// admission control, servers. record_outcomes is forced off (cells
  /// only need aggregates). An enabled fault plan is re-keyed per
  /// workload instance via FaultPlan::WithDerivedSeed(instance seed), so
  /// every instance sees an independent fault timeline while the sweep
  /// stays byte-identical for any thread count.
  SimOptions sim;
  /// Optional progress reporting; see SweepProgressFn.
  SweepProgressFn progress;
  /// Optional wall-clock breakdown of the sweep, filled when non-null.
  /// Feeds bench/sweep_throughput; has no effect on the results.
  struct SweepTiming* timing = nullptr;
};

/// Where a sweep's wall-clock went: the parallel simulation fan-out vs.
/// the serial merge tail that folds RunResults into SweepCells.
struct SweepTiming {
  double run_ms = 0.0;
  double merge_ms = 0.0;
};

/// Runs the full sweep. Every (utilization, replication) pair generates
/// one workload instance, replayed under each policy, so policies are
/// compared on identical inputs. Cells are ordered utilization-major,
/// then in `config.policies` order.
///
/// Instances are independent and run concurrently on `num_threads`
/// workers; per-cell seeds come from DeriveSeed and cells are merged
/// back on the calling thread in serial order, so the returned vector is
/// byte-identical regardless of thread count or completion order.
Result<std::vector<SweepCell>> RunSweep(const SweepConfig& config);

/// Runs one workload under one policy spec (convenience for examples).
Result<RunResult> RunOne(const WorkloadSpec& spec, uint64_t seed,
                         const std::string& policy_spec);

/// Default utilization grid 0.1, 0.2, ..., 1.0 (paper Table I).
std::vector<double> PaperUtilizationGrid();

// ---------------------------------------------------------------------------
// Generic parallel replication engine (the layer RunSweep and the bench
// harnesses are built on).

/// Creates a fresh policy instance per call. Factories are invoked from
/// worker threads — one instance per workload instance per policy, never
/// shared — so they must be thread-safe and deterministic (same call,
/// same policy behavior).
using PolicyFactory = std::function<std::unique_ptr<SchedulerPolicy>()>;

/// Wraps CreatePolicy specs as factories, validating every spec eagerly
/// (the returned factories cannot fail).
Result<std::vector<PolicyFactory>> MakePolicyFactories(
    const std::vector<std::string>& specs);

/// One workload to synthesize and replay: `spec` is passed to
/// WorkloadGenerator, `seed` to Generate.
struct WorkloadInstance {
  WorkloadSpec spec;
  uint64_t seed = 1;
};

struct ParallelRunOptions {
  /// Simulator knobs applied to every run.
  SimOptions sim;
  /// 0 = hardware concurrency, 1 = inline on the calling thread.
  size_t num_threads = 0;
  /// Optional progress reporting; see SweepProgressFn.
  SweepProgressFn progress;
};

/// Replays every instance under every policy: result[i][p] is
/// instances[i] run under factories[p]. Instances fan out to a
/// common/ThreadPool (each worker builds its own Simulator and policy
/// objects, so nothing mutable is shared); results are collected
/// positionally, making the output bit-identical for any thread count.
/// On generator/workload errors, the first failing instance (in index
/// order) determines the returned status.
Result<std::vector<std::vector<RunResult>>> RunInstances(
    const std::vector<WorkloadInstance>& instances,
    const std::vector<PolicyFactory>& factories,
    const ParallelRunOptions& options = {});

}  // namespace webtx

#endif  // WEBTX_EXP_SWEEP_H_
