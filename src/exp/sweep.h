#ifndef WEBTX_EXP_SWEEP_H_
#define WEBTX_EXP_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/metrics.h"
#include "workload/spec.h"

namespace webtx {

/// One utilization x policy cell, averaged over seeds (the paper reports
/// "the averages of five runs for each experiment setting", Sec. IV-A).
struct SweepCell {
  double utilization = 0.0;
  std::string policy;
  double avg_tardiness = 0.0;
  double avg_weighted_tardiness = 0.0;
  double max_tardiness = 0.0;
  double max_weighted_tardiness = 0.0;
  double miss_ratio = 0.0;
  double avg_response = 0.0;
  /// Sample standard deviations across seeds, for error bars.
  double avg_tardiness_stddev = 0.0;
  double avg_weighted_tardiness_stddev = 0.0;
};

/// A utilization sweep over a set of policies, the workhorse behind every
/// figure in Sec. IV.
struct SweepConfig {
  /// Workload template; `utilization` is overridden per sweep point.
  WorkloadSpec base;
  /// Utilization values to sweep (paper: 0.1 .. 1.0).
  std::vector<double> utilizations;
  /// Policy specs understood by CreatePolicy (sched/policy_factory.h).
  std::vector<std::string> policies;
  /// Seeds averaged per cell (paper: five runs).
  std::vector<uint64_t> seeds = {1, 2, 3, 4, 5};
};

/// Runs the full sweep. Every (utilization, seed) pair generates one
/// workload instance, replayed under each policy, so policies are compared
/// on identical inputs. Cells are ordered utilization-major, then in
/// `config.policies` order.
Result<std::vector<SweepCell>> RunSweep(const SweepConfig& config);

/// Runs one workload under one policy spec (convenience for examples).
Result<RunResult> RunOne(const WorkloadSpec& spec, uint64_t seed,
                         const std::string& policy_spec);

/// Default utilization grid 0.1, 0.2, ..., 1.0 (paper Table I).
std::vector<double> PaperUtilizationGrid();

}  // namespace webtx

#endif  // WEBTX_EXP_SWEEP_H_
