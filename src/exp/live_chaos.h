#ifndef WEBTX_EXP_LIVE_CHAOS_H_
#define WEBTX_EXP_LIVE_CHAOS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "rt/executor.h"
#include "rt/live_trace.h"
#include "rt/live_validator.h"
#include "sim/fault_plan.h"

namespace webtx {

/// One randomized resilience scenario against the LIVE executor
/// (rt/executor.h) under a VirtualClock: a seeded task workload
/// submitted at virtual arrival instants, executed with seeded fault
/// injection (crashes, stalls, forced aborts, latency spikes), retry
/// backoff, optional admission control, and the stall watchdog. Every
/// knob is a value, so a case serializes to a replay file and re-runs
/// digest-identically (the live counterpart of exp/chaos.h).
struct LiveChaosCase {
  // -- Workload shape (all draws derive from workload_seed) --
  uint64_t workload_seed = 1;
  size_t num_tasks = 50;
  /// Mean of the exponential inter-arrival gaps, virtual seconds.
  double mean_interarrival = 0.05;
  /// Mean of the exponential simulated task durations.
  double mean_duration = 0.1;
  /// Relative deadline = duration * (1 + deadline_slack * U[0,1)).
  double deadline_slack = 2.0;
  /// Weights drawn uniformly from {1, ..., max_weight}.
  uint64_t max_weight = 1;
  /// Probability a task depends on one uniformly chosen earlier task.
  double dep_prob = 0.0;
  /// Probability a task gets a per-attempt timeout of
  /// duration * (0.5 + 1.5 * U[0,1)) — some attempts time out.
  double timeout_prob = 0.0;

  // -- Executor configuration --
  size_t num_workers = 2;
  /// Transaction-level policy spec (sched/policy_factory.h).
  std::string policy = "EDF";
  /// Seeded fault streams, one per executor slot (migration policy
  /// rides inside: warm/cold failover).
  FaultPlanConfig fault;
  double latency_spike_prob = 0.0;
  double mean_latency_spike = 0.0;
  /// Per-task retry budget and backoff (same for every task).
  uint32_t retry_max_attempts = 1;
  double retry_backoff = 0.0;
  double retry_backoff_multiplier = 2.0;
  /// Executor-wide retry-storm suppression.
  double retry_max_backoff = 0.0;
  size_t retry_budget = 0;
  /// Admission controller: none, a static queue-depth cap, or the
  /// adaptive brownout controller.
  enum class Admission : uint8_t { kNone = 0, kQueueDepth, kBrownout };
  Admission admission = Admission::kNone;
  size_t admission_max_ready = 0;  // kQueueDepth cap
  bool watchdog = false;
  double watchdog_stall_seconds = 0.0;
};

/// Everything one executed case produced, enough to validate and to
/// digest: the quiescent trace, the harness-side ground-truth task
/// records, final outcomes (indexed by TxnId), and the stats snapshot.
struct LiveChaosRun {
  std::vector<rt::LiveTraceEvent> trace;
  std::vector<rt::LiveTaskRecord> tasks;
  std::vector<rt::TaskOutcome> outcomes;
  rt::ExecutorStats stats;
  /// LiveTraceDigest(trace): the replay byte-identity contract.
  uint64_t digest = 0;
};

/// Executes one case to quiescence under a fresh VirtualClock (the
/// caller thread drives submissions at the drawn arrival instants as a
/// registered clock participant) and returns the run record. Fails on
/// invalid case parameters (bad policy spec, bad fault config, ...).
Result<LiveChaosRun> RunLiveChaosCase(const LiveChaosCase& c);

/// Audits a run against the live crash-era invariants
/// (rt/live_validator.h). Ok iff no violations.
Status CheckLiveChaosInvariants(const LiveChaosCase& c,
                                const LiveChaosRun& run);

/// Replay file round-trip: "key value" lines under a versioned header.
/// Unknown keys are an error (a replay must not silently lose a knob).
std::string SerializeLiveChaosCase(const LiveChaosCase& c);
Result<LiveChaosCase> ParseLiveChaosReplay(const std::string& text);

/// True when the (shrunk) case still exhibits the failure being chased.
using LiveChaosPredicate = std::function<bool(const LiveChaosCase&)>;

/// Greedy shrink: repeatedly simplifies `c` (fewer tasks, dropped fault
/// streams, disabled reactive machinery, fewer workers) keeping only
/// mutations under which `still_fails` holds.
LiveChaosCase ShrinkLiveChaosCase(LiveChaosCase c,
                                  const LiveChaosPredicate& still_fails);

/// The `index`-th case of a campaign, derived deterministically from
/// `master_seed` (biased toward crash streams — the point of the
/// harness).
LiveChaosCase RandomLiveChaosCase(uint64_t master_seed, uint64_t index);

struct LiveChaosCampaignOptions {
  uint64_t master_seed = 1;
  size_t num_cases = 100;
  /// When non-empty, the shrunk reproducer of the first failure is
  /// written here as a replay file.
  std::string reproducer_path;
  /// Progress hook: case index and its verdict ("" = passed).
  std::function<void(size_t, const std::string&)> progress;
};

struct LiveChaosCampaignResult {
  size_t cases_run = 0;
  /// Validator-failing cases (including determinism mismatches).
  size_t violations = 0;
  /// Cases whose two runs produced different trace digests — the
  /// determinism contract broke (counted in `violations` too).
  size_t determinism_mismatches = 0;
  std::string first_violation;
  LiveChaosCase first_reproducer;
  // Aggregate fault exposure, to prove the campaign exercised faults.
  size_t total_crashes = 0;
  size_t total_stalls = 0;
  size_t total_migrations = 0;
  size_t total_forced_aborts = 0;
  size_t total_retries = 0;
};

/// Runs `num_cases` random cases. Every case is executed TWICE: the two
/// digests must match (determinism audit) and the first run must pass
/// the live validator. The first failing case is shrunk and (optionally)
/// written as a reproducer. Fails only on harness errors; validator
/// violations are reported in the result.
Result<LiveChaosCampaignResult> RunLiveChaosCampaign(
    const LiveChaosCampaignOptions& options);

}  // namespace webtx

#endif  // WEBTX_EXP_LIVE_CHAOS_H_
