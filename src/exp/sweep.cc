#include "exp/sweep.h"

#include <chrono>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "sched/policy_factory.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace webtx {

std::vector<double> PaperUtilizationGrid() {
  std::vector<double> grid;
  for (int i = 1; i <= 10; ++i) grid.push_back(0.1 * i);
  return grid;
}

Result<RunResult> RunOne(const WorkloadSpec& spec, uint64_t seed,
                         const std::string& policy_spec) {
  WEBTX_ASSIGN_OR_RETURN(auto generator, WorkloadGenerator::Create(spec));
  WEBTX_ASSIGN_OR_RETURN(auto policy, CreatePolicy(policy_spec));
  WEBTX_ASSIGN_OR_RETURN(auto sim, Simulator::Create(generator.Generate(seed)));
  return sim.Run(*policy);
}

Result<std::vector<PolicyFactory>> MakePolicyFactories(
    const std::vector<std::string>& specs) {
  std::vector<PolicyFactory> factories;
  factories.reserve(specs.size());
  for (const std::string& spec : specs) {
    // Validate now so workers can assume success.
    WEBTX_ASSIGN_OR_RETURN(auto probe, CreatePolicy(spec));
    (void)probe;
    factories.push_back([spec]() {
      auto policy = CreatePolicy(spec);
      WEBTX_CHECK(policy.ok()) << policy.status().ToString();
      return std::move(policy).ValueOrDie();
    });
  }
  return factories;
}

namespace {

/// Runs instance `i` to completion under every factory, filling
/// `results[i]`. Everything touched here is private to the call: a fresh
/// generator, simulator, and policy set per instance.
Status RunOneInstance(const WorkloadInstance& instance,
                      const std::vector<PolicyFactory>& factories,
                      const SimOptions& sim_options,
                      std::vector<RunResult>& out) {
  WEBTX_ASSIGN_OR_RETURN(auto generator,
                         WorkloadGenerator::Create(instance.spec));
  SimOptions instance_options = sim_options;
  // Workers must not share a timing sink: ShardTiming accumulation is
  // unsynchronized by design (single-simulator bench plumbing).
  instance_options.timing = nullptr;
  if (instance_options.fault_plan.enabled()) {
    // Re-key the fault streams per instance so every (utilization,
    // replication) pair sees an independent timeline; the derived seed
    // is a pure function of the instance, not of worker assignment.
    instance_options.fault_plan =
        instance_options.fault_plan.WithDerivedSeed(instance.seed);
  }
  WEBTX_ASSIGN_OR_RETURN(
      auto sim,
      Simulator::Create(generator.Generate(instance.seed), instance_options));
  out.resize(factories.size());
  for (size_t p = 0; p < factories.size(); ++p) {
    const std::unique_ptr<SchedulerPolicy> policy = factories[p]();
    out[p] = sim.Run(*policy);
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<RunResult>>> RunInstances(
    const std::vector<WorkloadInstance>& instances,
    const std::vector<PolicyFactory>& factories,
    const ParallelRunOptions& options) {
  for (const PolicyFactory& factory : factories) {
    if (factory == nullptr) {
      return Status::InvalidArgument("null policy factory");
    }
  }

  const size_t total = instances.size();
  std::vector<std::vector<RunResult>> results(total);
  std::vector<Status> statuses(total, Status::OK());

  const size_t num_threads = options.num_threads == 0
                                 ? ThreadPool::DefaultConcurrency()
                                 : options.num_threads;
  if (num_threads == 1) {
    // Inline reference path: identical per-instance code, same
    // positional merge, no pool.
    for (size_t i = 0; i < total; ++i) {
      statuses[i] =
          RunOneInstance(instances[i], factories, options.sim, results[i]);
      if (!statuses[i].ok()) return statuses[i];
      if (options.progress) options.progress(i + 1, total);
    }
    return results;
  }

  {
    std::mutex progress_mu;
    size_t completed = 0;
    ThreadPool pool(num_threads);
    for (size_t i = 0; i < total; ++i) {
      pool.Submit([&, i] {
        statuses[i] =
            RunOneInstance(instances[i], factories, options.sim, results[i]);
        if (options.progress) {
          std::lock_guard<std::mutex> lock(progress_mu);
          options.progress(++completed, total);
        }
      });
    }
    pool.Wait();
  }
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return results;
}

Result<std::vector<SweepCell>> RunSweep(const SweepConfig& config) {
  if (config.utilizations.empty()) {
    return Status::InvalidArgument("sweep has no utilization points");
  }
  if (config.policies.empty()) {
    return Status::InvalidArgument("sweep has no policies");
  }
  if (config.seeds.empty()) {
    return Status::InvalidArgument("sweep has no seeds");
  }
  WEBTX_ASSIGN_OR_RETURN(auto factories, MakePolicyFactories(config.policies));

  // One workload instance per (utilization, replication), each with its
  // own DeriveSeed stream; instance index = u * num_seeds + r.
  const size_t num_seeds = config.seeds.size();
  std::vector<WorkloadInstance> instances;
  instances.reserve(config.utilizations.size() * num_seeds);
  for (size_t u = 0; u < config.utilizations.size(); ++u) {
    for (size_t r = 0; r < num_seeds; ++r) {
      WorkloadInstance instance;
      instance.spec = config.base;
      instance.spec.utilization = config.utilizations[u];
      instance.seed = DeriveSeed(config.seeds[r], u, r);
      instances.push_back(std::move(instance));
    }
  }

  ParallelRunOptions options;
  options.sim = config.sim;
  options.sim.record_outcomes = false;
  options.num_threads = config.num_threads;
  options.progress = config.progress;
  using Clock = std::chrono::steady_clock;
  const auto ms_since = [](Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };
  const auto run_start = Clock::now();
  WEBTX_ASSIGN_OR_RETURN(auto runs, RunInstances(instances, factories,
                                                 options));
  if (config.timing) config.timing->run_ms = ms_since(run_start);

  // Batched merge in (utilization, policy) order. Per cell, the per-seed
  // summaries are first gathered into contiguous SoA sample buffers and
  // then reduced — tardiness means/stddevs via pairwise Welford combines
  // (PairwiseStats), the plain averages via a sequential fold in
  // replication order. Every reduction consumes samples in a fixed order
  // that depends only on the instance index, so the cells stay
  // bit-identical no matter which worker produced each RunResult.
  const auto merge_start = Clock::now();
  const size_t num_policies = config.policies.size();
  std::vector<SweepCell> cells;
  cells.reserve(config.utilizations.size() * num_policies);
  std::vector<double> tardiness(num_seeds);
  std::vector<double> weighted(num_seeds);
  std::vector<double> max_tardiness(num_seeds);
  std::vector<double> max_weighted(num_seeds);
  std::vector<double> miss(num_seeds);
  std::vector<double> response(num_seeds);
  std::vector<double> goodput(num_seeds);
  std::vector<double> shed(num_seeds);
  std::vector<double> drop(num_seeds);
  const auto mean_of = [num_seeds](const std::vector<double>& samples) {
    double sum = 0.0;
    for (const double s : samples) sum += s;
    return sum / static_cast<double>(num_seeds);
  };
  for (size_t u = 0; u < config.utilizations.size(); ++u) {
    for (size_t p = 0; p < num_policies; ++p) {
      for (size_t r = 0; r < num_seeds; ++r) {
        const RunResult& run = runs[u * num_seeds + r][p];
        tardiness[r] = run.avg_tardiness;
        weighted[r] = run.avg_weighted_tardiness;
        max_tardiness[r] = run.max_tardiness;
        max_weighted[r] = run.max_weighted_tardiness;
        miss[r] = run.miss_ratio;
        response[r] = run.avg_response;
        const auto total = static_cast<double>(
            run.num_completed + run.num_shed + run.num_dropped_retries +
            run.num_dropped_dependency);
        if (total > 0.0) {
          goodput[r] = run.goodput;
          shed[r] = static_cast<double>(run.num_shed) / total;
          drop[r] = static_cast<double>(run.num_dropped_retries +
                                        run.num_dropped_dependency) /
                    total;
        } else {
          goodput[r] = 1.0;  // empty run: vacuously all completed
          shed[r] = 0.0;
          drop[r] = 0.0;
        }
      }
      SweepCell cell;
      cell.utilization = config.utilizations[u];
      cell.policy = config.policies[p];
      const StreamingStats tardiness_stats =
          PairwiseStats(tardiness.data(), num_seeds);
      const StreamingStats weighted_stats =
          PairwiseStats(weighted.data(), num_seeds);
      cell.avg_tardiness = tardiness_stats.mean();
      cell.avg_tardiness_stddev = tardiness_stats.stddev();
      cell.avg_weighted_tardiness = weighted_stats.mean();
      cell.avg_weighted_tardiness_stddev = weighted_stats.stddev();
      cell.max_tardiness = mean_of(max_tardiness);
      cell.max_weighted_tardiness = mean_of(max_weighted);
      cell.miss_ratio = mean_of(miss);
      cell.avg_response = mean_of(response);
      cell.goodput = mean_of(goodput);
      cell.shed_ratio = mean_of(shed);
      cell.drop_ratio = mean_of(drop);
      cells.push_back(std::move(cell));
    }
  }
  if (config.timing) config.timing->merge_ms = ms_since(merge_start);
  return cells;
}

}  // namespace webtx
