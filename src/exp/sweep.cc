#include "exp/sweep.h"

#include <memory>
#include <utility>

#include "common/check.h"
#include "common/stats.h"
#include "sched/policy_factory.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace webtx {

std::vector<double> PaperUtilizationGrid() {
  std::vector<double> grid;
  for (int i = 1; i <= 10; ++i) grid.push_back(0.1 * i);
  return grid;
}

Result<RunResult> RunOne(const WorkloadSpec& spec, uint64_t seed,
                         const std::string& policy_spec) {
  WEBTX_ASSIGN_OR_RETURN(auto generator, WorkloadGenerator::Create(spec));
  WEBTX_ASSIGN_OR_RETURN(auto policy, CreatePolicy(policy_spec));
  WEBTX_ASSIGN_OR_RETURN(auto sim, Simulator::Create(generator.Generate(seed)));
  return sim.Run(*policy);
}

Result<std::vector<SweepCell>> RunSweep(const SweepConfig& config) {
  if (config.utilizations.empty()) {
    return Status::InvalidArgument("sweep has no utilization points");
  }
  if (config.policies.empty()) {
    return Status::InvalidArgument("sweep has no policies");
  }
  if (config.seeds.empty()) {
    return Status::InvalidArgument("sweep has no seeds");
  }

  // Instantiate policies once; they are reusable across runs via Bind.
  std::vector<std::unique_ptr<SchedulerPolicy>> policies;
  for (const std::string& spec : config.policies) {
    WEBTX_ASSIGN_OR_RETURN(auto policy, CreatePolicy(spec));
    policies.push_back(std::move(policy));
  }

  SimOptions sim_options;
  sim_options.record_outcomes = false;

  std::vector<SweepCell> cells;
  cells.reserve(config.utilizations.size() * config.policies.size());
  for (const double utilization : config.utilizations) {
    WorkloadSpec wspec = config.base;
    wspec.utilization = utilization;
    WEBTX_ASSIGN_OR_RETURN(auto generator, WorkloadGenerator::Create(wspec));

    std::vector<SweepCell> row(config.policies.size());
    std::vector<StreamingStats> tardiness_stats(config.policies.size());
    std::vector<StreamingStats> weighted_stats(config.policies.size());
    for (size_t p = 0; p < config.policies.size(); ++p) {
      row[p].utilization = utilization;
      row[p].policy = config.policies[p];
    }
    for (const uint64_t seed : config.seeds) {
      WEBTX_ASSIGN_OR_RETURN(auto sim,
                             Simulator::Create(generator.Generate(seed),
                                               sim_options));
      for (size_t p = 0; p < policies.size(); ++p) {
        const RunResult r = sim.Run(*policies[p]);
        tardiness_stats[p].Add(r.avg_tardiness);
        weighted_stats[p].Add(r.avg_weighted_tardiness);
        row[p].max_tardiness += r.max_tardiness;
        row[p].max_weighted_tardiness += r.max_weighted_tardiness;
        row[p].miss_ratio += r.miss_ratio;
        row[p].avg_response += r.avg_response;
      }
    }
    const auto num_seeds = static_cast<double>(config.seeds.size());
    for (size_t p = 0; p < row.size(); ++p) {
      SweepCell& cell = row[p];
      cell.avg_tardiness = tardiness_stats[p].mean();
      cell.avg_tardiness_stddev = tardiness_stats[p].stddev();
      cell.avg_weighted_tardiness = weighted_stats[p].mean();
      cell.avg_weighted_tardiness_stddev = weighted_stats[p].stddev();
      cell.max_tardiness /= num_seeds;
      cell.max_weighted_tardiness /= num_seeds;
      cell.miss_ratio /= num_seeds;
      cell.avg_response /= num_seeds;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

}  // namespace webtx
