#include "exp/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/csv.h"

namespace webtx {

std::string FormatFixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> column_names)
    : columns_(std::move(column_names)) {
  WEBTX_CHECK(!columns_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  WEBTX_CHECK_EQ(row.size(), columns_.size());
  rows_.push_back(std::move(row));
}

void Table::AddNumericRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double v : values) row.push_back(FormatFixed(v, precision));
  AddRow(std::move(row));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(columns_);
  size_t total = 0;
  for (const size_t w : widths) total += w;
  total += 2 * (columns_.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

Status Table::WriteCsv(const std::string& path) const {
  std::vector<std::vector<std::string>> all;
  all.reserve(rows_.size() + 1);
  all.push_back(columns_);
  for (const auto& row : rows_) all.push_back(row);
  return WriteCsvFile(path, all);
}

}  // namespace webtx
