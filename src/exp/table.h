#ifndef WEBTX_EXP_TABLE_H_
#define WEBTX_EXP_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace webtx {

/// Fixed-width ASCII table for figure harness output, mirroring the series
/// a paper plot shows (one row per x value, one column per series). Also
/// exports CSV so results can be re-plotted.
class Table {
 public:
  explicit Table(std::vector<std::string> column_names);

  /// Adds a row; must match the number of columns.
  void AddRow(std::vector<std::string> row);

  /// Convenience: first cell verbatim, remaining cells formatted doubles.
  void AddNumericRow(const std::string& label,
                     const std::vector<double>& values, int precision = 3);

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return columns_.size(); }

  /// Pretty-prints with aligned columns and a header rule.
  void Print(std::ostream& os) const;

  /// Writes header + rows as CSV.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by harnesses).
std::string FormatFixed(double value, int precision = 3);

}  // namespace webtx

#endif  // WEBTX_EXP_TABLE_H_
