#include "exp/live_chaos.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <memory>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "rt/clock.h"
#include "sched/admission.h"
#include "sched/policy_factory.h"

namespace webtx {

namespace {

constexpr char kReplayHeader[] = "webtx-live-chaos-replay v1";

// DeriveSeed coordinates of the live harness's own seed streams
// (arbitrary but fixed; reproducers depend on them). Distinct from the
// sim chaos streams so the two campaigns never alias.
constexpr uint64_t kLiveCaseStream = 0x11FECA5Eull;
constexpr uint64_t kLiveFaultStream = 0x11FEFA17ull;

constexpr double kMinTaskSeconds = 1e-4;

double ExpDraw(Rng& rng, double mean) {
  // -mean * ln(1 - U), U in [0, 1): the standard inverse-CDF draw.
  return -mean * std::log1p(-rng.NextDouble());
}

std::string FormatDouble(double d) {
  std::ostringstream os;
  os << std::setprecision(17) << d;
  return os.str();
}

bool ParseU64(const std::string& text, uint64_t* out) {
  std::istringstream is(text);
  is >> *out;
  return !is.fail() && is.eof();
}

bool ParseDouble(const std::string& text, double* out) {
  std::istringstream is(text);
  is >> *out;
  return !is.fail() && is.eof();
}

/// One drawn task: the harness materializes the whole workload before
/// submitting so arrival order (and so TxnId assignment) is fixed.
struct DrawnTask {
  double arrival = 0.0;
  double duration = 0.0;
  double relative_deadline = 0.0;
  double weight = 1.0;
  double timeout = 0.0;
  int dep_index = -1;  // index of an earlier task, or -1
};

std::vector<DrawnTask> DrawWorkload(const LiveChaosCase& c) {
  Rng rng(c.workload_seed);
  std::vector<DrawnTask> tasks(c.num_tasks);
  double at = 0.0;
  for (size_t i = 0; i < c.num_tasks; ++i) {
    DrawnTask& t = tasks[i];
    at += ExpDraw(rng, c.mean_interarrival);
    t.arrival = at;
    t.duration = std::max(kMinTaskSeconds, ExpDraw(rng, c.mean_duration));
    t.relative_deadline =
        t.duration * (1.0 + c.deadline_slack * rng.NextDouble());
    t.weight = static_cast<double>(rng.NextInRange(1, c.max_weight));
    if (i > 0 && rng.NextDouble() < c.dep_prob) {
      t.dep_index = static_cast<int>(rng.NextInRange(0, i - 1));
    }
    if (rng.NextDouble() < c.timeout_prob) {
      // Half the range undercuts the duration, so some attempts time
      // out and exercise the retry path.
      t.timeout = t.duration * (0.5 + 1.5 * rng.NextDouble());
    }
  }
  return tasks;
}

rt::ExecutorOptions ExecutorOptionsFor(const LiveChaosCase& c,
                                       std::shared_ptr<rt::Clock> clock) {
  rt::ExecutorOptions options;
  options.num_workers = c.num_workers;
  options.clock = std::move(clock);
  options.faults.plan = c.fault;
  options.faults.latency_spike_prob = c.latency_spike_prob;
  options.faults.mean_latency_spike = c.mean_latency_spike;
  options.migration = c.fault.migration;
  switch (c.admission) {
    case LiveChaosCase::Admission::kNone:
      break;
    case LiveChaosCase::Admission::kQueueDepth: {
      QueueDepthAdmissionOptions depth;
      depth.max_ready = c.admission_max_ready;
      options.admission = MakeQueueDepthAdmission(depth);
      break;
    }
    case LiveChaosCase::Admission::kBrownout:
      options.admission = MakeBrownoutAdmission();
      break;
  }
  options.watchdog = c.watchdog;
  options.watchdog_stall_seconds = c.watchdog_stall_seconds;
  options.retry_max_backoff = c.retry_max_backoff;
  options.retry_budget = c.retry_budget;
  options.record_trace = true;
  return options;
}

// Applies `mutate` to a copy; commits it iff the failure still
// reproduces. Returns whether the simplification was kept.
template <typename Mutation>
bool TryMutation(LiveChaosCase& c, Mutation mutate,
                 const LiveChaosPredicate& still_fails) {
  LiveChaosCase candidate = c;
  mutate(candidate);
  if (!still_fails(candidate)) return false;
  c = std::move(candidate);
  return true;
}

}  // namespace

Result<LiveChaosRun> RunLiveChaosCase(const LiveChaosCase& c) {
  if (c.num_tasks == 0) {
    return Status::InvalidArgument("live chaos case has no tasks");
  }
  if (c.num_workers == 0) {
    return Status::InvalidArgument("live chaos case has no workers");
  }
  if (!(c.mean_interarrival > 0.0) || !(c.mean_duration > 0.0)) {
    return Status::InvalidArgument(
        "mean_interarrival and mean_duration must be > 0");
  }
  // Surface config errors here as a Status: the executor constructor
  // CHECK-validates its fault plan, which would abort the campaign.
  WEBTX_ASSIGN_OR_RETURN(FaultPlan plan_check, FaultPlan::Create(c.fault));
  (void)plan_check;
  WEBTX_ASSIGN_OR_RETURN(auto policy, CreatePolicy(c.policy));

  const std::vector<DrawnTask> drawn = DrawWorkload(c);
  auto clock = std::make_shared<rt::VirtualClock>();
  rt::Executor exec(std::move(policy), ExecutorOptionsFor(c, clock));

  LiveChaosRun run;
  run.tasks.resize(c.num_tasks);
  std::vector<TxnId> ids(c.num_tasks, kInvalidTxn);

  // The driver is a clock participant: virtual time halts while it is
  // between submits, so every arrival lands at its exact drawn instant.
  clock->RegisterParticipant();
  Status failure;  // deferred so the participant is always deregistered
  for (size_t i = 0; i < c.num_tasks; ++i) {
    const DrawnTask& t = drawn[i];
    clock->SleepUntil(t.arrival, nullptr);
    rt::TaskSpec spec;
    spec.relative_deadline = t.relative_deadline;
    spec.weight = t.weight;
    spec.estimated_cost = t.duration;
    spec.simulated_duration = t.duration;
    spec.timeout_seconds = t.timeout;
    spec.max_attempts = c.retry_max_attempts;
    spec.retry_backoff_seconds = c.retry_backoff;
    spec.backoff_multiplier = c.retry_backoff_multiplier;
    if (t.dep_index >= 0) {
      spec.dependencies.push_back(ids[static_cast<size_t>(t.dep_index)]);
    }
    Result<TxnId> id = exec.Submit(std::move(spec));
    if (!id.ok()) {
      failure = id.status();
      break;
    }
    ids[i] = std::move(id).ValueOrDie();
    rt::LiveTaskRecord& record = run.tasks[ids[i]];
    record.submit_seconds = t.arrival;
    record.deadline_seconds = t.arrival + t.relative_deadline;
    record.max_attempts = c.retry_max_attempts;
    record.retry_backoff = c.retry_backoff;
    record.backoff_multiplier = c.retry_backoff_multiplier;
    record.simulated = true;
    if (t.dep_index >= 0) {
      record.dependencies.push_back(ids[static_cast<size_t>(t.dep_index)]);
    }
  }
  exec.Drain();
  exec.Shutdown();
  clock->DeregisterParticipant();
  if (!failure.ok()) return failure;

  run.trace = exec.TakeTrace();
  run.outcomes.resize(c.num_tasks);
  for (size_t i = 0; i < c.num_tasks; ++i) {
    run.outcomes[ids[i]] = exec.OutcomeOf(ids[i]);
  }
  run.stats = exec.stats();
  run.digest = rt::LiveTraceDigest(run.trace);
  return run;
}

Status CheckLiveChaosInvariants(const LiveChaosCase& c,
                                const LiveChaosRun& run) {
  rt::LiveValidatorOptions options;
  options.watchdog = c.watchdog;
  options.watchdog_stall_seconds = c.watchdog_stall_seconds;
  options.retry_max_backoff = c.retry_max_backoff;
  const rt::LiveValidationResult verdict = rt::ValidateLiveTrace(
      run.trace, run.tasks, run.outcomes, run.stats, options);
  if (verdict.ok()) return Status();
  std::ostringstream os;
  os << verdict.violations.size() << " live invariant violation(s):";
  const size_t show = std::min<size_t>(verdict.violations.size(), 3);
  for (size_t i = 0; i < show; ++i) os << " [" << verdict.violations[i] << "]";
  return Status::InvalidArgument(os.str());
}

std::string SerializeLiveChaosCase(const LiveChaosCase& c) {
  std::ostringstream os;
  os << kReplayHeader << "\n";
  os << "workload_seed " << c.workload_seed << "\n";
  os << "num_tasks " << c.num_tasks << "\n";
  os << "mean_interarrival " << FormatDouble(c.mean_interarrival) << "\n";
  os << "mean_duration " << FormatDouble(c.mean_duration) << "\n";
  os << "deadline_slack " << FormatDouble(c.deadline_slack) << "\n";
  os << "max_weight " << c.max_weight << "\n";
  os << "dep_prob " << FormatDouble(c.dep_prob) << "\n";
  os << "timeout_prob " << FormatDouble(c.timeout_prob) << "\n";
  os << "num_workers " << c.num_workers << "\n";
  os << "policy " << c.policy << "\n";
  os << "outage_rate " << FormatDouble(c.fault.outage_rate) << "\n";
  os << "mean_outage_duration " << FormatDouble(c.fault.mean_outage_duration)
     << "\n";
  os << "abort_rate " << FormatDouble(c.fault.abort_rate) << "\n";
  os << "crash_rate " << FormatDouble(c.fault.crash_rate) << "\n";
  os << "mean_repair_duration " << FormatDouble(c.fault.mean_repair_duration)
     << "\n";
  os << "migration " << MigrationPolicyName(c.fault.migration) << "\n";
  os << "correlated_crash_prob " << FormatDouble(c.fault.correlated_crash_prob)
     << "\n";
  os << "fault_seed " << c.fault.seed << "\n";
  os << "latency_spike_prob " << FormatDouble(c.latency_spike_prob) << "\n";
  os << "mean_latency_spike " << FormatDouble(c.mean_latency_spike) << "\n";
  os << "retry_max_attempts " << c.retry_max_attempts << "\n";
  os << "retry_backoff " << FormatDouble(c.retry_backoff) << "\n";
  os << "retry_backoff_multiplier "
     << FormatDouble(c.retry_backoff_multiplier) << "\n";
  os << "retry_max_backoff " << FormatDouble(c.retry_max_backoff) << "\n";
  os << "retry_budget " << c.retry_budget << "\n";
  switch (c.admission) {
    case LiveChaosCase::Admission::kNone:
      os << "admission none\n";
      break;
    case LiveChaosCase::Admission::kQueueDepth:
      os << "admission depth\n";
      break;
    case LiveChaosCase::Admission::kBrownout:
      os << "admission brownout\n";
      break;
  }
  os << "admission_max_ready " << c.admission_max_ready << "\n";
  os << "watchdog " << (c.watchdog ? 1 : 0) << "\n";
  os << "watchdog_stall_seconds " << FormatDouble(c.watchdog_stall_seconds)
     << "\n";
  return os.str();
}

Result<LiveChaosCase> ParseLiveChaosReplay(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  bool saw_header = false;
  LiveChaosCase c;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != kReplayHeader) {
        return Status::InvalidArgument(
            "not a live chaos replay file: expected '" +
            std::string(kReplayHeader) + "', got '" + line + "'");
      }
      saw_header = true;
      continue;
    }
    const size_t space = line.find(' ');
    if (space == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 'key value', got '" + line +
                                     "'");
    }
    const std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    const auto bad = [&] {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad value for " + key + ": '" +
                                     value + "'");
    };
    uint64_t u = 0;
    if (key == "workload_seed") {
      if (!ParseU64(value, &c.workload_seed)) return bad();
    } else if (key == "num_tasks") {
      if (!ParseU64(value, &u)) return bad();
      c.num_tasks = u;
    } else if (key == "mean_interarrival") {
      if (!ParseDouble(value, &c.mean_interarrival)) return bad();
    } else if (key == "mean_duration") {
      if (!ParseDouble(value, &c.mean_duration)) return bad();
    } else if (key == "deadline_slack") {
      if (!ParseDouble(value, &c.deadline_slack)) return bad();
    } else if (key == "max_weight") {
      if (!ParseU64(value, &c.max_weight)) return bad();
    } else if (key == "dep_prob") {
      if (!ParseDouble(value, &c.dep_prob)) return bad();
    } else if (key == "timeout_prob") {
      if (!ParseDouble(value, &c.timeout_prob)) return bad();
    } else if (key == "num_workers") {
      if (!ParseU64(value, &u)) return bad();
      c.num_workers = u;
    } else if (key == "policy") {
      c.policy = value;
    } else if (key == "outage_rate") {
      if (!ParseDouble(value, &c.fault.outage_rate)) return bad();
    } else if (key == "mean_outage_duration") {
      if (!ParseDouble(value, &c.fault.mean_outage_duration)) return bad();
    } else if (key == "abort_rate") {
      if (!ParseDouble(value, &c.fault.abort_rate)) return bad();
    } else if (key == "crash_rate") {
      if (!ParseDouble(value, &c.fault.crash_rate)) return bad();
    } else if (key == "mean_repair_duration") {
      if (!ParseDouble(value, &c.fault.mean_repair_duration)) return bad();
    } else if (key == "migration") {
      if (value == "warm") {
        c.fault.migration = MigrationPolicy::kWarm;
      } else if (value == "cold") {
        c.fault.migration = MigrationPolicy::kCold;
      } else {
        return bad();
      }
    } else if (key == "correlated_crash_prob") {
      if (!ParseDouble(value, &c.fault.correlated_crash_prob)) return bad();
    } else if (key == "fault_seed") {
      if (!ParseU64(value, &c.fault.seed)) return bad();
    } else if (key == "latency_spike_prob") {
      if (!ParseDouble(value, &c.latency_spike_prob)) return bad();
    } else if (key == "mean_latency_spike") {
      if (!ParseDouble(value, &c.mean_latency_spike)) return bad();
    } else if (key == "retry_max_attempts") {
      if (!ParseU64(value, &u)) return bad();
      c.retry_max_attempts = static_cast<uint32_t>(u);
    } else if (key == "retry_backoff") {
      if (!ParseDouble(value, &c.retry_backoff)) return bad();
    } else if (key == "retry_backoff_multiplier") {
      if (!ParseDouble(value, &c.retry_backoff_multiplier)) return bad();
    } else if (key == "retry_max_backoff") {
      if (!ParseDouble(value, &c.retry_max_backoff)) return bad();
    } else if (key == "retry_budget") {
      if (!ParseU64(value, &u)) return bad();
      c.retry_budget = u;
    } else if (key == "admission") {
      if (value == "none") {
        c.admission = LiveChaosCase::Admission::kNone;
      } else if (value == "depth") {
        c.admission = LiveChaosCase::Admission::kQueueDepth;
      } else if (value == "brownout") {
        c.admission = LiveChaosCase::Admission::kBrownout;
      } else {
        return bad();
      }
    } else if (key == "admission_max_ready") {
      if (!ParseU64(value, &u)) return bad();
      c.admission_max_ready = u;
    } else if (key == "watchdog") {
      if (!ParseU64(value, &u) || u > 1) return bad();
      c.watchdog = u == 1;
    } else if (key == "watchdog_stall_seconds") {
      if (!ParseDouble(value, &c.watchdog_stall_seconds)) return bad();
    } else {
      // A replay must not silently lose a knob it doesn't understand.
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown key '" + key + "'");
    }
  }
  if (!saw_header) {
    return Status::InvalidArgument("empty replay file (no header)");
  }
  return c;
}

LiveChaosCase ShrinkLiveChaosCase(LiveChaosCase c,
                                  const LiveChaosPredicate& still_fails) {
  // Halve the workload first: every later probe re-runs the case (twice,
  // for the determinism audit), so a short horizon pays for the pass.
  while (c.num_tasks > 1 &&
         TryMutation(
             c, [](LiveChaosCase& x) { x.num_tasks /= 2; }, still_fails)) {
  }
  // Drop whole fault dimensions, least-suspect first, so the surviving
  // config names the mechanism that matters.
  TryMutation(
      c,
      [](LiveChaosCase& x) {
        x.latency_spike_prob = 0.0;
        x.mean_latency_spike = 0.0;
      },
      still_fails);
  TryMutation(
      c, [](LiveChaosCase& x) { x.fault.abort_rate = 0.0; }, still_fails);
  TryMutation(
      c,
      [](LiveChaosCase& x) {
        x.watchdog = false;
        x.watchdog_stall_seconds = 0.0;
      },
      still_fails);
  TryMutation(
      c,
      [](LiveChaosCase& x) {
        x.fault.outage_rate = 0.0;
        x.fault.mean_outage_duration = 0.0;
      },
      still_fails);
  TryMutation(
      c, [](LiveChaosCase& x) { x.fault.correlated_crash_prob = 0.0; },
      still_fails);
  TryMutation(
      c,
      [](LiveChaosCase& x) {
        // Correlated mode cannot outlive the crash stream it rides on.
        x.fault.crash_rate = 0.0;
        x.fault.mean_repair_duration = 0.0;
        x.fault.correlated_crash_prob = 0.0;
      },
      still_fails);
  // Disable the reactive machinery.
  TryMutation(
      c,
      [](LiveChaosCase& x) {
        x.admission = LiveChaosCase::Admission::kNone;
        x.admission_max_ready = 0;
      },
      still_fails);
  TryMutation(
      c,
      [](LiveChaosCase& x) {
        x.retry_max_attempts = 1;
        x.retry_backoff = 0.0;
        x.retry_backoff_multiplier = 2.0;
        x.retry_max_backoff = 0.0;
        x.retry_budget = 0;
      },
      still_fails);
  // Level the workload shape.
  TryMutation(
      c, [](LiveChaosCase& x) { x.timeout_prob = 0.0; }, still_fails);
  TryMutation(c, [](LiveChaosCase& x) { x.dep_prob = 0.0; }, still_fails);
  TryMutation(c, [](LiveChaosCase& x) { x.max_weight = 1; }, still_fails);
  // Remove workers one at a time.
  while (c.num_workers > 1 &&
         TryMutation(
             c, [](LiveChaosCase& x) { --x.num_workers; }, still_fails)) {
  }
  // The dropped dimensions may have freed slack for another round of
  // workload halving.
  while (c.num_tasks > 1 &&
         TryMutation(
             c, [](LiveChaosCase& x) { x.num_tasks /= 2; }, still_fails)) {
  }
  return c;
}

LiveChaosCase RandomLiveChaosCase(uint64_t master_seed, uint64_t index) {
  Rng rng(DeriveSeed(master_seed, kLiveCaseStream, index));
  // Transaction-level policies only: the live executor schedules
  // open-ended submissions, which workflow-level ASETS* cannot plan.
  static const std::array<const char*, 6> kPolicies = {
      "FCFS", "EDF", "SRPT", "HDF", "ASETS", "ASETS-BA(count=0.05)"};
  LiveChaosCase c;
  c.policy = kPolicies[rng.NextInRange(0, kPolicies.size() - 1)];
  c.workload_seed = rng.Next();
  c.num_tasks = rng.NextInRange(30, 120);
  c.num_workers = rng.NextInRange(1, 4);
  c.mean_duration = 0.02 + 0.18 * rng.NextDouble();
  const double utilization = 0.3 + 1.2 * rng.NextDouble();
  c.mean_interarrival =
      c.mean_duration / (static_cast<double>(c.num_workers) * utilization);
  c.deadline_slack = 0.5 + 4.0 * rng.NextDouble();
  c.max_weight = rng.NextDouble() < 0.5 ? 1 : 10;
  c.dep_prob = rng.NextDouble() < 0.5 ? 0.0 : 0.4 * rng.NextDouble();
  c.timeout_prob = rng.NextDouble() < 0.7 ? 0.0 : 0.3 * rng.NextDouble();
  // Crash streams are the point of this harness: most cases get one.
  // The virtual horizon is a few seconds, so hazard rates run much
  // hotter than the sim campaign's.
  if (rng.NextDouble() < 0.85) {
    c.fault.crash_rate = 0.05 + 0.45 * rng.NextDouble();
    c.fault.mean_repair_duration = 0.2 + 1.8 * rng.NextDouble();
    c.fault.migration = rng.NextDouble() < 0.5 ? MigrationPolicy::kWarm
                                               : MigrationPolicy::kCold;
    if (rng.NextDouble() < 0.4) {
      c.fault.correlated_crash_prob = 0.1 + 0.8 * rng.NextDouble();
    }
  }
  if (rng.NextDouble() < 0.5) {
    c.fault.outage_rate = 0.03 + 0.27 * rng.NextDouble();
    c.fault.mean_outage_duration = 0.2 + 1.3 * rng.NextDouble();
    if (rng.NextDouble() < 0.6) {
      c.watchdog = true;
      c.watchdog_stall_seconds = 0.05 + 0.3 * rng.NextDouble();
    }
  }
  if (rng.NextDouble() < 0.5) {
    c.fault.abort_rate = 0.05 + 0.45 * rng.NextDouble();
  }
  if (rng.NextDouble() < 0.5) {
    c.latency_spike_prob = 0.1 + 0.3 * rng.NextDouble();
    c.mean_latency_spike = 0.01 + 0.09 * rng.NextDouble();
  }
  c.fault.seed = DeriveSeed(master_seed, kLiveFaultStream, index);
  c.retry_max_attempts = static_cast<uint32_t>(rng.NextInRange(1, 4));
  c.retry_backoff =
      rng.NextDouble() < 0.5 ? 0.0 : 0.01 + 0.2 * rng.NextDouble();
  c.retry_backoff_multiplier = 1.5 + 1.5 * rng.NextDouble();
  c.retry_max_backoff =
      rng.NextDouble() < 0.5 ? 0.0 : 0.05 + 0.45 * rng.NextDouble();
  c.retry_budget = rng.NextDouble() < 0.5 ? 0 : rng.NextInRange(4, 32);
  const double admission_draw = rng.NextDouble();
  if (admission_draw < 0.5) {
    c.admission = LiveChaosCase::Admission::kNone;
  } else if (admission_draw < 0.8) {
    c.admission = LiveChaosCase::Admission::kQueueDepth;
    c.admission_max_ready = rng.NextInRange(8, 64);
  } else {
    c.admission = LiveChaosCase::Admission::kBrownout;
  }
  return c;
}

Result<LiveChaosCampaignResult> RunLiveChaosCampaign(
    const LiveChaosCampaignOptions& options) {
  LiveChaosCampaignResult out;
  for (size_t i = 0; i < options.num_cases; ++i) {
    const LiveChaosCase c = RandomLiveChaosCase(options.master_seed, i);
    WEBTX_ASSIGN_OR_RETURN(LiveChaosRun first, RunLiveChaosCase(c));
    WEBTX_ASSIGN_OR_RETURN(LiveChaosRun second, RunLiveChaosCase(c));
    out.total_crashes += first.stats.crashes;
    out.total_stalls += first.stats.stalls;
    out.total_migrations += first.stats.migrations;
    out.total_forced_aborts += first.stats.forced_aborts;
    out.total_retries += first.stats.retries_scheduled;
    std::string verdict_text;
    bool mismatch = false;
    if (first.digest != second.digest) {
      mismatch = true;
      std::ostringstream os;
      os << "determinism: trace digests differ across identical runs ("
         << std::hex << first.digest << " vs " << second.digest << ")";
      verdict_text = os.str();
    } else {
      const Status verdict = CheckLiveChaosInvariants(c, first);
      if (!verdict.ok()) verdict_text = verdict.ToString();
    }
    ++out.cases_run;
    if (options.progress) options.progress(i, verdict_text);
    if (verdict_text.empty()) continue;
    ++out.violations;
    if (mismatch) ++out.determinism_mismatches;
    if (out.violations > 1) continue;  // shrink only the first failure
    out.first_violation = verdict_text;
    const LiveChaosPredicate fails = [](const LiveChaosCase& x) {
      const auto a = RunLiveChaosCase(x);
      if (!a.ok()) return false;  // invalid shrink candidate
      const auto b = RunLiveChaosCase(x);
      if (!b.ok()) return false;
      if (a.ValueOrDie().digest != b.ValueOrDie().digest) return true;
      return !CheckLiveChaosInvariants(x, a.ValueOrDie()).ok();
    };
    out.first_reproducer = ShrinkLiveChaosCase(c, fails);
    if (!options.reproducer_path.empty()) {
      std::ofstream file(options.reproducer_path);
      file << SerializeLiveChaosCase(out.first_reproducer);
      if (!file.good()) {
        return Status::IOError("cannot write reproducer to " +
                               options.reproducer_path);
      }
    }
  }
  return out;
}

}  // namespace webtx
