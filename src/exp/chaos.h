#ifndef WEBTX_EXP_CHAOS_H_
#define WEBTX_EXP_CHAOS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "sim/fault_plan.h"
#include "sim/metrics.h"
#include "sim/simulator.h"

namespace webtx {

/// One fully-specified chaos scenario: workload shape, policy, fault
/// plan (crashes, outages, aborts), retry behavior, and optional
/// admission control. A ChaosCase is a pure value — running it twice
/// replays the byte-identical schedule (ScheduleDigest) — which is what
/// makes shrunken reproducers replayable from a text file.
struct ChaosCase {
  // Workload shape (the knobs the shrinker can simplify).
  uint64_t workload_seed = 1;
  size_t num_transactions = 200;
  double utilization = 0.8;
  uint64_t max_weight = 1;
  size_t max_workflow_length = 1;
  size_t max_workflows_per_txn = 1;
  double burstiness = 0.0;
  double estimate_error = 0.0;

  // System under test.
  size_t num_servers = 1;
  /// Policy spec understood by CreatePolicy (sched/policy_factory.h).
  std::string policy = "FCFS";
  FaultPlanConfig fault;
  RetryOptions retry;
  /// QueueDepthAdmission max_ready cap; 0 = no admission control.
  size_t admission_max_ready = 0;

  /// Structure knobs under test (the huge-scale campaign flips them).
  /// Both are byte-identity-neutral by contract, so a replay digests the
  /// same either way; they are serialized only when non-default, keeping
  /// historical replay files untouched.
  PendingQueueImpl pending_queue = PendingQueueImpl::kBinaryHeap;
  TxnStoreLayout txn_store = TxnStoreLayout::kSpecVector;
};

/// Runs the case to completion with outcome and schedule recording on.
/// Fails (InvalidArgument) on nonsensical parameters, never on fault
/// activity — a crashed-to-pieces run still returns its RunResult.
Result<RunResult> RunChaosCase(const ChaosCase& c);

/// Audits a recorded run against the full invariant set: everything
/// ValidateSchedule checks (no execution on a down or crashed server,
/// migrated work conserved or zeroed exactly per the case's
/// MigrationPolicy, every fate accounted for in the goodput/shed/drop
/// partition), wired up from the case's fault plan. Returns OK or the
/// first violation, with timestamps/server/txn ids in the message.
Status CheckChaosInvariants(const ChaosCase& c, const RunResult& result);

/// Order-sensitive FNV-1a digest of the observable behavior of a run:
/// every schedule segment, every outcome (fate, finish, aborts,
/// migrations), and the fault/fate counters. Two runs are considered
/// byte-identical iff their digests match — the replay test's equality
/// oracle, and stable across platforms (doubles hashed by bit pattern).
uint64_t ScheduleDigest(const RunResult& result);

/// Serializes a case as "key value" lines under a versioned header —
/// the replay-file format. Round-trips exactly (doubles printed with
/// max_digits10).
std::string SerializeChaosCase(const ChaosCase& c);

/// Parses a replay file produced by SerializeChaosCase. Unknown keys
/// are errors (a replay must not silently lose a knob); missing keys
/// keep their ChaosCase defaults.
Result<ChaosCase> ParseChaosReplay(const std::string& text);

/// Returns true when the case still exhibits the failure being
/// shrunk. Predicates must be deterministic (same case, same answer).
using ChaosPredicate = std::function<bool(const ChaosCase&)>;

/// Greedily shrinks a failing case while `still_fails` holds: halves
/// the transaction count, drops whole fault streams (aborts, outages,
/// correlated mode, crashes), disables admission and retries, levels
/// the workload shape (weights, workflows, burstiness, estimate
/// error), removes servers, and finally bisects the fault timeline
/// itself — suppressing individual natural crash / outage windows
/// (FaultPlanConfig::suppressed_*, draw-and-discard so the rest of the
/// timeline is untouched) — keeping each simplification only if the
/// predicate still fails. The result is a local minimum: every
/// remaining knob and every remaining fault instant is load-bearing.
/// Requires still_fails(c) on entry.
ChaosCase ShrinkChaosCase(ChaosCase c, const ChaosPredicate& still_fails);

/// Derives case `index` of a campaign from `master_seed` via the
/// DeriveSeed chain: randomizes the policy, workload shape, crash /
/// outage / abort rates, MigrationPolicy, correlated-failure mode,
/// retry options, and admission — biased so most cases crash servers
/// (this is a crash-failover harness). Pure function of its arguments.
ChaosCase RandomChaosCase(uint64_t master_seed, uint64_t index);

struct ChaosCampaignOptions {
  uint64_t master_seed = 1;
  /// Randomized (policy, fault plan, seed) cases to run.
  size_t num_cases = 200;
  /// When non-empty and a violation is found, the shrunken reproducer
  /// is serialized here.
  std::string reproducer_path;
  /// Per-case progress callback (case index, violation or empty).
  std::function<void(size_t index, const std::string& violation)> progress;
};

struct ChaosCampaignResult {
  size_t cases_run = 0;
  size_t violations = 0;
  /// Validator message of the first violation (empty when none).
  std::string first_violation;
  /// The first failing case, shrunk to a local minimum.
  ChaosCase first_reproducer;
  // Aggregate fault activity, to prove the campaign exercised the
  // machinery rather than idling on fault-free cases.
  size_t total_crashes = 0;
  size_t total_migrations = 0;
  size_t total_aborts = 0;
  size_t total_outages = 0;
};

/// Runs `num_cases` randomized cases through RunChaosCase +
/// CheckChaosInvariants. On the first violation the case is shrunk
/// (predicate: the violation — any violation — still reproduces) and
/// serialized to `reproducer_path`; the campaign then continues, so
/// the violation count is complete. IOError if the reproducer cannot
/// be written.
Result<ChaosCampaignResult> RunChaosCampaign(
    const ChaosCampaignOptions& options);

}  // namespace webtx

#endif  // WEBTX_EXP_CHAOS_H_
