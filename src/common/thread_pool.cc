#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/check.h"

namespace webtx {

size_t ThreadPool::DefaultConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? DefaultConcurrency() : num_threads) {
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

std::future<void> ThreadPool::Submit(std::function<void()> job) {
  WEBTX_CHECK(job != nullptr) << "ThreadPool::Submit requires a job";
  std::packaged_task<void()> task(std::move(job));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    WEBTX_CHECK(!shutting_down_) << "ThreadPool::Submit after Shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
  return future;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::RunBatch(size_t count,
                          const std::function<void(size_t)>& job) {
  WEBTX_CHECK(job != nullptr) << "ThreadPool::RunBatch requires a job";
  if (count == 0) return;
  // The caller is one worker, so only count-1 helpers can ever find an
  // unclaimed index.
  const size_t helpers = std::min(num_threads_, count - 1);
  std::atomic<size_t> next{0};
  const auto drain = [&next, count, &job] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      job(i);
    }
  };
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (size_t h = 0; h < helpers; ++h) {
    futures.push_back(Submit(drain));
  }
  drain();
  for (std::future<void>& f : futures) {
    f.get();  // rethrows a helper's captured exception
  }
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_available_.wait(
        lock, [this] { return !queue_.empty() || shutting_down_; });
    if (queue_.empty()) return;  // shutting down and drained
    std::packaged_task<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();  // packaged_task captures exceptions into the future
    lock.lock();
    if (--in_flight_ == 0) all_idle_.notify_all();
  }
}

}  // namespace webtx
