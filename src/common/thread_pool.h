#ifndef WEBTX_COMMON_THREAD_POOL_H_
#define WEBTX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace webtx {

/// A fixed-size worker pool for CPU-bound jobs, used by the experiment
/// harness to run independent simulation replications concurrently
/// (exp/sweep.h). Deliberately distinct from rt::Executor, which
/// schedules *tasks by policy* on a wall clock; this pool runs opaque
/// jobs FIFO and makes no ordering promises beyond start order.
///
/// Thread-safe: Submit may be called from any thread, including from
/// jobs already running on the pool (but a job must not Wait() on the
/// pool it runs on — that can deadlock once all workers block).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means DefaultConcurrency().
  explicit ThreadPool(size_t num_threads = 0);

  /// Joins the workers. Jobs already queued still run to completion;
  /// equivalent to Shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `job` and returns a future that resolves when it finishes.
  /// An exception thrown by the job is captured and rethrown from
  /// future.get(); it never takes down a worker.
  std::future<void> Submit(std::function<void()> job);

  /// Blocks until every job submitted so far has finished. New jobs may
  /// be submitted afterwards; the pool stays usable.
  void Wait();

  /// Runs `job(0) .. job(count-1)` across the pool and the calling
  /// thread, returning when all have finished. Indices are claimed from
  /// a shared atomic counter, so the work is balanced regardless of
  /// per-index cost; at most min(size(), count) helper jobs are
  /// enqueued and the caller participates, so a 1-thread pool degrades
  /// to a plain serial loop. Exceptions from `job` are rethrown on the
  /// calling thread (first helper's exception wins if the caller's own
  /// slice was clean). Must NOT be called from a job running on this
  /// pool — the caller blocks on helpers that may sit behind it in the
  /// queue.
  void RunBatch(size_t count, const std::function<void(size_t)>& job);

  /// Stops accepting jobs, drains the queue, joins workers. Idempotent.
  void Shutdown();

  /// Number of worker threads.
  size_t size() const { return num_threads_; }

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static size_t DefaultConcurrency();

 private:
  void WorkerLoop();

  const size_t num_threads_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::packaged_task<void()>> queue_;  // guarded by mu_
  size_t in_flight_ = 0;                          // queued + running
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace webtx

#endif  // WEBTX_COMMON_THREAD_POOL_H_
