#ifndef WEBTX_COMMON_RESULT_H_
#define WEBTX_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace webtx {

/// Holds either a value of type T or a non-OK Status.
///
/// Usage:
///   Result<Trace> r = Trace::FromFile(path);
///   if (!r.ok()) return r.status();
///   Trace t = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Implicit from value / Status so call sites read naturally
  /// (`return value;` / `return Status::NotFound(...)`).
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : data_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {
    WEBTX_CHECK(!std::get<Status>(data_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; OK if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// The value. Aborts the process if this Result holds an error.
  const T& ValueOrDie() const& {
    WEBTX_CHECK(ok()) << "ValueOrDie on error Result: "
                      << std::get<Status>(data_).ToString();
    return std::get<T>(data_);
  }
  T& ValueOrDie() & {
    WEBTX_CHECK(ok()) << "ValueOrDie on error Result: "
                      << std::get<Status>(data_).ToString();
    return std::get<T>(data_);
  }
  T ValueOrDie() && {
    WEBTX_CHECK(ok()) << "ValueOrDie on error Result: "
                      << std::get<Status>(data_).ToString();
    return std::move(std::get<T>(data_));
  }

  /// Returns the value or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> data_;
};

/// Unwraps a Result into `lhs`, returning the error Status on failure.
#define WEBTX_ASSIGN_OR_RETURN(lhs, expr)                    \
  WEBTX_ASSIGN_OR_RETURN_IMPL(                               \
      WEBTX_CONCAT_NAME(_webtx_result_, __LINE__), lhs, expr)

#define WEBTX_CONCAT_NAME_INNER(a, b) a##b
#define WEBTX_CONCAT_NAME(a, b) WEBTX_CONCAT_NAME_INNER(a, b)
#define WEBTX_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie();

}  // namespace webtx

#endif  // WEBTX_COMMON_RESULT_H_
