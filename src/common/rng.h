#ifndef WEBTX_COMMON_RNG_H_
#define WEBTX_COMMON_RNG_H_

#include <cstdint>

namespace webtx {

/// SplitMix64: used to expand a single 64-bit seed into the xoshiro state.
/// Reference: Sebastiano Vigna, http://prng.di.unimi.it/splitmix64.c
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Derives the workload-instance seed for one sweep cell from a base
/// seed and the cell's grid coordinates. Each (base, utilization_index,
/// replication) tuple maps to a statistically independent seed, so every
/// replication owns its RNG stream and results are identical no matter
/// which thread runs the cell or in what order cells complete
/// (exp/sweep.h relies on this for its parallel engine).
///
/// Construction: the three coordinates are chained through SplitMix64,
/// whose output is a bijective finalizer of its state — distinct tuples
/// collide only with hash-level (2^-64) probability. Stable across
/// platforms and releases; golden values are locked by
/// tests/common/rng_derive_test.cc.
inline uint64_t DeriveSeed(uint64_t base, uint64_t utilization_index,
                           uint64_t replication) {
  uint64_t h = SplitMix64(base).Next();
  h = SplitMix64(h ^ utilization_index).Next();
  h = SplitMix64(h ^ replication).Next();
  return h;
}

/// xoshiro256**: fast, high-quality 64-bit PRNG. Deterministic across
/// platforms given the same seed, which keeps simulation runs reproducible.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x2545f4914f6cdd1dULL) { Seed(seed); }

  /// Re-initializes the full 256-bit state from a 64-bit seed.
  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    const uint64_t span = hi - lo + 1;
    if (span == 0) return Next();  // full 64-bit range
    // Lemire's unbiased bounded generation (rejection on the low word).
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * span;
    auto l = static_cast<uint64_t>(m);
    if (l < span) {
      const uint64_t threshold = -span % span;
      while (l < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * span;
        l = static_cast<uint64_t>(m);
      }
    }
    return lo + static_cast<uint64_t>(m >> 64);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace webtx

#endif  // WEBTX_COMMON_RNG_H_
