#ifndef WEBTX_COMMON_CALENDAR_QUEUE_H_
#define WEBTX_COMMON_CALENDAR_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace webtx {

/// Calendar / ladder queue for time-ordered discrete-event simulation at
/// large populations, replacing a binary heap whose sift paths thrash the
/// cache beyond ~10^5 pending events (BM_IndexedPqPushPop: 26M ops/s at
/// 64 items, 3.9M at 262k; BM_PendingQueue* in bench/ext_huge_scale
/// tracks this structure against the heap it replaces).
///
/// `Traits` supplies the event ordering:
///   static double TimeOf(const Event&);          // primary key
///   static bool Before(const Event& a, const Event& b);  // strict total
///     order, consistent with TimeOf: TimeOf(a) < TimeOf(b) implies
///     Before(a, b). Ties (equal times) are broken by the caller's
///     secondary fields — e.g. internal::PendingAfter's (time, kind, id).
///
/// ## Ordering contract (what makes it a drop-in for a heap)
///
/// pop() always removes the Before-least live event — the SAME sequence a
/// binary heap over Before would produce, including exact-double time
/// coincidences — provided pushes obey the DES monotonicity rule:
///
///   TimeOf(pushed event) >= TimeOf(most recently popped event)
///
/// (no scheduling in the past; the simulator only schedules at or after
/// `now`). The equivalence is pinned by tests/common/calendar_queue_test.cc
/// against std::priority_queue and by the huge-structures differential
/// matrix at the simulator level.
///
/// ## Structure
///
/// Three tiers, coarsening with temporal distance:
///   - `current_`: a sorted array with a consume cursor — the events that
///     pop next. Pops are a pointer bump; near-term pushes are a binary
///     search + insert into a short array.
///   - rung buckets: the next "year" of events, bucketed by time into
///     uniform-width slices; a bucket is sorted only when it is promoted
///     to become `current_` (lazy sort, one contiguous std::sort).
///   - `future_`: an unsorted spill array for everything beyond the rung.
///     When the rung is exhausted, future_ is swept once into a fresh
///     rung sized from its population and time span (the overflow-bucket
///     cascade).
///
/// Tier routing compares against ACTUAL event times (`current_max_`,
/// `rung_max_`), never against computed bucket edges, so an exact time tie
/// can never straddle a tier boundary — the corner that would otherwise
/// reorder coincident events. Within the rung, the slice index is a
/// monotone function of time clamped to the next unpromoted bucket, which
/// keeps cross-bucket order exact even for "gap" times that fall under
/// the promotion cursor (see the property tests' GapTimes case).
///
/// Push and pop are amortized O(1) when event times are spread; the worst
/// case (all events at one instant) degrades to one O(n log n) sort — the
/// same total work a heap pays spread over its sifts.
template <typename Event, typename Traits>
class CalendarQueue {
 public:
  /// Capacity hint: pre-sizes the spill array so a burst of `n` far-future
  /// pushes does not reallocate repeatedly.
  void Reserve(size_t n) {
    future_.reserve(n);
    current_.reserve(std::min<size_t>(n, 2 * kTargetPerBucket));
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// The Before-least live event. Queue must be non-empty.
  const Event& top() {
    Normalize();
    return current_[cur_at_];
  }

  void pop() {
    Normalize();
    WEBTX_DCHECK(size_ > 0);
    last_pop_time_ = Traits::TimeOf(current_[cur_at_]);
    ++cur_at_;
    --size_;
  }

  void push(const Event& e) {
    const double t = Traits::TimeOf(e);
    WEBTX_DCHECK(size_ == 0 || t >= last_pop_time_ || cur_at_ == 0)
        << "calendar queue: push into the past breaks the pop-order "
           "contract";
    ++size_;
    if (size_ == 1) {
      // Whole queue empty: restart with a one-event current tier. This is
      // the hot path for the near-empty ping-pong pattern (a pending
      // queue usually holds a handful of retries).
      current_.clear();
      cur_at_ = 0;
      rung_count_ = 0;
      future_.clear();
      current_.push_back(e);
      current_max_ = t;
      return;
    }
    if (!current_.empty() && cur_at_ < current_.size() && t <= current_max_) {
      // Near-term: sorted insert among the unconsumed prefix of current_.
      // If that prefix has grown past the demote threshold (a bulk fill
      // can poison current_max_ with an early far-future append, after
      // which almost every push lands here — quadratic without a bound),
      // first spill the strictly-later tail back to future_ and shrink
      // the window. Safe only with no active rung: then every future_
      // event has time > current_max_, the demoted tail keeps that
      // invariant (strict-time split), and the next cascade re-sorts the
      // spill globally. Pinned by the BulkFillThenChurnMatchesHeap
      // property test.
      if (rung_count_ == 0 &&
          current_.size() - cur_at_ > kDemoteThreshold) {
        size_t keep_end = cur_at_ + 2 * kTargetPerBucket;
        const double cut = Traits::TimeOf(current_[keep_end - 1]);
        while (keep_end < current_.size() &&
               Traits::TimeOf(current_[keep_end]) == cut) {
          ++keep_end;
        }
        if (keep_end < current_.size()) {
          future_.insert(future_.end(),
                         current_.begin() + static_cast<ptrdiff_t>(keep_end),
                         current_.end());
          current_.resize(keep_end);
          current_max_ = cut;
          if (t > current_max_) {
            future_.push_back(e);
            return;
          }
        }
      }
      const auto it =
          std::upper_bound(current_.begin() + static_cast<ptrdiff_t>(cur_at_),
                           current_.end(), e, [](const Event& a,
                                                 const Event& b) {
                             return Traits::Before(a, b);
                           });
      current_.insert(it, e);
      return;
    }
    if (rung_count_ > 0 && rung_at_ < rung_count_ && t <= rung_max_) {
      // An active rung with unpromoted buckets left. When instead the
      // whole rung has been promoted (rung_at_ == rung_count_) but not
      // yet retired by Normalize, fall through to future_: the only
      // other live events are there, and the next cascade re-sorts them
      // together — routing into a promoted bucket would strand the
      // event.
      buckets_[RungIndexOf(t)].push_back(e);
      return;
    }
    if (current_.size() > cur_at_ && rung_count_ == 0 && future_.empty() &&
        t >= current_max_) {
      // No middle tier yet: grow current_ directly while it stays short —
      // keeps small queues in one sorted array with zero cascade cost.
      if (current_.size() - cur_at_ < 2 * kTargetPerBucket) {
        current_.push_back(e);
        current_max_ = t;
        return;
      }
    }
    future_.push_back(e);
  }

  void clear() {
    current_.clear();
    cur_at_ = 0;
    rung_count_ = 0;
    future_.clear();
    size_ = 0;
  }

 private:
  static constexpr size_t kTargetPerBucket = 8;
  static constexpr size_t kMaxBuckets = size_t{1} << 16;
  /// Unconsumed-current_ size beyond which push demotes the tail to
  /// future_ instead of continuing to insert into a growing array.
  static constexpr size_t kDemoteThreshold = 4 * kTargetPerBucket;

  static bool BeforeCmp(const Event& a, const Event& b) {
    return Traits::Before(a, b);
  }

  /// Rung slice of a live time: monotone in t, clamped to the next
  /// unpromoted bucket so a time under the promotion cursor (possible
  /// only through float rounding at a promoted edge) still lands ahead
  /// of everything already consumed.
  size_t RungIndexOf(double t) const {
    const double offset = (t - rung_start_) / rung_width_;
    size_t idx =
        offset >= static_cast<double>(rung_count_ - 1)
            ? rung_count_ - 1
            : static_cast<size_t>(offset > 0.0 ? offset : 0.0);
    if (idx < rung_at_) idx = rung_at_;
    return idx;
  }

  /// Ensures current_[cur_at_] is the global minimum: promotes rung
  /// buckets and cascades the future spill into a fresh rung as needed.
  void Normalize() {
    WEBTX_DCHECK(size_ > 0);
    while (cur_at_ == current_.size()) {
      if (rung_count_ > 0) {
        while (rung_at_ < rung_count_ && buckets_[rung_at_].empty()) {
          ++rung_at_;
        }
        if (rung_at_ == rung_count_) {
          rung_count_ = 0;
          continue;
        }
        std::vector<Event>& bucket = buckets_[rung_at_];
        std::sort(bucket.begin(), bucket.end(), BeforeCmp);
        current_.swap(bucket);
        bucket.clear();
        cur_at_ = 0;
        current_max_ = Traits::TimeOf(current_.back());
        ++rung_at_;
        return;
      }
      // Cascade: sweep the spill array into a fresh rung sized from its
      // population and span, then loop to promote its first bucket.
      WEBTX_DCHECK(!future_.empty());
      double tmin = Traits::TimeOf(future_.front());
      double tmax = tmin;
      for (const Event& e : future_) {
        const double t = Traits::TimeOf(e);
        if (t < tmin) tmin = t;
        if (t > tmax) tmax = t;
      }
      size_t nb = 1;
      while (nb < future_.size() / kTargetPerBucket && nb < kMaxBuckets) {
        nb *= 2;
      }
      rung_count_ = nb;
      rung_at_ = 0;
      rung_start_ = tmin;
      rung_max_ = tmax;
      rung_width_ = tmax > tmin ? (tmax - tmin) / static_cast<double>(nb)
                                : 1.0;
      if (buckets_.size() < nb) buckets_.resize(nb);
      for (size_t b = 0; b < nb; ++b) buckets_[b].clear();
      for (const Event& e : future_) {
        buckets_[RungIndexOf(Traits::TimeOf(e))].push_back(e);
      }
      future_.clear();
    }
  }

  // Tier 1: sorted, consumed front to back.
  std::vector<Event> current_;
  size_t cur_at_ = 0;
  double current_max_ = 0.0;  // max TimeOf ever inserted this incarnation

  // Tier 2: the rung — uniform time slices, lazily sorted at promotion.
  std::vector<std::vector<Event>> buckets_;
  size_t rung_count_ = 0;  // 0 = no active rung
  size_t rung_at_ = 0;     // next bucket to promote
  double rung_start_ = 0.0;
  double rung_width_ = 1.0;
  double rung_max_ = 0.0;  // max actual event time routed to this rung

  // Tier 3: unsorted far-future spill.
  std::vector<Event> future_;

  size_t size_ = 0;
  double last_pop_time_ = 0.0;
};

}  // namespace webtx

#endif  // WEBTX_COMMON_CALENDAR_QUEUE_H_
