#ifndef WEBTX_COMMON_CHECK_H_
#define WEBTX_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace webtx {
namespace internal {

/// Collects a fatal message via operator<< and aborts on destruction.
/// Used only through the WEBTX_CHECK* macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }
  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace webtx

/// Aborts with a message when `condition` is false. Invariant violations
/// only — recoverable errors use Status/Result.
#define WEBTX_CHECK(condition)                                         \
  if (condition) {                                                     \
  } else                                                               \
    ::webtx::internal::CheckFailureStream(#condition, __FILE__, __LINE__)

#define WEBTX_CHECK_EQ(a, b) WEBTX_CHECK((a) == (b))
#define WEBTX_CHECK_NE(a, b) WEBTX_CHECK((a) != (b))
#define WEBTX_CHECK_LT(a, b) WEBTX_CHECK((a) < (b))
#define WEBTX_CHECK_LE(a, b) WEBTX_CHECK((a) <= (b))
#define WEBTX_CHECK_GT(a, b) WEBTX_CHECK((a) > (b))
#define WEBTX_CHECK_GE(a, b) WEBTX_CHECK((a) >= (b))

#ifdef NDEBUG
// Short-circuits without evaluating `condition` while still marking its
// operands as used (avoids -Wunused in release builds).
#define WEBTX_DCHECK(condition) WEBTX_CHECK(true || (condition))
#else
#define WEBTX_DCHECK(condition) WEBTX_CHECK(condition)
#endif

#endif  // WEBTX_COMMON_CHECK_H_
