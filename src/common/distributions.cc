#include "common/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace webtx {

ZipfDistribution::ZipfDistribution(uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  WEBTX_CHECK_GE(n, 1u) << "Zipf support must be non-empty";
  WEBTX_CHECK_GE(alpha, 0.0) << "Zipf skew must be non-negative";
  cdf_.resize(n);
  double total = 0.0;
  double weighted = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    const double p = 1.0 / std::pow(static_cast<double>(k), alpha);
    total += p;
    weighted += p * static_cast<double>(k);
    cdf_[k - 1] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
  mean_ = weighted / total;
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::Pmf(uint64_t k) const {
  if (k < 1 || k > n_) return 0.0;
  const double p = cdf_[k - 1];
  const double prev = (k == 1) ? 0.0 : cdf_[k - 2];
  return p - prev;
}

ExponentialDistribution::ExponentialDistribution(double rate) : rate_(rate) {
  WEBTX_CHECK_GT(rate, 0.0) << "Exponential rate must be positive";
}

double ExponentialDistribution::Sample(Rng& rng) const {
  // 1 - u in (0, 1]; avoids log(0).
  const double u = rng.NextDouble();
  return -std::log1p(-u) / rate_;
}

UniformRealDistribution::UniformRealDistribution(double lo, double hi)
    : lo_(lo), hi_(hi) {
  WEBTX_CHECK_LE(lo, hi) << "Uniform bounds out of order";
}

double UniformRealDistribution::Sample(Rng& rng) const {
  return lo_ + (hi_ - lo_) * rng.NextDouble();
}

UniformIntDistribution::UniformIntDistribution(uint64_t lo, uint64_t hi)
    : lo_(lo), hi_(hi) {
  WEBTX_CHECK_LE(lo, hi) << "Uniform bounds out of order";
}

uint64_t UniformIntDistribution::Sample(Rng& rng) const {
  return rng.NextInRange(lo_, hi_);
}

}  // namespace webtx
