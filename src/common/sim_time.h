#ifndef WEBTX_COMMON_SIM_TIME_H_
#define WEBTX_COMMON_SIM_TIME_H_

#include <cmath>

namespace webtx {

/// Simulated time, in abstract "time units" (the paper's transaction lengths
/// are 1-50 time units). Double-precision is exact enough for the event
/// horizon of these workloads; comparisons that gate list membership use
/// an epsilon to absorb accumulated rounding.
using SimTime = double;

/// Comparison slack for simulated-time arithmetic.
inline constexpr SimTime kTimeEpsilon = 1e-9;

/// a <= b up to rounding error.
inline bool TimeLessEq(SimTime a, SimTime b) { return a <= b + kTimeEpsilon; }

/// a == b up to rounding error.
inline bool TimeEq(SimTime a, SimTime b) {
  return std::fabs(a - b) <= kTimeEpsilon;
}

}  // namespace webtx

#endif  // WEBTX_COMMON_SIM_TIME_H_
