#ifndef WEBTX_COMMON_DISTRIBUTIONS_H_
#define WEBTX_COMMON_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace webtx {

/// Zipf distribution over the integers {1, ..., n} with skew parameter
/// alpha >= 0: P(k) proportional to 1 / k^alpha. alpha = 0 is uniform; larger
/// alpha skews mass toward small values ("short transactions", Sec. IV-A of
/// the paper uses alpha = 0.5 over [1, 50]).
///
/// Sampling is by binary search over the precomputed CDF: O(n) setup,
/// O(log n) per sample, exact (no rejection).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double alpha);

  /// Draws one value in [1, n].
  uint64_t Sample(Rng& rng) const;

  /// Exact mean of the distribution.
  double Mean() const { return mean_; }

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

  /// P(X = k) for k in [1, n]; 0 outside.
  double Pmf(uint64_t k) const;

 private:
  uint64_t n_;
  double alpha_;
  double mean_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i + 1)
};

/// Exponential distribution with the given rate (lambda > 0); interarrival
/// times of a Poisson process with that rate.
class ExponentialDistribution {
 public:
  explicit ExponentialDistribution(double rate);

  double Sample(Rng& rng) const;
  double Mean() const { return 1.0 / rate_; }
  double rate() const { return rate_; }

 private:
  double rate_;
};

/// Continuous uniform distribution on [lo, hi).
class UniformRealDistribution {
 public:
  UniformRealDistribution(double lo, double hi);

  double Sample(Rng& rng) const;
  double Mean() const { return 0.5 * (lo_ + hi_); }

 private:
  double lo_;
  double hi_;
};

/// Discrete uniform distribution on the integers {lo, ..., hi} inclusive.
class UniformIntDistribution {
 public:
  UniformIntDistribution(uint64_t lo, uint64_t hi);

  uint64_t Sample(Rng& rng) const;
  double Mean() const {
    return 0.5 * (static_cast<double>(lo_) + static_cast<double>(hi_));
  }

 private:
  uint64_t lo_;
  uint64_t hi_;
};

}  // namespace webtx

#endif  // WEBTX_COMMON_DISTRIBUTIONS_H_
