#ifndef WEBTX_COMMON_CSV_H_
#define WEBTX_COMMON_CSV_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace webtx {

/// Minimal CSV support for traces and experiment output. Fields never
/// contain commas or quotes in this library, so no quoting is implemented;
/// writers CHECK that assumption.
class CsvWriter {
 public:
  /// Writes rows to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void WriteRow(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

/// Splits one CSV line into fields (no quoting support).
std::vector<std::string> SplitCsvLine(std::string_view line);

/// Reads an entire CSV file into rows of fields. Skips blank lines and
/// lines starting with '#'.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Writes `rows` (first row typically a header) to `path`.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

/// Parses a double / integer field with error reporting.
Result<double> ParseDouble(std::string_view field);
Result<long long> ParseInt(std::string_view field);

}  // namespace webtx

#endif  // WEBTX_COMMON_CSV_H_
