#include "common/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace webtx {

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    WEBTX_CHECK(fields[i].find_first_of(",\"\n") == std::string::npos)
        << "CSV field needs quoting, which is unsupported: " << fields[i];
    if (i > 0) out_ << ',';
    out_ << fields[i];
  }
  out_ << '\n';
}

std::vector<std::string> SplitCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      break;
    }
    fields.emplace_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    rows.push_back(SplitCsvLine(line));
  }
  return rows;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  CsvWriter writer(out);
  for (const auto& row : rows) writer.WriteRow(row);
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<double> ParseDouble(std::string_view field) {
  std::string buf(field);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  return value;
}

Result<long long> ParseInt(std::string_view field) {
  std::string buf(field);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end == buf.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return value;
}

}  // namespace webtx
