#ifndef WEBTX_COMMON_STATUS_H_
#define WEBTX_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace webtx {

/// Error categories used across the library. Modeled after the
/// Status idiom common in database engines (Arrow, RocksDB): library code
/// never throws; recoverable failures travel through Status / Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIOError = 8,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type carrying success or an (code, message) error.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK Status out of the enclosing function.
#define WEBTX_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::webtx::Status _webtx_status = (expr);      \
    if (!_webtx_status.ok()) return _webtx_status; \
  } while (false)

}  // namespace webtx

#endif  // WEBTX_COMMON_STATUS_H_
