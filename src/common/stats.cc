#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace webtx {

void StreamingStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

StreamingStats PairwiseStats(const double* samples, size_t n) {
  // Sequential Welford below this size; recursion overhead would dominate.
  constexpr size_t kLeafSize = 8;
  StreamingStats stats;
  if (n <= kLeafSize) {
    for (size_t i = 0; i < n; ++i) stats.Add(samples[i]);
    return stats;
  }
  const size_t half = n / 2;
  stats = PairwiseStats(samples, half);
  stats.Merge(PairwiseStats(samples + half, n - half));
  return stats;
}

double QuantileSketch::Quantile(double q) const {
  WEBTX_CHECK(q >= 0.0 && q <= 1.0) << "quantile out of range: " << q;
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace webtx
