#ifndef WEBTX_COMMON_STATS_H_
#define WEBTX_COMMON_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace webtx {

/// Streaming accumulator for count / mean / variance / min / max using
/// Welford's algorithm (numerically stable single pass).
class StreamingStats {
 public:
  StreamingStats() = default;

  void Add(double x);
  void Merge(const StreamingStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const {
    return count_ == 0 ? 0.0 : min_;
  }
  double max() const {
    return count_ == 0 ? 0.0 : max_;
  }
  double sum() const { return mean_ * static_cast<double>(count_); }
  /// Sample variance (n - 1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Folds `n` contiguous samples into a StreamingStats by pairwise
/// (tree-ordered) Welford combines: halves are reduced recursively and
/// joined with Merge. The reduction tree is a pure function of `n`, so
/// the result is bit-identical no matter how the samples were produced
/// (worker threads, batching), and the O(log n) combine depth keeps
/// rounding error lower than a sequential fold as batches grow.
StreamingStats PairwiseStats(const double* samples, size_t n);

/// Stores all samples to answer arbitrary quantile queries. Intended for
/// per-run metric post-processing (a few thousand samples), not hot paths.
class QuantileSketch {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  size_t count() const { return samples_.size(); }

  /// Quantile by linear interpolation between closest ranks;
  /// q in [0, 1]. Returns 0 when empty.
  double Quantile(double q) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace webtx

#endif  // WEBTX_COMMON_STATS_H_
