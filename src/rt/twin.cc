#include "rt/twin.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "rt/clock.h"
#include "sched/policy_factory.h"
#include "sim/simulator.h"

namespace webtx::rt {
namespace {

// DeriveSeed stream tag of the per-tick synthetic-arrival forecasts.
constexpr uint64_t kForecastStream = 0x7D161A17ull;

/// Smallest service time the shadow simulator is fed (mirrors the live
/// harness floor in workload/live_arrivals.cc).
constexpr double kMinForecastSeconds = 1e-4;

constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t Fnv1a(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t Bits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double ExpDraw(Rng& rng, double mean) {
  return -mean * std::log1p(-rng.NextDouble());
}

/// Terminal-but-not-completed count from the live stats counters.
size_t ShedCount(const ExecutorStats& s) {
  return s.shed_admission + s.shed_shutdown + s.dropped_retries +
         s.dropped_dependency;
}

AdmissionFactory AdmissionFor(const TwinCandidate& candidate) {
  switch (candidate.admission) {
    case TwinCandidate::Admission::kNone:
      return nullptr;
    case TwinCandidate::Admission::kQueueDepth: {
      QueueDepthAdmissionOptions o;
      o.max_ready = candidate.max_ready;
      return MakeQueueDepthAdmission(o);
    }
    case TwinCandidate::Admission::kBrownout: {
      BrownoutAdmissionOptions o;
      o.capacity_slo = candidate.capacity_slo;
      return MakeBrownoutAdmission(o);
    }
  }
  return nullptr;
}

/// Mutable controller state threaded through the serving loop.
struct ControllerState {
  uint32_t applied = 0;
  size_t dwell = 0;       // ticks since the last switch
  size_t strikes = 0;     // consecutive divergent windows
  size_t cooldown = 0;    // remaining guard-cooldown ticks
  bool has_forecast = false;
  double forecast_tardiness = 0.0;
  double forecast_shed = 0.0;
  ExecutorStats prev_stats;  // window baseline
  TwinArrivalWindow window;
};

}  // namespace

const char* TwinDecisionKindName(TwinDecision::Kind kind) {
  switch (kind) {
    case TwinDecision::Kind::kHold:
      return "hold";
    case TwinDecision::Kind::kSwitch:
      return "switch";
    case TwinDecision::Kind::kFallback:
      return "fallback";
    case TwinDecision::Kind::kCooldown:
      return "cooldown";
    case TwinDecision::Kind::kReenable:
      return "reenable";
  }
  return "?";
}

Twin::Twin(TwinOptions options) : options_(std::move(options)) {}

TwinForecastEngine::TwinForecastEngine(TwinForecastEngine&&) noexcept = default;
TwinForecastEngine& TwinForecastEngine::operator=(TwinForecastEngine&&) noexcept =
    default;
TwinForecastEngine::~TwinForecastEngine() = default;

Result<TwinForecastEngine> TwinForecastEngine::Create(
    const TwinOptions& options) {
  if (options.candidates.empty()) {
    return Status::InvalidArgument("twin needs at least one candidate");
  }
  if (options.prune &&
      !(options.prune_prefix > 0.0 && options.prune_prefix <= 1.0)) {
    return Status::InvalidArgument("prune_prefix must be in (0, 1]");
  }
  TwinForecastEngine engine;
  engine.options_ = options;
  engine.pooled_ = options.pooled_forecasts;
  const size_t threads = options.forecast_threads == 0
                             ? ThreadPool::DefaultConcurrency()
                             : options.forecast_threads;
  // The control thread is one worker, so forecast_threads = N means
  // N-1 pool helpers; 1 stays a plain serial loop with no pool at all.
  if (threads > 1) engine.pool_ = std::make_unique<ThreadPool>(threads - 1);
  if (engine.pooled_) {
    engine.full_ = std::make_shared<SimWorkload>();
    engine.slots_.reserve(options.candidates.size());
    for (const TwinCandidate& candidate : options.candidates) {
      Slot slot;
      WEBTX_ASSIGN_OR_RETURN(slot.policy, CreatePolicy(candidate.policy));
      SimOptions sim_options;
      sim_options.admission = AdmissionFor(candidate);
      sim_options.record_outcomes = false;
      sim_options.pending_queue = options.pending_queue;
      WEBTX_ASSIGN_OR_RETURN(
          Simulator sim,
          Simulator::CreateShared(engine.full_, std::move(sim_options)));
      slot.sim = std::make_unique<Simulator>(std::move(sim));
      engine.slots_.push_back(std::move(slot));
    }
  } else {
    for (const TwinCandidate& candidate : options.candidates) {
      WEBTX_ASSIGN_OR_RETURN(auto probe, CreatePolicy(candidate.policy));
      (void)probe;
    }
  }
  return engine;
}

/// Translates a quiescent executor snapshot plus projected traffic into
/// the shadow simulator's workload, rebased so the snapshot instant is
/// t = 0. Already-late work keeps its (negative) relative deadline —
/// the simulator scores it tardy exactly as the live run would. The
/// spec values are a pure function of (snapshot, window, options,
/// tick); reusing the engine's buffers only recycles their capacity.
void TwinForecastEngine::BuildSpecsInto(const ExecutorSnapshot& snap,
                                        const TwinArrivalWindow& window,
                                        uint64_t tick) {
  const TwinOptions& options = options_;
  std::vector<TransactionSpec>& specs = spec_buffer_;
  specs.clear();
  if (specs.capacity() < snap.tasks.size()) specs.reserve(snap.tasks.size());
  // Snapshot id -> forecast index, for dependency remapping.
  remap_.clear();
  for (const SnapshotTask& task : snap.tasks) {
    if (task.id >= remap_.size()) remap_.resize(task.id + 1, kInvalidTxn);
    remap_[task.id] = specs.size();
    TransactionSpec spec;
    spec.id = specs.size();
    spec.arrival = std::max(0.0, task.release - snap.now);
    spec.length = std::max(kMinForecastSeconds,
                           task.remaining * options.snapshot_corruption);
    spec.length_estimate = spec.length;
    spec.deadline = task.deadline - snap.now;
    spec.weight = task.weight;
    specs.push_back(std::move(spec));
  }
  for (size_t i = 0; i < snap.tasks.size(); ++i) {
    for (const TxnId dep : snap.tasks[i].unfinished_dependencies) {
      if (dep < remap_.size() && remap_[dep] != kInvalidTxn) {
        specs[i].dependencies.push_back(remap_[dep]);
      }
    }
  }
  // Project the recent arrival mix forward over the horizon: a Poisson
  // stream at the observed window rate with the window's mean service
  // time, relative deadline, and weight. The projection is a pure
  // function of (forecast_seed, tick, window), so forecasts never
  // perturb the live timeline's determinism.
  if (window.count > 0) {
    const double rate =
        static_cast<double>(window.count) / options.control_interval;
    const double mean_duration =
        window.duration_sum / static_cast<double>(window.count);
    const double mean_deadline =
        window.deadline_sum / static_cast<double>(window.count);
    const double mean_weight =
        window.weight_sum / static_cast<double>(window.count);
    Rng rng(DeriveSeed(options.forecast_seed, kForecastStream, tick));
    double t = ExpDraw(rng, 1.0 / rate);
    size_t synthesized = 0;
    while (t < options.forecast_horizon &&
           synthesized < options.max_forecast_arrivals) {
      TransactionSpec spec;
      spec.id = specs.size();
      spec.arrival = t;
      spec.length =
          std::max(kMinForecastSeconds,
                   ExpDraw(rng, mean_duration) * options.snapshot_corruption);
      spec.length_estimate = spec.length;
      spec.deadline = t + std::max(kMinForecastSeconds, mean_deadline);
      spec.weight = mean_weight;
      specs.push_back(std::move(spec));
      t += ExpDraw(rng, 1.0 / rate);
      ++synthesized;
    }
  }
}

TwinForecast TwinForecastEngine::ForecastOne(size_t index, bool full_horizon,
                                             size_t num_workers_up) {
  const TwinCandidate& candidate = options_.candidates[index];
  // The pruning pass scores candidates on a simulated-time prefix of
  // the horizon: the SAME workload, cut off at prune_prefix of the
  // horizon, so it pays only the events due before the cutoff.
  const SimTime run_horizon =
      full_horizon ? 0.0 : options_.prune_prefix * options_.forecast_horizon;
  TwinForecast f;
  if (pooled_) {
    Slot& slot = slots_[index];
    slot.sim->BindWorkload(full_);
    slot.sim->set_num_servers(std::max<size_t>(1, num_workers_up));
    slot.sim->set_run_horizon(run_horizon);
    const RunResult r = slot.sim->Run(*slot.policy);
    slot_events_[index] += r.num_scheduling_points;
    f.tardiness = r.avg_tardiness;
    f.shed_ratio = 1.0 - r.goodput;
    f.score = f.tardiness + options_.shed_penalty * f.shed_ratio;
    return f;
  }
  // Rebuilt path: fresh policy + simulator (spec copy, graph rebuild,
  // cold arrays) per candidate per tick — exactly the pre-pooling
  // decision loop, kept as the differential and benchmark baseline.
  Result<std::unique_ptr<SchedulerPolicy>> policy =
      CreatePolicy(candidate.policy);
  if (!policy.ok()) return f;
  SimOptions sim_options;
  sim_options.num_servers = std::max<size_t>(1, num_workers_up);
  sim_options.admission = AdmissionFor(candidate);
  sim_options.record_outcomes = false;
  sim_options.pending_queue = options_.pending_queue;
  sim_options.txn_store = options_.txn_store;
  sim_options.run_horizon = run_horizon;
  Result<Simulator> sim = Simulator::Create(spec_buffer_, std::move(sim_options));
  if (!sim.ok()) return f;
  const RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());
  slot_events_[index] += r.num_scheduling_points;
  f.tardiness = r.avg_tardiness;
  f.shed_ratio = 1.0 - r.goodput;
  f.score = f.tardiness + options_.shed_penalty * f.shed_ratio;
  return f;
}

const std::vector<TwinForecast>& TwinForecastEngine::Forecast(
    const ExecutorSnapshot& snap, const TwinArrivalWindow& window,
    uint64_t tick, uint32_t incumbent) {
  const auto start = std::chrono::steady_clock::now();
  const size_t num_candidates = options_.candidates.size();
  WEBTX_CHECK(incumbent < num_candidates)
      << "incumbent candidate out of range";
  forecasts_.assign(num_candidates, TwinForecast{});
  slot_events_.assign(num_candidates, 0);
  BuildSpecsInto(snap, window, tick);

  if (spec_buffer_.empty()) {
    // Nothing to serve: every candidate forecasts a clean slate.
    for (TwinForecast& f : forecasts_) f.score = 0.0;
  } else {
    const size_t num_up = snap.num_workers_up;
    const bool prune = options_.prune && num_candidates >= 2;
    bool built = true;
    if (pooled_) {
      built = full_->Rebuild(spec_buffer_, options_.txn_store).ok();
    }
    if (built) {
      survivor_.assign(num_candidates, 1);
      const auto run_phase = [&](bool full_horizon) {
        const auto job = [&](size_t i) {
          if (!survivor_[i]) return;
          const TwinForecast f = ForecastOne(i, full_horizon, num_up);
          // Each candidate writes only its own index, so the merged
          // table is identical for any thread count.
          if (full_horizon) {
            forecasts_[i] = f;
          } else {
            prefix_score_[i] = f.score;
          }
        };
        if (pool_ != nullptr) {
          pool_->RunBatch(num_candidates, job);
        } else {
          for (size_t i = 0; i < num_candidates; ++i) job(i);
        }
      };
      if (prune) {
        prefix_score_.assign(num_candidates, 0.0);
        run_phase(/*full_horizon=*/false);
        // Successive halving: keep the top ceil(K/2) by (prefix score,
        // index) — the index tiebreak keeps survivor selection total —
        // and always the incumbent, whose full-horizon forecast feeds
        // the decision digest and the divergence guard.
        order_.resize(num_candidates);
        for (size_t i = 0; i < num_candidates; ++i) {
          order_[i] = static_cast<uint32_t>(i);
        }
        std::sort(order_.begin(), order_.end(),
                  [this](uint32_t a, uint32_t b) {
                    if (prefix_score_[a] != prefix_score_[b]) {
                      return prefix_score_[a] < prefix_score_[b];
                    }
                    return a < b;
                  });
        const size_t keep = (num_candidates + 1) / 2;
        survivor_.assign(num_candidates, 0);
        for (size_t k = 0; k < keep; ++k) survivor_[order_[k]] = 1;
        survivor_[incumbent] = 1;
      }
      run_phase(/*full_horizon=*/true);
      for (size_t i = 0; i < num_candidates; ++i) {
        if (survivor_[i]) {
          ++stats_.forecasts_run;
        } else {
          forecasts_[i].pruned = true;  // keeps the default infinite score
          ++stats_.forecasts_pruned;
        }
      }
    }
    // !built: an invalid spec made the shared workload unbuildable.
    // Leave every candidate at the default infinite score — the same
    // degraded table the rebuilt path produces when each per-candidate
    // Simulator::Create rejects those specs.
  }

  // Sum per-slot event counts in candidate-index order so the total is
  // independent of which thread ran which candidate.
  for (size_t i = 0; i < num_candidates; ++i) {
    stats_.forecast_events += slot_events_[i];
  }
  stats_.decision_ms +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return forecasts_;
}

namespace {

/// One control tick: close the observation window, run the divergence
/// guard, and (when the guard allows) forecast every candidate and apply
/// the hysteresis switch rule. Runs on the driver thread while it is a
/// runnable clock participant, so the whole tick — snapshot, forecasts,
/// reconfiguration — happens at one frozen virtual instant. `snap` is a
/// caller-owned buffer reused across ticks.
void ControlTick(const TwinOptions& options, Executor& exec,
                 TwinForecastEngine& engine, ControllerState& ctl,
                 uint64_t tick, TwinReport& report, ExecutorSnapshot& snap) {
  exec.SnapshotAtQuiescence(&snap);

  // Observed metrics of the window that just closed, from exact
  // counter diffs.
  const ExecutorStats& s = snap.stats;
  const size_t d_completed = s.completed - ctl.prev_stats.completed;
  const size_t d_submitted = s.submitted - ctl.prev_stats.submitted;
  const size_t d_shed = ShedCount(s) - ShedCount(ctl.prev_stats);
  const double observed_tardiness =
      d_completed > 0
          ? (s.tardiness_total - ctl.prev_stats.tardiness_total) /
                static_cast<double>(d_completed)
          : 0.0;
  const double observed_shed =
      d_submitted > 0 ? static_cast<double>(d_shed) /
                            static_cast<double>(d_submitted)
                      : 0.0;
  ctl.prev_stats = s;

  TwinDecision decision;
  decision.time = snap.now;
  decision.applied = ctl.applied;
  decision.best = ctl.applied;
  decision.observed_tardiness = observed_tardiness;
  decision.observed_shed_ratio = observed_shed;

  // Guard cooldown: the controller sits out, pinned to static.
  if (ctl.cooldown > 0) {
    --ctl.cooldown;
    decision.kind = ctl.cooldown == 0 ? TwinDecision::Kind::kReenable
                                      : TwinDecision::Kind::kCooldown;
    ctl.window.Reset();
    report.decisions.push_back(decision);
    return;
  }

  // Divergence guard: compare the window against the previous tick's
  // forecast for the configuration that was actually in force.
  if (ctl.has_forecast) {
    const double tardiness_error =
        std::abs(observed_tardiness - ctl.forecast_tardiness);
    const bool tardiness_diverged =
        tardiness_error > options.divergence_abs_floor &&
        tardiness_error >
            options.divergence_tolerance *
                std::max(ctl.forecast_tardiness, options.divergence_abs_floor);
    const bool shed_diverged =
        std::abs(observed_shed - ctl.forecast_shed) > options.shed_divergence;
    if (tardiness_diverged || shed_diverged) {
      ++ctl.strikes;
    } else {
      ctl.strikes = 0;
    }
  }
  if (ctl.strikes >= options.guard_strikes) {
    // The twin's model is off the rails: revert to the static
    // configuration and stop trusting forecasts for the cooldown.
    const auto static_index = static_cast<uint32_t>(options.static_index);
    if (ctl.applied != static_index) {
      const TwinCandidate& fallback = options.candidates[static_index];
      ReconfigureRequest request;
      request.policy = std::move(CreatePolicy(fallback.policy)).ValueOrDie();
      request.replace_admission = true;
      request.admission = AdmissionFor(fallback);
      exec.Reconfigure(std::move(request));
      ctl.applied = static_index;
    }
    ctl.strikes = 0;
    ctl.dwell = 0;
    ctl.has_forecast = false;
    ctl.cooldown = options.guard_cooldown_ticks;
    ctl.window.Reset();
    decision.kind = TwinDecision::Kind::kFallback;
    decision.applied = ctl.applied;
    decision.best = ctl.applied;
    ++report.fallbacks;
    report.decisions.push_back(decision);
    return;
  }

  // Shadow what-if forecasts, one per candidate, all from the same
  // warm-started workload.
  const std::vector<TwinForecast>& forecasts =
      engine.Forecast(snap, ctl.window, tick, ctl.applied);
  ctl.window.Reset();
  uint32_t best = 0;
  for (uint32_t i = 1; i < forecasts.size(); ++i) {
    if (forecasts[i].score < forecasts[best].score) best = i;
  }
  decision.best = best;

  // Hysteresis: switch only when the winner beats the incumbent by the
  // margin, the incumbent's predicted pain is actionable at all, and
  // the dwell has elapsed.
  const double incumbent_score = forecasts[ctl.applied].score;
  const bool actionable = incumbent_score > options.divergence_abs_floor;
  const bool margin_met =
      forecasts[best].score < incumbent_score * (1.0 - options.switch_margin);
  if (best != ctl.applied && actionable && margin_met &&
      ctl.dwell >= options.dwell_ticks) {
    const TwinCandidate& winner = options.candidates[best];
    ReconfigureRequest request;
    request.policy = std::move(CreatePolicy(winner.policy)).ValueOrDie();
    request.replace_admission = true;
    request.admission = AdmissionFor(winner);
    exec.Reconfigure(std::move(request));
    ctl.applied = best;
    ctl.dwell = 0;
    decision.kind = TwinDecision::Kind::kSwitch;
    ++report.switches;
  } else {
    decision.kind = TwinDecision::Kind::kHold;
    ++ctl.dwell;
  }
  decision.applied = ctl.applied;
  decision.predicted_tardiness = forecasts[ctl.applied].tardiness;
  decision.predicted_shed_ratio = forecasts[ctl.applied].shed_ratio;
  ctl.has_forecast = true;
  ctl.forecast_tardiness = decision.predicted_tardiness;
  ctl.forecast_shed = decision.predicted_shed_ratio;
  report.decisions.push_back(decision);
}

uint64_t TwinDigest(const TwinReport& report) {
  uint64_t hash = LiveTraceDigest(report.trace);
  hash = Fnv1a(hash, report.decisions.size());
  for (const TwinDecision& d : report.decisions) {
    hash = Fnv1a(hash, Bits(d.time));
    hash = Fnv1a(hash, static_cast<uint64_t>(d.kind));
    hash = Fnv1a(hash, d.applied);
    hash = Fnv1a(hash, d.best);
    hash = Fnv1a(hash, Bits(d.predicted_tardiness));
    hash = Fnv1a(hash, Bits(d.predicted_shed_ratio));
    hash = Fnv1a(hash, Bits(d.observed_tardiness));
    hash = Fnv1a(hash, Bits(d.observed_shed_ratio));
  }
  return hash;
}

}  // namespace

Result<TwinReport> Twin::Run(const std::vector<LiveArrival>& arrivals) {
  if (options_.candidates.empty()) {
    return Status::InvalidArgument("twin needs at least one candidate");
  }
  if (options_.static_index >= options_.candidates.size()) {
    return Status::InvalidArgument("static_index out of range");
  }
  if (options_.num_workers == 0) {
    return Status::InvalidArgument("twin needs at least one worker");
  }
  if (!(options_.control_interval > 0.0) ||
      !(options_.forecast_horizon > 0.0)) {
    return Status::InvalidArgument(
        "control_interval and forecast_horizon must be > 0");
  }
  if (!(options_.snapshot_corruption > 0.0)) {
    return Status::InvalidArgument("snapshot_corruption must be > 0");
  }
  // Validate every candidate spec up front so per-tick CreatePolicy
  // calls cannot fail mid-run.
  for (const TwinCandidate& candidate : options_.candidates) {
    WEBTX_ASSIGN_OR_RETURN(auto probe, CreatePolicy(candidate.policy));
    (void)probe;
    if (candidate.admission == TwinCandidate::Admission::kQueueDepth &&
        candidate.max_ready == 0) {
      return Status::InvalidArgument("queue-depth candidate needs max_ready");
    }
    if (candidate.capacity_slo < 0.0 || candidate.capacity_slo > 1.0) {
      return Status::InvalidArgument("capacity_slo must be in [0, 1]");
    }
  }
  WEBTX_ASSIGN_OR_RETURN(FaultPlan plan_check,
                         FaultPlan::Create(options_.faults.plan));
  (void)plan_check;

  // The forecast engine owns the per-candidate shadow simulators (and
  // validates the forecast-execution knobs); only built when control
  // ticks will actually run.
  std::unique_ptr<TwinForecastEngine> engine;
  if (options_.controller_enabled) {
    WEBTX_ASSIGN_OR_RETURN(TwinForecastEngine built,
                           TwinForecastEngine::Create(options_));
    engine = std::make_unique<TwinForecastEngine>(std::move(built));
  }

  const TwinCandidate& initial = options_.candidates[options_.static_index];
  WEBTX_ASSIGN_OR_RETURN(auto policy, CreatePolicy(initial.policy));

  auto clock = std::make_shared<VirtualClock>();
  ExecutorOptions exec_options;
  exec_options.num_workers = options_.num_workers;
  exec_options.clock = clock;
  exec_options.faults = options_.faults;
  exec_options.migration = options_.migration;
  exec_options.admission = AdmissionFor(initial);
  exec_options.watchdog = options_.watchdog;
  exec_options.watchdog_stall_seconds = options_.watchdog_stall_seconds;
  exec_options.retry_max_backoff = options_.retry_max_backoff;
  exec_options.retry_budget = options_.retry_budget;
  exec_options.record_trace = true;
  Executor exec(std::move(policy), exec_options);

  TwinReport report;
  report.tasks.resize(arrivals.size());
  report.validator_options.watchdog = options_.watchdog;
  report.validator_options.watchdog_stall_seconds =
      options_.watchdog_stall_seconds;
  report.validator_options.retry_max_backoff = options_.retry_max_backoff;
  std::vector<TxnId> ids(arrivals.size(), kInvalidTxn);

  ControllerState ctl;
  ctl.applied = static_cast<uint32_t>(options_.static_index);
  uint64_t tick = 0;
  double next_tick = options_.control_interval;
  ExecutorSnapshot snap;  // reused across control ticks

  // The driver is a clock participant: virtual time halts while it
  // submits, snapshots, forecasts, and reconfigures, so every arrival
  // and every control tick lands at its exact virtual instant.
  clock->RegisterParticipant();
  Status failure;  // deferred so the participant is always deregistered
  size_t next = 0;
  while (failure.ok()) {
    const bool arrivals_left = next < arrivals.size();
    if (!arrivals_left && exec.finished_count() == arrivals.size()) break;
    const double arrival_due =
        arrivals_left ? arrivals[next].arrival : kNeverSeconds;
    if (!options_.controller_enabled) {
      // Pure static serving: no ticks, just the replay/generator feed.
      if (!arrivals_left) break;  // Drain below runs the tail down
      clock->SleepUntil(arrival_due, nullptr);
    } else if (arrival_due > next_tick) {
      clock->SleepUntil(next_tick, nullptr);
      ControlTick(options_, exec, *engine, ctl, tick, report, snap);
      ++tick;
      next_tick += options_.control_interval;
      continue;
    } else {
      clock->SleepUntil(arrival_due, nullptr);
    }
    const LiveArrival& arrival = arrivals[next];
    TaskSpec spec;
    spec.relative_deadline = arrival.relative_deadline;
    spec.weight = arrival.weight;
    spec.estimated_cost = arrival.duration;
    spec.simulated_duration = arrival.duration;
    spec.max_attempts = options_.retry_max_attempts;
    spec.retry_backoff_seconds = options_.retry_backoff;
    spec.backoff_multiplier = options_.retry_backoff_multiplier;
    Result<TxnId> id = exec.Submit(std::move(spec));
    if (!id.ok()) {
      failure = id.status();
      break;
    }
    ids[next] = std::move(id).ValueOrDie();
    LiveTaskRecord& record = report.tasks[ids[next]];
    record.submit_seconds = arrival.arrival;
    record.deadline_seconds = arrival.arrival + arrival.relative_deadline;
    record.max_attempts = options_.retry_max_attempts;
    record.retry_backoff = options_.retry_backoff;
    record.backoff_multiplier = options_.retry_backoff_multiplier;
    record.simulated = true;
    ctl.window.Observe(arrival);
    ++next;
  }
  exec.Drain();
  exec.Shutdown();
  clock->DeregisterParticipant();
  if (!failure.ok()) return failure;

  report.trace = exec.TakeTrace();
  report.outcomes.resize(arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    report.outcomes[ids[i]] = exec.OutcomeOf(ids[i]);
  }
  report.stats = exec.stats();
  report.final_config = ctl.applied;
  const ExecutorStats& s = report.stats;
  report.avg_tardiness =
      s.completed > 0 ? s.tardiness_total / static_cast<double>(s.completed)
                      : 0.0;
  report.shed_ratio =
      s.submitted > 0 ? static_cast<double>(ShedCount(s)) /
                            static_cast<double>(s.submitted)
                      : 0.0;
  report.goodput = s.submitted > 0 ? static_cast<double>(s.completed) /
                                         static_cast<double>(s.submitted)
                                   : 0.0;
  if (engine != nullptr) report.decision_stats = engine->stats();
  report.digest = TwinDigest(report);
  return report;
}

}  // namespace webtx::rt
