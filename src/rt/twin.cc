#include "rt/twin.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "rt/clock.h"
#include "sched/policy_factory.h"
#include "sim/simulator.h"

namespace webtx::rt {
namespace {

// DeriveSeed stream tag of the per-tick synthetic-arrival forecasts.
constexpr uint64_t kForecastStream = 0x7D161A17ull;

/// Smallest service time the shadow simulator is fed (mirrors the live
/// harness floor in workload/live_arrivals.cc).
constexpr double kMinForecastSeconds = 1e-4;

constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t Fnv1a(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t Bits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double ExpDraw(Rng& rng, double mean) {
  return -mean * std::log1p(-rng.NextDouble());
}

/// Terminal-but-not-completed count from the live stats counters.
size_t ShedCount(const ExecutorStats& s) {
  return s.shed_admission + s.shed_shutdown + s.dropped_retries +
         s.dropped_dependency;
}

AdmissionFactory AdmissionFor(const TwinCandidate& candidate) {
  switch (candidate.admission) {
    case TwinCandidate::Admission::kNone:
      return nullptr;
    case TwinCandidate::Admission::kQueueDepth: {
      QueueDepthAdmissionOptions o;
      o.max_ready = candidate.max_ready;
      return MakeQueueDepthAdmission(o);
    }
    case TwinCandidate::Admission::kBrownout: {
      BrownoutAdmissionOptions o;
      o.capacity_slo = candidate.capacity_slo;
      return MakeBrownoutAdmission(o);
    }
  }
  return nullptr;
}

/// What one shadow run predicts for one candidate.
struct Forecast {
  double tardiness = 0.0;
  double shed_ratio = 0.0;
  double score = std::numeric_limits<double>::infinity();
};

/// Recent-traffic statistics the driver accumulates between ticks, the
/// forecast's model of future arrivals.
struct ArrivalWindow {
  size_t count = 0;
  double duration_sum = 0.0;
  double deadline_sum = 0.0;  // relative deadlines
  double weight_sum = 0.0;

  void Observe(const LiveArrival& a) {
    ++count;
    duration_sum += a.duration;
    deadline_sum += a.relative_deadline;
    weight_sum += a.weight;
  }
  void Reset() { *this = ArrivalWindow(); }
};

/// Mutable controller state threaded through the serving loop.
struct ControllerState {
  uint32_t applied = 0;
  size_t dwell = 0;       // ticks since the last switch
  size_t strikes = 0;     // consecutive divergent windows
  size_t cooldown = 0;    // remaining guard-cooldown ticks
  bool has_forecast = false;
  double forecast_tardiness = 0.0;
  double forecast_shed = 0.0;
  ExecutorStats prev_stats;  // window baseline
  ArrivalWindow window;
};

}  // namespace

const char* TwinDecisionKindName(TwinDecision::Kind kind) {
  switch (kind) {
    case TwinDecision::Kind::kHold:
      return "hold";
    case TwinDecision::Kind::kSwitch:
      return "switch";
    case TwinDecision::Kind::kFallback:
      return "fallback";
    case TwinDecision::Kind::kCooldown:
      return "cooldown";
    case TwinDecision::Kind::kReenable:
      return "reenable";
  }
  return "?";
}

Twin::Twin(TwinOptions options) : options_(std::move(options)) {}

namespace {

/// Translates a quiescent executor snapshot plus projected traffic into
/// the shadow simulator's workload, rebased so the snapshot instant is
/// t = 0. Already-late work keeps its (negative) relative deadline —
/// the simulator scores it tardy exactly as the live run would.
std::vector<TransactionSpec> BuildForecastSpecs(const TwinOptions& options,
                                                const ExecutorSnapshot& snap,
                                                const ArrivalWindow& window,
                                                uint64_t tick) {
  std::vector<TransactionSpec> specs;
  specs.reserve(snap.tasks.size());
  // Snapshot id -> forecast index, for dependency remapping.
  std::vector<TxnId> remap;
  for (const SnapshotTask& task : snap.tasks) {
    if (task.id >= remap.size()) remap.resize(task.id + 1, kInvalidTxn);
    remap[task.id] = specs.size();
    TransactionSpec spec;
    spec.id = specs.size();
    spec.arrival = std::max(0.0, task.release - snap.now);
    spec.length = std::max(kMinForecastSeconds,
                           task.remaining * options.snapshot_corruption);
    spec.length_estimate = spec.length;
    spec.deadline = task.deadline - snap.now;
    spec.weight = task.weight;
    specs.push_back(std::move(spec));
  }
  for (size_t i = 0; i < snap.tasks.size(); ++i) {
    for (const TxnId dep : snap.tasks[i].unfinished_dependencies) {
      if (dep < remap.size() && remap[dep] != kInvalidTxn) {
        specs[i].dependencies.push_back(remap[dep]);
      }
    }
  }
  // Project the recent arrival mix forward over the horizon: a Poisson
  // stream at the observed window rate with the window's mean service
  // time, relative deadline, and weight. The projection is a pure
  // function of (forecast_seed, tick, window), so forecasts never
  // perturb the live timeline's determinism.
  if (window.count > 0) {
    const double rate =
        static_cast<double>(window.count) / options.control_interval;
    const double mean_duration =
        window.duration_sum / static_cast<double>(window.count);
    const double mean_deadline =
        window.deadline_sum / static_cast<double>(window.count);
    const double mean_weight =
        window.weight_sum / static_cast<double>(window.count);
    Rng rng(DeriveSeed(options.forecast_seed, kForecastStream, tick));
    double t = ExpDraw(rng, 1.0 / rate);
    size_t synthesized = 0;
    while (t < options.forecast_horizon &&
           synthesized < options.max_forecast_arrivals) {
      TransactionSpec spec;
      spec.id = specs.size();
      spec.arrival = t;
      spec.length =
          std::max(kMinForecastSeconds,
                   ExpDraw(rng, mean_duration) * options.snapshot_corruption);
      spec.length_estimate = spec.length;
      spec.deadline = t + std::max(kMinForecastSeconds, mean_deadline);
      spec.weight = mean_weight;
      specs.push_back(std::move(spec));
      t += ExpDraw(rng, 1.0 / rate);
      ++synthesized;
    }
  }
  return specs;
}

/// Runs one candidate's what-if forecast on the shadow simulator.
Forecast ForecastCandidate(const TwinOptions& options,
                           const TwinCandidate& candidate,
                           const std::vector<TransactionSpec>& specs,
                           size_t num_servers_up) {
  Forecast f;
  if (specs.empty()) {
    // Nothing to serve: every candidate forecasts a clean slate.
    f.score = 0.0;
    return f;
  }
  Result<std::unique_ptr<SchedulerPolicy>> policy =
      CreatePolicy(candidate.policy);
  if (!policy.ok()) return f;
  SimOptions sim_options;
  sim_options.num_servers = std::max<size_t>(1, num_servers_up);
  sim_options.admission = AdmissionFor(candidate);
  sim_options.record_outcomes = false;
  Result<Simulator> sim = Simulator::Create(specs, sim_options);
  if (!sim.ok()) return f;
  const RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());
  f.tardiness = r.avg_tardiness;
  f.shed_ratio = 1.0 - r.goodput;
  f.score = f.tardiness + options.shed_penalty * f.shed_ratio;
  return f;
}

/// One control tick: close the observation window, run the divergence
/// guard, and (when the guard allows) forecast every candidate and apply
/// the hysteresis switch rule. Runs on the driver thread while it is a
/// runnable clock participant, so the whole tick — snapshot, forecasts,
/// reconfiguration — happens at one frozen virtual instant.
void ControlTick(const TwinOptions& options, Executor& exec,
                 ControllerState& ctl, uint64_t tick, TwinReport& report) {
  const ExecutorSnapshot snap = exec.SnapshotAtQuiescence();

  // Observed metrics of the window that just closed, from exact
  // counter diffs.
  const ExecutorStats& s = snap.stats;
  const size_t d_completed = s.completed - ctl.prev_stats.completed;
  const size_t d_submitted = s.submitted - ctl.prev_stats.submitted;
  const size_t d_shed = ShedCount(s) - ShedCount(ctl.prev_stats);
  const double observed_tardiness =
      d_completed > 0
          ? (s.tardiness_total - ctl.prev_stats.tardiness_total) /
                static_cast<double>(d_completed)
          : 0.0;
  const double observed_shed =
      d_submitted > 0 ? static_cast<double>(d_shed) /
                            static_cast<double>(d_submitted)
                      : 0.0;
  ctl.prev_stats = s;

  TwinDecision decision;
  decision.time = snap.now;
  decision.applied = ctl.applied;
  decision.best = ctl.applied;
  decision.observed_tardiness = observed_tardiness;
  decision.observed_shed_ratio = observed_shed;

  // Guard cooldown: the controller sits out, pinned to static.
  if (ctl.cooldown > 0) {
    --ctl.cooldown;
    decision.kind = ctl.cooldown == 0 ? TwinDecision::Kind::kReenable
                                      : TwinDecision::Kind::kCooldown;
    ctl.window.Reset();
    report.decisions.push_back(decision);
    return;
  }

  // Divergence guard: compare the window against the previous tick's
  // forecast for the configuration that was actually in force.
  if (ctl.has_forecast) {
    const double tardiness_error =
        std::abs(observed_tardiness - ctl.forecast_tardiness);
    const bool tardiness_diverged =
        tardiness_error > options.divergence_abs_floor &&
        tardiness_error >
            options.divergence_tolerance *
                std::max(ctl.forecast_tardiness, options.divergence_abs_floor);
    const bool shed_diverged =
        std::abs(observed_shed - ctl.forecast_shed) > options.shed_divergence;
    if (tardiness_diverged || shed_diverged) {
      ++ctl.strikes;
    } else {
      ctl.strikes = 0;
    }
  }
  if (ctl.strikes >= options.guard_strikes) {
    // The twin's model is off the rails: revert to the static
    // configuration and stop trusting forecasts for the cooldown.
    const auto static_index = static_cast<uint32_t>(options.static_index);
    if (ctl.applied != static_index) {
      const TwinCandidate& fallback = options.candidates[static_index];
      ReconfigureRequest request;
      request.policy = std::move(CreatePolicy(fallback.policy)).ValueOrDie();
      request.replace_admission = true;
      request.admission = AdmissionFor(fallback);
      exec.Reconfigure(std::move(request));
      ctl.applied = static_index;
    }
    ctl.strikes = 0;
    ctl.dwell = 0;
    ctl.has_forecast = false;
    ctl.cooldown = options.guard_cooldown_ticks;
    ctl.window.Reset();
    decision.kind = TwinDecision::Kind::kFallback;
    decision.applied = ctl.applied;
    decision.best = ctl.applied;
    ++report.fallbacks;
    report.decisions.push_back(decision);
    return;
  }

  // Shadow what-if forecasts, one per candidate, all from the same
  // warm-started workload.
  const std::vector<TransactionSpec> specs =
      BuildForecastSpecs(options, snap, ctl.window, tick);
  ctl.window.Reset();
  std::vector<Forecast> forecasts(options.candidates.size());
  for (size_t i = 0; i < options.candidates.size(); ++i) {
    forecasts[i] = ForecastCandidate(options, options.candidates[i], specs,
                                     snap.num_workers_up);
  }
  uint32_t best = 0;
  for (uint32_t i = 1; i < forecasts.size(); ++i) {
    if (forecasts[i].score < forecasts[best].score) best = i;
  }
  decision.best = best;

  // Hysteresis: switch only when the winner beats the incumbent by the
  // margin, the incumbent's predicted pain is actionable at all, and
  // the dwell has elapsed.
  const double incumbent_score = forecasts[ctl.applied].score;
  const bool actionable = incumbent_score > options.divergence_abs_floor;
  const bool margin_met =
      forecasts[best].score < incumbent_score * (1.0 - options.switch_margin);
  if (best != ctl.applied && actionable && margin_met &&
      ctl.dwell >= options.dwell_ticks) {
    const TwinCandidate& winner = options.candidates[best];
    ReconfigureRequest request;
    request.policy = std::move(CreatePolicy(winner.policy)).ValueOrDie();
    request.replace_admission = true;
    request.admission = AdmissionFor(winner);
    exec.Reconfigure(std::move(request));
    ctl.applied = best;
    ctl.dwell = 0;
    decision.kind = TwinDecision::Kind::kSwitch;
    ++report.switches;
  } else {
    decision.kind = TwinDecision::Kind::kHold;
    ++ctl.dwell;
  }
  decision.applied = ctl.applied;
  decision.predicted_tardiness = forecasts[ctl.applied].tardiness;
  decision.predicted_shed_ratio = forecasts[ctl.applied].shed_ratio;
  ctl.has_forecast = true;
  ctl.forecast_tardiness = decision.predicted_tardiness;
  ctl.forecast_shed = decision.predicted_shed_ratio;
  report.decisions.push_back(decision);
}

uint64_t TwinDigest(const TwinReport& report) {
  uint64_t hash = LiveTraceDigest(report.trace);
  hash = Fnv1a(hash, report.decisions.size());
  for (const TwinDecision& d : report.decisions) {
    hash = Fnv1a(hash, Bits(d.time));
    hash = Fnv1a(hash, static_cast<uint64_t>(d.kind));
    hash = Fnv1a(hash, d.applied);
    hash = Fnv1a(hash, d.best);
    hash = Fnv1a(hash, Bits(d.predicted_tardiness));
    hash = Fnv1a(hash, Bits(d.predicted_shed_ratio));
    hash = Fnv1a(hash, Bits(d.observed_tardiness));
    hash = Fnv1a(hash, Bits(d.observed_shed_ratio));
  }
  return hash;
}

}  // namespace

Result<TwinReport> Twin::Run(const std::vector<LiveArrival>& arrivals) {
  if (options_.candidates.empty()) {
    return Status::InvalidArgument("twin needs at least one candidate");
  }
  if (options_.static_index >= options_.candidates.size()) {
    return Status::InvalidArgument("static_index out of range");
  }
  if (options_.num_workers == 0) {
    return Status::InvalidArgument("twin needs at least one worker");
  }
  if (!(options_.control_interval > 0.0) ||
      !(options_.forecast_horizon > 0.0)) {
    return Status::InvalidArgument(
        "control_interval and forecast_horizon must be > 0");
  }
  if (!(options_.snapshot_corruption > 0.0)) {
    return Status::InvalidArgument("snapshot_corruption must be > 0");
  }
  // Validate every candidate spec up front so per-tick CreatePolicy
  // calls cannot fail mid-run.
  for (const TwinCandidate& candidate : options_.candidates) {
    WEBTX_ASSIGN_OR_RETURN(auto probe, CreatePolicy(candidate.policy));
    (void)probe;
    if (candidate.admission == TwinCandidate::Admission::kQueueDepth &&
        candidate.max_ready == 0) {
      return Status::InvalidArgument("queue-depth candidate needs max_ready");
    }
    if (candidate.capacity_slo < 0.0 || candidate.capacity_slo > 1.0) {
      return Status::InvalidArgument("capacity_slo must be in [0, 1]");
    }
  }
  WEBTX_ASSIGN_OR_RETURN(FaultPlan plan_check,
                         FaultPlan::Create(options_.faults.plan));
  (void)plan_check;

  const TwinCandidate& initial = options_.candidates[options_.static_index];
  WEBTX_ASSIGN_OR_RETURN(auto policy, CreatePolicy(initial.policy));

  auto clock = std::make_shared<VirtualClock>();
  ExecutorOptions exec_options;
  exec_options.num_workers = options_.num_workers;
  exec_options.clock = clock;
  exec_options.faults = options_.faults;
  exec_options.migration = options_.migration;
  exec_options.admission = AdmissionFor(initial);
  exec_options.watchdog = options_.watchdog;
  exec_options.watchdog_stall_seconds = options_.watchdog_stall_seconds;
  exec_options.retry_max_backoff = options_.retry_max_backoff;
  exec_options.retry_budget = options_.retry_budget;
  exec_options.record_trace = true;
  Executor exec(std::move(policy), exec_options);

  TwinReport report;
  report.tasks.resize(arrivals.size());
  report.validator_options.watchdog = options_.watchdog;
  report.validator_options.watchdog_stall_seconds =
      options_.watchdog_stall_seconds;
  report.validator_options.retry_max_backoff = options_.retry_max_backoff;
  std::vector<TxnId> ids(arrivals.size(), kInvalidTxn);

  ControllerState ctl;
  ctl.applied = static_cast<uint32_t>(options_.static_index);
  uint64_t tick = 0;
  double next_tick = options_.control_interval;

  // The driver is a clock participant: virtual time halts while it
  // submits, snapshots, forecasts, and reconfigures, so every arrival
  // and every control tick lands at its exact virtual instant.
  clock->RegisterParticipant();
  Status failure;  // deferred so the participant is always deregistered
  size_t next = 0;
  while (failure.ok()) {
    const bool arrivals_left = next < arrivals.size();
    if (!arrivals_left && exec.finished_count() == arrivals.size()) break;
    const double arrival_due =
        arrivals_left ? arrivals[next].arrival : kNeverSeconds;
    if (!options_.controller_enabled) {
      // Pure static serving: no ticks, just the replay/generator feed.
      if (!arrivals_left) break;  // Drain below runs the tail down
      clock->SleepUntil(arrival_due, nullptr);
    } else if (arrival_due > next_tick) {
      clock->SleepUntil(next_tick, nullptr);
      ControlTick(options_, exec, ctl, tick, report);
      ++tick;
      next_tick += options_.control_interval;
      continue;
    } else {
      clock->SleepUntil(arrival_due, nullptr);
    }
    const LiveArrival& arrival = arrivals[next];
    TaskSpec spec;
    spec.relative_deadline = arrival.relative_deadline;
    spec.weight = arrival.weight;
    spec.estimated_cost = arrival.duration;
    spec.simulated_duration = arrival.duration;
    spec.max_attempts = options_.retry_max_attempts;
    spec.retry_backoff_seconds = options_.retry_backoff;
    spec.backoff_multiplier = options_.retry_backoff_multiplier;
    Result<TxnId> id = exec.Submit(std::move(spec));
    if (!id.ok()) {
      failure = id.status();
      break;
    }
    ids[next] = std::move(id).ValueOrDie();
    LiveTaskRecord& record = report.tasks[ids[next]];
    record.submit_seconds = arrival.arrival;
    record.deadline_seconds = arrival.arrival + arrival.relative_deadline;
    record.max_attempts = options_.retry_max_attempts;
    record.retry_backoff = options_.retry_backoff;
    record.backoff_multiplier = options_.retry_backoff_multiplier;
    record.simulated = true;
    ctl.window.Observe(arrival);
    ++next;
  }
  exec.Drain();
  exec.Shutdown();
  clock->DeregisterParticipant();
  if (!failure.ok()) return failure;

  report.trace = exec.TakeTrace();
  report.outcomes.resize(arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    report.outcomes[ids[i]] = exec.OutcomeOf(ids[i]);
  }
  report.stats = exec.stats();
  report.final_config = ctl.applied;
  const ExecutorStats& s = report.stats;
  report.avg_tardiness =
      s.completed > 0 ? s.tardiness_total / static_cast<double>(s.completed)
                      : 0.0;
  report.shed_ratio =
      s.submitted > 0 ? static_cast<double>(ShedCount(s)) /
                            static_cast<double>(s.submitted)
                      : 0.0;
  report.goodput = s.submitted > 0 ? static_cast<double>(s.completed) /
                                         static_cast<double>(s.submitted)
                                   : 0.0;
  report.digest = TwinDigest(report);
  return report;
}

}  // namespace webtx::rt
