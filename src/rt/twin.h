#ifndef WEBTX_RT_TWIN_H_
#define WEBTX_RT_TWIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "rt/executor.h"
#include "rt/live_trace.h"
#include "rt/live_validator.h"
#include "sim/fault_plan.h"
#include "workload/live_arrivals.h"

namespace webtx::rt {

/// One live configuration the twin's controller can apply online: a
/// transaction-level policy spec (sched/policy_factory.h) plus an
/// admission knob.
struct TwinCandidate {
  std::string policy = "FCFS";
  enum class Admission : uint8_t { kNone = 0, kQueueDepth, kBrownout };
  Admission admission = Admission::kNone;
  /// kQueueDepth cap (>= 1 when used).
  size_t max_ready = 64;
  /// kBrownout crash-aware down-fraction SLO (0 = signal off); see
  /// BrownoutAdmissionOptions::capacity_slo.
  double capacity_slo = 0.0;
};

/// Digital-twin serving-loop knobs. The `candidates` table is the
/// controller's whole action space; `static_index` names both the
/// configuration the run starts under and the one the divergence guard
/// falls back to.
struct TwinOptions {
  size_t num_workers = 2;
  std::vector<TwinCandidate> candidates;
  size_t static_index = 0;
  /// Off = pure static serving (the A side of every A-B): no control
  /// ticks, no reconfiguration, no decisions.
  bool controller_enabled = true;

  // -- Control-loop cadence and hysteresis --
  double control_interval = 0.25;  // virtual seconds between ticks
  double forecast_horizon = 0.5;   // what-if lookahead per tick
  /// Required relative score improvement before a switch (plus a dwell
  /// of `dwell_ticks` ticks since the last switch): hysteresis against
  /// forecast-noise flapping.
  double switch_margin = 0.1;
  size_t dwell_ticks = 2;
  /// Score = predicted avg tardiness + shed_penalty * predicted shed
  /// fraction (lower is better).
  double shed_penalty = 1.0;

  // -- Divergence guard (the robustness headline) --
  /// Observed window tardiness diverges when it misses the forecast by
  /// more than tolerance * max(forecast, abs_floor) AND by more than
  /// abs_floor seconds; shed ratios diverge when they differ by more
  /// than shed_divergence (absolute, both in [0, 1]).
  double divergence_tolerance = 2.0;
  double divergence_abs_floor = 0.05;
  double shed_divergence = 0.5;
  /// Consecutive divergent ticks before the guard trips.
  size_t guard_strikes = 2;
  /// Ticks the controller stays on the static configuration (no
  /// forecasts, no switches) after tripping.
  size_t guard_cooldown_ticks = 4;

  // -- Shadow-model fidelity --
  uint64_t forecast_seed = 2009;
  /// Multiplies every service-time estimate the shadow simulator is fed
  /// (snapshot residuals and synthetic future durations). 1.0 =
  /// faithful model; anything else corrupts the twin — the forced-
  /// divergence hook the guard's acceptance test leans on.
  double snapshot_corruption = 1.0;
  /// Cap on synthetic future arrivals per forecast (tick cost bound).
  size_t max_forecast_arrivals = 2000;

  // -- Live executor knobs (mirror ExecutorOptions) --
  FaultInjectorOptions faults;
  MigrationPolicy migration = MigrationPolicy::kWarm;
  bool watchdog = false;
  double watchdog_stall_seconds = 0.0;
  uint32_t retry_max_attempts = 1;
  double retry_backoff = 0.0;
  double retry_backoff_multiplier = 2.0;
  double retry_max_backoff = 0.0;
  size_t retry_budget = 0;
};

/// One recorded controller decision (one per control tick).
struct TwinDecision {
  enum class Kind : uint8_t {
    kHold = 0,   // kept the applied configuration
    kSwitch,     // reconfigured to a better-scoring candidate
    kFallback,   // divergence guard tripped: reverted to static
    kCooldown,   // guard cooldown tick (no forecasting)
    kReenable,   // last cooldown tick: controller live again next tick
  };
  double time = 0.0;
  Kind kind = Kind::kHold;
  /// Candidate index in force AFTER the tick.
  uint32_t applied = 0;
  /// Forecast winner (kHold/kSwitch ticks only).
  uint32_t best = 0;
  /// Shadow forecast for the post-tick applied configuration
  /// (kHold/kSwitch only) — next tick's guard reference.
  double predicted_tardiness = 0.0;
  double predicted_shed_ratio = 0.0;
  /// Observed metrics of the window that just closed.
  double observed_tardiness = 0.0;
  double observed_shed_ratio = 0.0;
};

const char* TwinDecisionKindName(TwinDecision::Kind kind);

/// Everything one twin run produced: the validated-trace bundle (same
/// shape exp/live_chaos consumes), the decision log, and a combined
/// digest covering both — byte-identity of a twin run includes what the
/// controller DID, not just what the executor executed.
struct TwinReport {
  std::vector<LiveTraceEvent> trace;
  std::vector<LiveTaskRecord> tasks;  // validator ground truth, by TxnId
  std::vector<TaskOutcome> outcomes;  // by TxnId
  ExecutorStats stats;
  std::vector<TwinDecision> decisions;
  uint64_t digest = 0;
  size_t switches = 0;
  size_t fallbacks = 0;
  uint32_t final_config = 0;
  /// Options the live validator needs to audit `trace`.
  LiveValidatorOptions validator_options;
  // Headline metrics.
  double avg_tardiness = 0.0;  // mean over completed tasks
  double shed_ratio = 0.0;     // non-completed / submitted
  double goodput = 0.0;        // completed / submitted
};

/// The digital-twin serving loop: a live front end submits `arrivals`
/// to an rt::Executor at their exact virtual instants while, every
/// control_interval, a shadow Simulator warm-started from a quiescent
/// executor snapshot runs faster-than-real-time what-if forecasts
/// (tardiness / shed ratio / goodput for every candidate policy ×
/// admission knob over forecast_horizon of projected traffic) and a
/// hysteresis controller applies the winner via
/// Executor::Reconfigure — at quiescent points, so in-flight work is
/// never lost. A divergence guard compares each window's observed
/// tardiness/shed against the previous tick's forecast and, after
/// guard_strikes consecutive misses, falls back to the static
/// configuration for guard_cooldown_ticks (the twin must survive its
/// own model being wrong). On a VirtualClock the whole loop — arrivals,
/// faults, forecasts, reconfigurations — is one deterministic timeline:
/// TwinReport::digest is byte-stable across repeats and host thread
/// counts (tools/chaos --twin pins it).
class Twin {
 public:
  explicit Twin(TwinOptions options);

  /// Runs the serving loop over the materialized arrival batch to
  /// quiescence. The calling thread drives submissions and control
  /// ticks as a registered clock participant. Fails on invalid options
  /// (unknown policy spec, bad fault plan, empty candidate table, ...).
  Result<TwinReport> Run(const std::vector<LiveArrival>& arrivals);

 private:
  TwinOptions options_;
};

}  // namespace webtx::rt

#endif  // WEBTX_RT_TWIN_H_
