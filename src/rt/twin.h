#ifndef WEBTX_RT_TWIN_H_
#define WEBTX_RT_TWIN_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "rt/executor.h"
#include "rt/live_trace.h"
#include "rt/live_validator.h"
#include "sched/scheduler_policy.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "workload/live_arrivals.h"

namespace webtx::rt {

/// One live configuration the twin's controller can apply online: a
/// transaction-level policy spec (sched/policy_factory.h) plus an
/// admission knob.
struct TwinCandidate {
  std::string policy = "FCFS";
  enum class Admission : uint8_t { kNone = 0, kQueueDepth, kBrownout };
  Admission admission = Admission::kNone;
  /// kQueueDepth cap (>= 1 when used).
  size_t max_ready = 64;
  /// kBrownout crash-aware down-fraction SLO (0 = signal off); see
  /// BrownoutAdmissionOptions::capacity_slo.
  double capacity_slo = 0.0;
};

/// Digital-twin serving-loop knobs. The `candidates` table is the
/// controller's whole action space; `static_index` names both the
/// configuration the run starts under and the one the divergence guard
/// falls back to.
struct TwinOptions {
  size_t num_workers = 2;
  std::vector<TwinCandidate> candidates;
  size_t static_index = 0;
  /// Off = pure static serving (the A side of every A-B): no control
  /// ticks, no reconfiguration, no decisions.
  bool controller_enabled = true;

  // -- Control-loop cadence and hysteresis --
  double control_interval = 0.25;  // virtual seconds between ticks
  double forecast_horizon = 0.5;   // what-if lookahead per tick
  /// Required relative score improvement before a switch (plus a dwell
  /// of `dwell_ticks` ticks since the last switch): hysteresis against
  /// forecast-noise flapping.
  double switch_margin = 0.1;
  size_t dwell_ticks = 2;
  /// Score = predicted avg tardiness + shed_penalty * predicted shed
  /// fraction (lower is better).
  double shed_penalty = 1.0;

  // -- Divergence guard (the robustness headline) --
  /// Observed window tardiness diverges when it misses the forecast by
  /// more than tolerance * max(forecast, abs_floor) AND by more than
  /// abs_floor seconds; shed ratios diverge when they differ by more
  /// than shed_divergence (absolute, both in [0, 1]).
  double divergence_tolerance = 2.0;
  double divergence_abs_floor = 0.05;
  double shed_divergence = 0.5;
  /// Consecutive divergent ticks before the guard trips.
  size_t guard_strikes = 2;
  /// Ticks the controller stays on the static configuration (no
  /// forecasts, no switches) after tripping.
  size_t guard_cooldown_ticks = 4;

  // -- Shadow-model fidelity --
  uint64_t forecast_seed = 2009;
  /// Multiplies every service-time estimate the shadow simulator is fed
  /// (snapshot residuals and synthetic future durations). 1.0 =
  /// faithful model; anything else corrupts the twin — the forced-
  /// divergence hook the guard's acceptance test leans on.
  double snapshot_corruption = 1.0;
  /// Cap on synthetic future arrivals per forecast (tick cost bound).
  size_t max_forecast_arrivals = 2000;

  // -- Forecast execution (decision-loop cost knobs) --
  // None of these may change WHAT the controller decides, only how fast
  // it decides it: the decision sequence (and so TwinReport::digest) is
  // byte-identical across every setting below, except that `prune` is
  // identity-preserving only when the halved prefix ranking keeps the
  // full-horizon winner (pinned by differential tests on the committed
  // scenarios; prune stays off by default).
  /// Worker threads for the per-candidate forecast fan-out. 1 = serial
  /// in the control thread; 0 = hardware concurrency. Results merge in
  /// candidate-index order, so the digest is thread-count invariant.
  size_t forecast_threads = 1;
  /// Keep one warm shadow simulator + policy per candidate and share a
  /// single immutable per-tick workload across them, instead of
  /// rebuilding specs/graph/simulator per candidate per tick.
  bool pooled_forecasts = true;
  /// Pending-event structure for the shadow simulators.
  PendingQueueImpl pending_queue = PendingQueueImpl::kBinaryHeap;
  /// Transaction-attribute layout for the shadow simulators.
  TxnStoreLayout txn_store = TxnStoreLayout::kSpecVector;
  /// Successive-halving candidate pruning: score every candidate on a
  /// simulated-time prefix of the horizon (the same shared workload
  /// under a SimOptions::run_horizon cutoff, so the prefix pass pays
  /// only a fraction of the full event count), keep the top half (plus,
  /// always, the applied candidate — its full-horizon forecast feeds
  /// the digest and the divergence guard), and only extend survivors to
  /// the full horizon.
  bool prune = false;
  /// Prefix length for the pruning pass, as a fraction of
  /// forecast_horizon (in (0, 1]; only validated when prune is on). The
  /// default is one of the prefix lengths the committed flash-crowd
  /// differential pins as digest-preserving (tests/rt/twin_test.cc).
  double prune_prefix = 0.35;

  // -- Live executor knobs (mirror ExecutorOptions) --
  FaultInjectorOptions faults;
  MigrationPolicy migration = MigrationPolicy::kWarm;
  bool watchdog = false;
  double watchdog_stall_seconds = 0.0;
  uint32_t retry_max_attempts = 1;
  double retry_backoff = 0.0;
  double retry_backoff_multiplier = 2.0;
  double retry_max_backoff = 0.0;
  size_t retry_budget = 0;
};

/// One recorded controller decision (one per control tick).
struct TwinDecision {
  enum class Kind : uint8_t {
    kHold = 0,   // kept the applied configuration
    kSwitch,     // reconfigured to a better-scoring candidate
    kFallback,   // divergence guard tripped: reverted to static
    kCooldown,   // guard cooldown tick (no forecasting)
    kReenable,   // last cooldown tick: controller live again next tick
  };
  double time = 0.0;
  Kind kind = Kind::kHold;
  /// Candidate index in force AFTER the tick.
  uint32_t applied = 0;
  /// Forecast winner (kHold/kSwitch ticks only).
  uint32_t best = 0;
  /// Shadow forecast for the post-tick applied configuration
  /// (kHold/kSwitch only) — next tick's guard reference.
  double predicted_tardiness = 0.0;
  double predicted_shed_ratio = 0.0;
  /// Observed metrics of the window that just closed.
  double observed_tardiness = 0.0;
  double observed_shed_ratio = 0.0;
};

const char* TwinDecisionKindName(TwinDecision::Kind kind);

/// Aggregate statistics over the arrivals observed since the last
/// control tick — the controller's traffic model for synthesizing
/// future arrivals in each forecast.
struct TwinArrivalWindow {
  size_t count = 0;
  double duration_sum = 0.0;
  double deadline_sum = 0.0;
  double weight_sum = 0.0;

  void Observe(const LiveArrival& arrival) {
    ++count;
    duration_sum += arrival.duration;
    deadline_sum += arrival.relative_deadline;
    weight_sum += arrival.weight;
  }
  void Reset() { *this = TwinArrivalWindow{}; }
};

/// One candidate's shadow-forecast outcome for a control tick. A
/// default-constructed value (infinite score) means "not ranked": the
/// candidate was pruned or its shadow run could not be built.
struct TwinForecast {
  double tardiness = 0.0;
  double shed_ratio = 0.0;
  double score = std::numeric_limits<double>::infinity();
  bool pruned = false;
};

/// Decision-loop cost counters, accumulated across every Forecast()
/// call on an engine. Wall-clock time NEVER feeds the twin digest —
/// these are reporting-only.
struct TwinDecisionStats {
  /// Wall-clock milliseconds spent inside Forecast() (spec build, shadow
  /// runs, pruning, merge).
  double decision_ms = 0.0;
  /// Scheduling points executed across all shadow runs (prefix and
  /// full-horizon), summed in candidate-index order.
  uint64_t forecast_events = 0;
  /// Full-horizon candidate forecasts executed.
  uint64_t forecasts_run = 0;
  /// Candidates stopped at the prefix horizon by pruning.
  uint64_t forecasts_pruned = 0;
};

/// The twin's per-tick forecast fan-out, factored out of the serving
/// loop so its cost structure is independently testable. One engine is
/// built per twin run; each Forecast() call projects the executor
/// snapshot + arrival window through every candidate's shadow simulator
/// and returns the scored table the controller ranks.
///
/// Cost model (all digest-neutral, see TwinOptions):
///  - pooled_forecasts: specs are built once per tick into a shared
///    immutable SimWorkload; each candidate slot keeps a warm simulator
///    (scratch arenas survive across ticks) and a reusable policy
///    instead of rebuilding everything per candidate.
///  - forecast_threads: candidates fan out over a ThreadPool; slots are
///    fully independent, and results land at their candidate index, so
///    the merge order — and therefore the decision — is deterministic.
///  - prune: successive halving over a prefix horizon (the applied
///    candidate always runs the full horizon).
class TwinForecastEngine {
 public:
  /// Validates the forecast-relevant options (candidate policies,
  /// prune_prefix, ...) and builds the candidate slots.
  static Result<TwinForecastEngine> Create(const TwinOptions& options);

  TwinForecastEngine(TwinForecastEngine&&) noexcept;
  TwinForecastEngine& operator=(TwinForecastEngine&&) noexcept;
  ~TwinForecastEngine();

  /// Runs every candidate's shadow forecast for one control tick.
  /// `incumbent` is the currently applied candidate index (never
  /// pruned). The returned reference is owned by the engine and valid
  /// until the next Forecast() call. Deterministic for fixed inputs
  /// regardless of forecast_threads / pooled_forecasts / structure
  /// knobs. Not thread-safe; one Forecast() at a time.
  const std::vector<TwinForecast>& Forecast(const ExecutorSnapshot& snap,
                                            const TwinArrivalWindow& window,
                                            uint64_t tick,
                                            uint32_t incumbent);

  const TwinDecisionStats& stats() const { return stats_; }

 private:
  /// One pooled candidate: a long-lived policy and a warm simulator
  /// bound to the engine's shared per-tick workload.
  struct Slot {
    std::unique_ptr<SchedulerPolicy> policy;
    std::unique_ptr<Simulator> sim;
  };

  TwinForecastEngine() = default;

  /// Rebuilds spec_buffer_ (and remap_) from the snapshot + window;
  /// reuses capacity so steady-state ticks allocate nothing.
  void BuildSpecsInto(const ExecutorSnapshot& snap,
                      const TwinArrivalWindow& window, uint64_t tick);

  /// Forecasts candidate `index` on the full or prefix workload,
  /// adding the run's scheduling points to slot_events_[index].
  TwinForecast ForecastOne(size_t index, bool full_horizon,
                           size_t num_workers_up);

  TwinOptions options_;
  bool pooled_ = true;
  std::unique_ptr<ThreadPool> pool_;  // null when forecast_threads == 1
  /// The shared per-tick workload. Mutated only between shadow runs,
  /// via Rebuild; pruning's prefix pass runs the SAME workload under a
  /// simulated-time cutoff (SimOptions::run_horizon), not a separate
  /// spec prefix.
  std::shared_ptr<SimWorkload> full_;
  std::vector<Slot> slots_;  // empty when !pooled_
  // Reused per-tick buffers.
  std::vector<TransactionSpec> spec_buffer_;
  std::vector<TxnId> remap_;
  std::vector<TwinForecast> forecasts_;
  std::vector<double> prefix_score_;
  std::vector<uint32_t> order_;
  std::vector<char> survivor_;
  std::vector<uint64_t> slot_events_;
  TwinDecisionStats stats_;
};

/// Everything one twin run produced: the validated-trace bundle (same
/// shape exp/live_chaos consumes), the decision log, and a combined
/// digest covering both — byte-identity of a twin run includes what the
/// controller DID, not just what the executor executed.
struct TwinReport {
  std::vector<LiveTraceEvent> trace;
  std::vector<LiveTaskRecord> tasks;  // validator ground truth, by TxnId
  std::vector<TaskOutcome> outcomes;  // by TxnId
  ExecutorStats stats;
  std::vector<TwinDecision> decisions;
  uint64_t digest = 0;
  size_t switches = 0;
  size_t fallbacks = 0;
  uint32_t final_config = 0;
  /// Options the live validator needs to audit `trace`.
  LiveValidatorOptions validator_options;
  // Headline metrics.
  double avg_tardiness = 0.0;  // mean over completed tasks
  double shed_ratio = 0.0;     // non-completed / submitted
  double goodput = 0.0;        // completed / submitted
  /// Decision-loop cost totals across the run (TwinForecastEngine
  /// accounting; wall clock, reporting-only, never digested).
  TwinDecisionStats decision_stats;
};

/// The digital-twin serving loop: a live front end submits `arrivals`
/// to an rt::Executor at their exact virtual instants while, every
/// control_interval, a shadow Simulator warm-started from a quiescent
/// executor snapshot runs faster-than-real-time what-if forecasts
/// (tardiness / shed ratio / goodput for every candidate policy ×
/// admission knob over forecast_horizon of projected traffic) and a
/// hysteresis controller applies the winner via
/// Executor::Reconfigure — at quiescent points, so in-flight work is
/// never lost. A divergence guard compares each window's observed
/// tardiness/shed against the previous tick's forecast and, after
/// guard_strikes consecutive misses, falls back to the static
/// configuration for guard_cooldown_ticks (the twin must survive its
/// own model being wrong). On a VirtualClock the whole loop — arrivals,
/// faults, forecasts, reconfigurations — is one deterministic timeline:
/// TwinReport::digest is byte-stable across repeats and host thread
/// counts (tools/chaos --twin pins it).
class Twin {
 public:
  explicit Twin(TwinOptions options);

  /// Runs the serving loop over the materialized arrival batch to
  /// quiescence. The calling thread drives submissions and control
  /// ticks as a registered clock participant. Fails on invalid options
  /// (unknown policy spec, bad fault plan, empty candidate table, ...).
  Result<TwinReport> Run(const std::vector<LiveArrival>& arrivals);

 private:
  TwinOptions options_;
};

}  // namespace webtx::rt

#endif  // WEBTX_RT_TWIN_H_
