#include "rt/executor.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"

namespace webtx::rt {

const DependencyGraph& Executor::View::graph() const {
  WEBTX_CHECK(false)
      << "rt::Executor supports transaction-level policies only; "
         "workflow-level policies need the full graph up front";
  std::abort();  // unreachable; keeps the non-void return well-formed
}

const WorkflowRegistry& Executor::View::workflows() const {
  WEBTX_CHECK(false)
      << "rt::Executor supports transaction-level policies only; "
         "workflow-level policies need the full graph up front";
  std::abort();
}

Executor::Executor(std::unique_ptr<SchedulerPolicy> policy,
                   ExecutorOptions options)
    : policy_(std::move(policy)),
      options_(options),
      view_(this),
      epoch_(std::chrono::steady_clock::now()) {
  WEBTX_CHECK(policy_ != nullptr);
  WEBTX_CHECK_GE(options_.num_workers, 1u);
  policy_->Bind(view_);
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() { Shutdown(); }

double Executor::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

Result<TxnId> Executor::Submit(TaskSpec task) {
  if (task.fn == nullptr) {
    return Status::InvalidArgument("task has no work function");
  }
  if (task.estimated_cost <= 0.0 || task.weight <= 0.0 ||
      task.relative_deadline <= 0.0) {
    return Status::InvalidArgument(
        "estimated_cost, weight and relative_deadline must be positive");
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (shutting_down_) {
    return Status::FailedPrecondition("executor is shutting down");
  }
  const auto id = static_cast<TxnId>(specs_.size());
  for (const TxnId dep : task.dependencies) {
    if (dep >= id) {
      return Status::InvalidArgument(
          "dependency ids must reference already-submitted tasks");
    }
  }

  const double now = NowSeconds();
  TransactionSpec spec;
  spec.id = id;
  spec.arrival = now;
  spec.length = task.estimated_cost;
  spec.deadline = now + task.relative_deadline;
  spec.weight = task.weight;
  spec.dependencies = task.dependencies;

  uint32_t unmet = 0;
  for (const TxnId dep : task.dependencies) {
    if (!outcomes_[dep].finished) {
      successors_[dep].push_back(id);
      ++unmet;
    }
  }

  specs_.push_back(std::move(spec));
  remaining_.push_back(task.estimated_cost);
  unmet_deps_.push_back(unmet);
  successors_.emplace_back();
  functions_.push_back(std::move(task.fn));
  TaskOutcome outcome;
  outcome.submit_seconds = now;
  outcomes_.push_back(outcome);

  policy_->OnArrival(id, now);
  if (unmet == 0) {
    ready_list_.push_back(id);
    policy_->OnReady(id, now);
    work_available_.notify_one();
  }
  return id;
}

void Executor::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_available_.wait(lock, [this] {
      return !ready_list_.empty() ||
             (shutting_down_ && finished_ == specs_.size());
    });
    if (ready_list_.empty()) return;  // drained and shutting down

    const double dispatch_now = NowSeconds();
    const TxnId id = policy_->PickNext(dispatch_now);
    WEBTX_CHECK_NE(id, kInvalidTxn)
        << "policy idled while tasks were queued";
    // Non-preemptive dispatch: the task leaves the scheduling queues for
    // good (OnCompletion is the policy's dequeue signal; the executor
    // tracks the actual completion separately).
    policy_->OnCompletion(id, dispatch_now);
    const auto it = std::find(ready_list_.begin(), ready_list_.end(), id);
    WEBTX_CHECK(it != ready_list_.end());
    *it = ready_list_.back();
    ready_list_.pop_back();
    running_.push_back(id);
    std::function<void()> fn = std::move(functions_[id]);

    lock.unlock();
    fn();
    lock.lock();

    const double now = NowSeconds();
    TaskOutcome& outcome = outcomes_[id];
    outcome.finished = true;
    outcome.finish_seconds = now;
    outcome.tardiness_seconds = std::max(0.0, now - specs_[id].deadline);
    remaining_[id] = 0.0;
    ++finished_;
    running_.erase(std::find(running_.begin(), running_.end(), id));

    bool released = false;
    for (const TxnId succ : successors_[id]) {
      WEBTX_DCHECK(unmet_deps_[succ] > 0);
      if (--unmet_deps_[succ] == 0 && !outcomes_[succ].finished) {
        ready_list_.push_back(succ);
        policy_->OnReady(succ, now);
        released = true;
      }
    }
    if (released) work_available_.notify_all();
    if (finished_ == specs_.size()) {
      all_done_.notify_all();
      // Wake peers so they can observe the drained+shutdown state.
      if (shutting_down_) work_available_.notify_all();
    }
  }
}

void Executor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return finished_ == specs_.size(); });
}

void Executor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  work_available_.notify_all();
  Drain();
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

TaskOutcome Executor::OutcomeOf(TxnId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  WEBTX_CHECK_LT(id, outcomes_.size());
  return outcomes_[id];
}

size_t Executor::finished_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

}  // namespace webtx::rt
