#include "rt/executor.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "common/check.h"

namespace webtx::rt {

namespace {

/// Smoothing factor of the executor-level load EWMAs exported in
/// ExecutorStats (independent of any admission controller's own).
constexpr double kStatsAlpha = 0.2;

uint64_t Bits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

}  // namespace

TxnFate FateOf(TaskResult result) {
  switch (result) {
    case TaskResult::kCompleted:
      return TxnFate::kCompleted;
    case TaskResult::kFailed:
    case TaskResult::kTimedOut:
      return TxnFate::kDroppedRetries;
    case TaskResult::kShed:
    case TaskResult::kShedAdmission:
      return TxnFate::kShedAdmission;
    case TaskResult::kDependencyFailed:
      return TxnFate::kDroppedDependency;
    case TaskResult::kPending:
      break;
  }
  WEBTX_CHECK(false) << "FateOf on non-terminal TaskResult";
  std::abort();
}

const DependencyGraph& Executor::View::graph() const {
  WEBTX_CHECK(false)
      << "rt::Executor supports transaction-level policies only; "
         "workflow-level policies need the full graph up front";
  std::abort();  // unreachable; keeps the non-void return well-formed
}

const WorkflowRegistry& Executor::View::workflows() const {
  WEBTX_CHECK(false)
      << "rt::Executor supports transaction-level policies only; "
         "workflow-level policies need the full graph up front";
  std::abort();
}

size_t Executor::View::num_servers_up() const {
  if (!owner_->injector_.has_value()) return owner_->options_.num_workers;
  // Clamp to 1: admission controllers divide backlog by this, and a
  // momentarily fully-down farm should look saturated, not infinite.
  return std::max<size_t>(1, owner_->injector_->num_slots_up());
}

Executor::Executor(std::unique_ptr<SchedulerPolicy> policy,
                   ExecutorOptions options)
    : policy_(std::move(policy)),
      options_(std::move(options)),
      view_(this) {
  WEBTX_CHECK(policy_ != nullptr);
  WEBTX_CHECK_GE(options_.num_workers, 1u);
  WEBTX_CHECK_GE(options_.watchdog_stall_seconds, 0.0);
  WEBTX_CHECK_GE(options_.retry_max_backoff, 0.0);
  clock_ = options_.clock != nullptr ? options_.clock
                                     : std::make_shared<RealClock>();
  if (options_.faults.enabled()) {
    Result<FaultInjector> injector =
        FaultInjector::Create(options_.faults, options_.num_workers);
    WEBTX_CHECK(injector.ok())
        << "bad fault options: " << injector.status().ToString();
    injector_.emplace(std::move(injector).ValueOrDie());
  }
  if (options_.admission != nullptr) {
    admission_ = options_.admission();
    WEBTX_CHECK(admission_ != nullptr);
    admission_->Bind(view_);
  }
  policy_->Bind(view_);
  slot_task_.assign(options_.num_workers, kInvalidTxn);
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (injector_.has_value() || options_.watchdog) {
    pump_ = std::thread([this] { PumpLoop(); });
  }
  // Block until every spawned thread has registered with the clock.
  // Returning earlier would let the caller's submissions drive a
  // virtual timeline whose participant count still misses the workers:
  // arrivals could be swept past before any worker exists to take them,
  // making the schedule depend on thread start-up latency.
  const size_t expected =
      options_.num_workers + (pump_.joinable() ? 1 : 0);
  std::unique_lock<std::mutex> lock(mu_);
  threads_registered_.wait(
      lock, [&] { return registered_threads_ == expected; });
}

Executor::~Executor() { Shutdown(); }

double Executor::NowSeconds() const { return clock_->Now(); }

void Executor::RecordLocked(double time, LiveEventKind kind, TxnId txn,
                            uint32_t slot, uint32_t attempt, uint64_t aux) {
  if (!options_.record_trace) return;
  trace_.Record(LiveTraceEvent{time, kind, txn, slot, attempt, aux});
}

Result<TxnId> Executor::Submit(TaskSpec task) {
  const int work_forms = static_cast<int>(task.fn != nullptr) +
                         static_cast<int>(task.cancellable_fn != nullptr) +
                         static_cast<int>(task.simulated_duration > 0.0);
  if (work_forms != 1) {
    return Status::InvalidArgument(
        "exactly one of fn, cancellable_fn and simulated_duration "
        "must be set");
  }
  if (task.simulated_duration < 0.0) {
    return Status::InvalidArgument("simulated_duration must be >= 0");
  }
  if (task.estimated_cost <= 0.0 || task.weight <= 0.0 ||
      task.relative_deadline <= 0.0) {
    return Status::InvalidArgument(
        "estimated_cost, weight and relative_deadline must be positive");
  }
  if (task.timeout_seconds < 0.0 || task.retry_backoff_seconds < 0.0 ||
      task.backoff_multiplier < 0.0) {
    return Status::InvalidArgument(
        "timeout and retry backoff must be non-negative");
  }
  if (task.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (shutting_down_) {
    return Status::FailedPrecondition("executor is shutting down");
  }
  const auto id = static_cast<TxnId>(specs_.size());
  for (const TxnId dep : task.dependencies) {
    if (dep >= id) {
      return Status::InvalidArgument(
          "dependency ids must reference already-submitted tasks");
    }
  }

  const double now = clock_->Now();
  // Catch up on fault windows and due timers BEFORE the arrival so slot
  // up/down state (which admission reads through num_servers_up) is
  // current as of `now`.
  PumpTimedEventsLocked(now);

  TransactionSpec spec;
  spec.id = id;
  spec.arrival = now;
  spec.length = task.estimated_cost;
  spec.deadline = now + task.relative_deadline;
  spec.weight = task.weight;
  spec.dependencies = task.dependencies;

  uint32_t unmet = 0;
  bool dead_dependency = false;
  for (const TxnId dep : task.dependencies) {
    const TaskOutcome& dep_outcome = outcomes_[dep];
    if (dep_outcome.finished &&
        dep_outcome.result != TaskResult::kCompleted) {
      dead_dependency = true;  // can never run
    } else if (!dep_outcome.finished) {
      successors_[dep].push_back(id);
      ++unmet;
    }
  }

  specs_.push_back(std::move(spec));
  remaining_.push_back(task.estimated_cost);
  unmet_deps_.push_back(unmet);
  successors_.emplace_back();
  functions_.push_back(std::move(task.fn));
  cancellable_fns_.push_back(std::move(task.cancellable_fn));
  simulated_durations_.push_back(task.simulated_duration);
  timeouts_.push_back(task.timeout_seconds);
  max_attempts_.push_back(task.max_attempts);
  backoffs_.push_back(task.retry_backoff_seconds);
  backoff_multipliers_.push_back(task.backoff_multiplier);
  progress_done_.push_back(0.0);
  migration_credits_.push_back(0);
  announced_.push_back(0);
  TaskOutcome outcome;
  outcome.submit_seconds = now;
  outcomes_.push_back(outcome);

  ++stats_.submitted;
  const double depth = static_cast<double>(ready_list_.size()) /
                       static_cast<double>(view_.num_servers_up());
  stats_.ready_depth_ewma =
      (1.0 - kStatsAlpha) * stats_.ready_depth_ewma + kStatsAlpha * depth;
  RecordLocked(now, LiveEventKind::kSubmit, id, LiveTraceEvent::kNoSlot, 0,
               Bits(specs_[id].weight));

  if (dead_dependency) {
    // Accepted but dead on arrival; the policy never hears of it.
    MarkTerminal(id, TaskResult::kDependencyFailed, now);
    return id;
  }

  if (admission_ != nullptr) {
    const AdmissionDecision decision = admission_->Decide(id, now);
    switch (decision.action) {
      case AdmissionDecision::Action::kReject:
        RecordLocked(now, LiveEventKind::kShedAdmission, id);
        MarkTerminal(id, TaskResult::kShedAdmission, now);
        return id;
      case AdmissionDecision::Action::kDefer:
        ++stats_.admission_defers;
        deferred_.push_back(DelayedEntry{now + decision.defer_delay, id});
        RecordLocked(now, LiveEventKind::kDeferArrival, id,
                     LiveTraceEvent::kNoSlot, 0, Bits(decision.defer_delay));
        clock_->NotifyAll(work_available_);  // waiters recompute their due
        return id;
      case AdmissionDecision::Action::kAdmit:
        break;
    }
  }

  announced_[id] = 1;
  policy_->OnArrival(id, now);
  if (unmet == 0) {
    ready_list_.push_back(id);
    policy_->OnReady(id, now);
  }
  clock_->NotifyAll(work_available_);
  return id;
}

bool Executor::SlotUpLocked(size_t slot) const {
  return !injector_.has_value() || !injector_->slot_down(slot);
}

size_t Executor::FreeUpSlotLocked() const {
  for (size_t slot = 0; slot < slot_task_.size(); ++slot) {
    if (slot_task_[slot] == kInvalidTxn && SlotUpLocked(slot)) return slot;
  }
  return slot_task_.size();
}

bool Executor::CanDispatchLocked(double now) const {
  if (ready_list_.empty()) return false;
  if (FreeUpSlotLocked() == slot_task_.size()) return false;
  // Completion barrier: an in-flight attempt whose wake time has been
  // reached is a completion that merely has not been APPLIED yet (its
  // thread is between waking and re-acquiring the lock). Dispatching
  // past it would make the (task, slot) binding depend on host thread
  // timing; hold off until it lands.
  for (const Attempt& attempt : inflight_) {
    if (!attempt.zombie && attempt.wake_due <= now) return false;
  }
  return true;
}

double Executor::NextWakeDueLocked() const {
  double due = kNeverSeconds;
  for (const DelayedEntry& entry : delayed_) {
    due = std::min(due, entry.due_seconds);
  }
  for (const DelayedEntry& entry : deferred_) {
    due = std::min(due, entry.due_seconds);
  }
  return due;
}

void Executor::WorkerLoop() {
  clock_->RegisterParticipant();
  std::unique_lock<std::mutex> lock(mu_);
  ++registered_threads_;
  threads_registered_.notify_all();
  while (true) {
    // Idle loop: wait until dispatch is possible or the run is over.
    while (true) {
      const double now = clock_->Now();
      PumpTimedEventsLocked(now);
      if (CanDispatchLocked(now)) break;
      if (shutting_down_ && finished_ == specs_.size()) {
        lock.unlock();
        clock_->DeregisterParticipant();
        return;
      }
      clock_->WaitUntil(lock, work_available_, NextWakeDueLocked());
    }
    DispatchOneLocked(lock);
  }
}

void Executor::PumpLoop() {
  clock_->RegisterParticipant();
  std::unique_lock<std::mutex> lock(mu_);
  ++registered_threads_;
  threads_registered_.notify_all();
  while (true) {
    const double now = clock_->Now();
    PumpTimedEventsLocked(now);
    if (shutting_down_ && finished_ == specs_.size()) break;
    double due = kNeverSeconds;
    // Only chase fault timers while there is unfinished work: advancing
    // through fault windows after the last task would tail the trace
    // with events whose count depends on shutdown timing. Historical
    // windows are caught up lazily (with their true timestamps) by the
    // PumpTimedEventsLocked call in Submit.
    if (finished_ < specs_.size()) {
      if (injector_.has_value()) {
        const double next = injector_->NextEventTime();
        if (next < kNeverTime) due = std::min(due, next);
      }
      for (const StallWatch& watch : stall_watches_) {
        due = std::min(due, watch.due_seconds);
      }
    }
    clock_->WaitUntil(lock, work_available_, due);
  }
  lock.unlock();
  clock_->DeregisterParticipant();
}

bool Executor::QuiescentLocked(double now) const {
  // A non-zombie attempt whose wake instant has been reached is a
  // completion that has not been APPLIED yet (its thread is between
  // waking and re-acquiring mu_) — the state is mid-transition.
  for (const Attempt& attempt : inflight_) {
    if (!attempt.zombie && attempt.wake_due <= now) return false;
  }
  // Quiescent = nothing dispatchable either: every consequence of the
  // current instant (releases, completions, the dispatches they enable)
  // has landed.
  return !CanDispatchLocked(now);
}

void Executor::AwaitQuiescenceLocked(std::unique_lock<std::mutex>& lock,
                                     double* now_out) {
  // Spin-with-yield rather than a cv wait: under a VirtualClock a
  // runnable registered caller freezes the timeline, so this loop pins
  // the clock at the current instant while the workers apply due
  // completions and drain the dispatchable set. Parking in WaitUntil
  // instead would either busy-wake (a due of `now` returns immediately)
  // or let the timeline advance past the instant being captured.
  while (true) {
    const double now = clock_->Now();
    PumpTimedEventsLocked(now);
    const bool drained = shutting_down_ && finished_ == specs_.size();
    if (drained || QuiescentLocked(now)) {
      *now_out = now;
      return;
    }
    lock.unlock();
    std::this_thread::yield();
    lock.lock();
  }
}

ExecutorSnapshot Executor::SnapshotAtQuiescence() {
  ExecutorSnapshot snap;
  SnapshotAtQuiescence(&snap);
  return snap;
}

void Executor::SnapshotAtQuiescence(ExecutorSnapshot* out) {
  std::unique_lock<std::mutex> lock(mu_);
  double now = 0.0;
  AwaitQuiescenceLocked(lock, &now);

  ExecutorSnapshot& snap = *out;
  snap.tasks.clear();
  snap.now = now;
  snap.num_workers = options_.num_workers;
  snap.num_workers_up = view_.num_servers_up();
  snap.stats = stats_;
  for (TxnId id = 0; id < static_cast<TxnId>(specs_.size()); ++id) {
    if (outcomes_[id].finished) continue;
    SnapshotTask task;
    task.id = id;
    task.remaining = remaining_[id];
    task.release = now;
    task.deadline = specs_[id].deadline;
    task.weight = specs_[id].weight;
    for (const TxnId dep : specs_[id].dependencies) {
      if (!outcomes_[dep].finished) {
        task.unfinished_dependencies.push_back(dep);
      }
    }
    task.state = SnapshotTaskState::kWaitingDeps;
    for (const Attempt& attempt : inflight_) {
      if (!attempt.zombie && attempt.id == id) {
        task.state = SnapshotTaskState::kInFlight;
        if (attempt.simulated && attempt.wake_due < kNeverSeconds) {
          task.remaining = std::max(0.0, attempt.wake_due - now);
        }
        break;
      }
    }
    if (task.state == SnapshotTaskState::kWaitingDeps) {
      if (std::find(ready_list_.begin(), ready_list_.end(), id) !=
          ready_list_.end()) {
        task.state = SnapshotTaskState::kReady;
      } else {
        for (const DelayedEntry& entry : delayed_) {
          if (entry.id == id) {
            task.state = SnapshotTaskState::kDelayed;
            task.release = entry.due_seconds;
            break;
          }
        }
        for (const DelayedEntry& entry : deferred_) {
          if (entry.id == id) {
            task.state = SnapshotTaskState::kDeferred;
            task.release = entry.due_seconds;
            break;
          }
        }
      }
    }
    snap.tasks.push_back(std::move(task));
  }
}

void Executor::Reconfigure(ReconfigureRequest request) {
  std::unique_lock<std::mutex> lock(mu_);
  double now = 0.0;
  AwaitQuiescenceLocked(lock, &now);
  if (request.policy != nullptr) {
    policy_ = std::move(request.policy);
    policy_->Bind(view_);
    // Replay the live state: every announced unfinished task re-arrives
    // (in-flight and delayed tasks included — OnArrival fires once per
    // task and only OnCompletion dequeues, so this mirrors the event
    // history a policy bound from the start would have seen), then the
    // ready set re-enters in queue order. In-flight work is untouched:
    // dispatched tasks were already dequeued and their attempts keep
    // running to completion on their slots.
    for (TxnId id = 0; id < static_cast<TxnId>(specs_.size()); ++id) {
      if (announced_[id] && !outcomes_[id].finished) {
        policy_->OnArrival(id, now);
      }
    }
    for (const TxnId id : ready_list_) {
      policy_->OnReady(id, now);
    }
  }
  if (request.replace_admission) {
    admission_ = request.admission != nullptr ? request.admission() : nullptr;
    if (admission_ != nullptr) admission_->Bind(view_);
  }
  clock_->NotifyAll(work_available_);
}

void Executor::DispatchOneLocked(std::unique_lock<std::mutex>& lock) {
  const double now = clock_->Now();
  const TxnId id = policy_->PickNext(now);
  WEBTX_CHECK_NE(id, kInvalidTxn) << "policy idled while tasks were queued";
  // Non-preemptive dispatch: the task leaves the scheduling queues for
  // good (OnCompletion is the policy's dequeue signal; the executor
  // tracks the actual completion separately).
  policy_->OnCompletion(id, now);
  const auto it = std::find(ready_list_.begin(), ready_list_.end(), id);
  WEBTX_CHECK(it != ready_list_.end());
  *it = ready_list_.back();
  ready_list_.pop_back();

  const size_t slot = FreeUpSlotLocked();
  WEBTX_CHECK_LT(slot, slot_task_.size());
  slot_task_[slot] = id;

  TaskOutcome& outcome = outcomes_[id];
  LiveDispatchKind dispatch_kind;
  if (migration_credits_[id] > 0) {
    // A failover owed this re-dispatch: the slot died, not the task, so
    // the attempt budget is not charged.
    --migration_credits_[id];
    dispatch_kind = LiveDispatchKind::kMigration;
  } else {
    ++outcome.attempts;
    ++stats_.attempts;
    dispatch_kind = outcome.attempts == 1 ? LiveDispatchKind::kFresh
                                          : LiveDispatchKind::kRetry;
  }

  const double spike =
      injector_.has_value()
          ? injector_->DrawLatencySpike(static_cast<uint32_t>(slot))
          : 0.0;

  Attempt attempt;
  attempt.id = id;
  attempt.slot = static_cast<uint32_t>(slot);
  attempt.serial = next_serial_++;
  attempt.dispatch_seconds = now;
  attempt.spike_seconds = spike;
  attempt.cancel = std::make_shared<std::atomic<bool>>(false);
  attempt.cancellable = cancellable_fns_[id] != nullptr;
  attempt.simulated = simulated_durations_[id] > 0.0;
  const double timeout = timeouts_[id];
  if (attempt.simulated) {
    const double work =
        std::max(0.0, simulated_durations_[id] - progress_done_[id]);
    attempt.wake_due = now + spike + work;
    if (timeout > 0.0) {
      attempt.wake_due = std::min(attempt.wake_due, now + timeout);
    }
  }

  RecordLocked(now, LiveEventKind::kDispatch, id, attempt.slot,
               outcome.attempts, static_cast<uint64_t>(dispatch_kind));
  if (spike > 0.0) {
    ++stats_.latency_spikes;
    RecordLocked(now, LiveEventKind::kLatencySpike, id, attempt.slot,
                 outcome.attempts, Bits(spike));
  }

  const uint64_t serial = attempt.serial;
  const double wake_due = attempt.wake_due;
  const bool simulated = attempt.simulated;
  // Copy (not move) the functions under the lock: the vectors may
  // reallocate while we execute unlocked, and a retry needs the
  // function again.
  const std::function<void()> fn = functions_[id];
  const std::function<void(const CancelToken&)> cancellable =
      cancellable_fns_[id];
  CancelToken token;
  token.flag_ = attempt.cancel;
  token.clock_ = clock_.get();
  if (timeout > 0.0) {
    token.has_deadline_ = true;
    token.deadline_seconds_ = now + timeout;
  }
  inflight_.push_back(std::move(attempt));

  lock.unlock();
  bool threw = false;
  try {
    if (simulated) {
      clock_->SleepUntil(wake_due, &token);
    } else {
      if (spike > 0.0) clock_->SleepUntil(now + spike, &token);
      if (cancellable != nullptr) {
        if (!token.cancelled()) cancellable(token);
      } else {
        fn();
      }
    }
  } catch (...) {
    // A throwing task marks the attempt failed; the worker survives.
    threw = true;
  }
  lock.lock();
  ApplyAttemptReturnLocked(serial, threw);
}

void Executor::ApplyAttemptReturnLocked(uint64_t serial, bool threw) {
  const auto it =
      std::find_if(inflight_.begin(), inflight_.end(),
                   [serial](const Attempt& a) { return a.serial == serial; });
  WEBTX_CHECK(it != inflight_.end());
  const Attempt attempt = *it;
  *it = inflight_.back();
  inflight_.pop_back();
  const double now = clock_->Now();
  const TxnId id = attempt.id;

  if (attempt.zombie) {
    // The attempt was failed over while this thread was stuck in it;
    // the task has moved on. Discard the return entirely.
    RecordLocked(now, LiveEventKind::kZombieEnd, id, attempt.slot,
                 outcomes_[id].attempts);
    clock_->NotifyAll(work_available_);
    return;
  }

  WEBTX_DCHECK(slot_task_[attempt.slot] == id);
  slot_task_[attempt.slot] = kInvalidTxn;

  TaskOutcome& outcome = outcomes_[id];
  const bool flag = attempt.cancel->load(std::memory_order_relaxed);
  const bool cancel_aware = attempt.cancellable || attempt.simulated;
  const double timeout = timeouts_[id];

  bool completed = false;
  bool shed = false;
  TaskResult failure = TaskResult::kFailed;
  LiveAttemptResult attempt_result;
  if (attempt.forced_abort) {
    attempt_result = LiveAttemptResult::kAborted;
  } else if (threw) {
    attempt_result = LiveAttemptResult::kFailed;
  } else if (attempt.simulated) {
    // progress_done_ is untouched since dispatch for a non-zombie,
    // non-aborted attempt, so the work end is reconstructible.
    const double work_end =
        attempt.dispatch_seconds + attempt.spike_seconds +
        std::max(0.0, simulated_durations_[id] - progress_done_[id]);
    if (now + kTimeEpsilon >= work_end) {
      completed = true;
      attempt_result = LiveAttemptResult::kCompleted;
    } else if (flag && shutting_down_) {
      shed = true;
      attempt_result = LiveAttemptResult::kShed;
    } else {
      // The sleep was cut short by the timeout deadline.
      failure = TaskResult::kTimedOut;
      attempt_result = LiveAttemptResult::kTimedOut;
    }
  } else {
    // Only a cancellation-aware attempt can be shed mid-flight: a plain
    // fn ignores the token and its work is complete once it returns.
    shed = cancel_aware && flag && shutting_down_;
    const bool timed_out =
        !shed && timeout > 0.0 && now - attempt.dispatch_seconds > timeout;
    if (shed) {
      attempt_result = LiveAttemptResult::kShed;
    } else if (timed_out) {
      failure = TaskResult::kTimedOut;
      attempt_result = LiveAttemptResult::kTimedOut;
    } else {
      completed = true;
      attempt_result = LiveAttemptResult::kCompleted;
    }
  }
  if (!completed && !shed && hard_shutdown_) {
    // ShutdownNow: failures shed instead of retrying.
    shed = true;
    attempt_result = LiveAttemptResult::kShed;
  }
  RecordLocked(now, LiveEventKind::kAttemptEnd, id, attempt.slot,
               outcome.attempts, static_cast<uint64_t>(attempt_result));

  if (completed) {
    const double tardiness = now - specs_[id].deadline;
    outcome.tardiness_seconds = std::max(0.0, tardiness);
    stats_.tardiness_ewma = (1.0 - kStatsAlpha) * stats_.tardiness_ewma +
                            kStatsAlpha * outcome.tardiness_seconds;
    stats_.tardiness_total += outcome.tardiness_seconds;
    if (admission_ != nullptr) {
      admission_->ObserveCompletion(id, tardiness, now);
    }
    MarkTerminal(id, TaskResult::kCompleted, now);
    for (const TxnId succ : successors_[id]) {
      WEBTX_DCHECK(unmet_deps_[succ] > 0);
      if (--unmet_deps_[succ] == 0 && !outcomes_[succ].finished) {
        ready_list_.push_back(succ);
        policy_->OnReady(succ, now);
      }
    }
  } else if (shed) {
    MarkTerminal(id, TaskResult::kShed, now);
    FailDependents(id, now);
  } else {
    HandleAttemptFailureLocked(id, failure, now);
  }
  clock_->NotifyAll(work_available_);
}

void Executor::HandleAttemptFailureLocked(TxnId id, TaskResult failure,
                                          double now) {
  TaskOutcome& outcome = outcomes_[id];
  // Any failure restarts the work: retained (warm-migrated) virtual
  // progress does not survive an abort, timeout, or exception.
  progress_done_[id] = 0.0;
  if (outcome.attempts >= max_attempts_[id]) {
    MarkTerminal(id, failure, now);
    FailDependents(id, now);
    return;
  }
  double delay = backoffs_[id];
  for (uint32_t i = 1; i < outcome.attempts; ++i) {
    delay *= backoff_multipliers_[id];
  }
  if (options_.retry_max_backoff > 0.0 &&
      delay > options_.retry_max_backoff) {
    // Retry-storm suppression, half one: cap how far a backoff cascade
    // can push a retry out (the live mirror of the sim's max_backoff).
    delay = options_.retry_max_backoff;
    ++stats_.retry_storm_suppressed;
  }
  if (delay > 0.0 && options_.retry_budget > 0 &&
      delayed_.size() >= options_.retry_budget) {
    // Half two: a global cap on retries concurrently waiting out
    // backoffs; beyond it, failures become terminal instead of feeding
    // the storm.
    ++stats_.retries_dropped_budget;
    MarkTerminal(id, failure, now);
    FailDependents(id, now);
    return;
  }
  ++stats_.retries_scheduled;
  remaining_[id] = specs_[id].length;  // the retry restarts from scratch
  if (delay <= 0.0) {
    ready_list_.push_back(id);
    policy_->OnReady(id, now);
  } else {
    delayed_.push_back(DelayedEntry{now + delay, id});
    RecordLocked(now, LiveEventKind::kRetryScheduled, id,
                 LiveTraceEvent::kNoSlot, outcome.attempts, Bits(delay));
  }
}

void Executor::PumpTimedEventsLocked(double now) {
  if (injector_.has_value()) {
    fault_scratch_.clear();
    injector_->CollectEventsUpTo(now, &fault_scratch_);
    for (const FaultInjector::Event& event : fault_scratch_) {
      ApplyFaultEventLocked(event);
    }
  }
  for (size_t i = 0; i < stall_watches_.size();) {
    if (stall_watches_[i].due_seconds > now) {
      ++i;
      continue;
    }
    const StallWatch watch = stall_watches_[i];
    stall_watches_[i] = stall_watches_.back();
    stall_watches_.pop_back();
    if (!injector_.has_value() || !injector_->slot_down(watch.slot)) {
      continue;  // the stall ended before detection; let the attempt be
    }
    for (Attempt& attempt : inflight_) {
      if (attempt.serial == watch.attempt_serial && !attempt.zombie) {
        ++stats_.watchdog_failovers;
        FailOverAttemptLocked(attempt, watch.due_seconds,
                              LiveFailoverCause::kStall);
        break;
      }
    }
  }
  ReleaseDueRetries(now);
  ReleaseDueDeferred(now);
}

void Executor::ApplyFaultEventLocked(const FaultInjector::Event& event) {
  switch (event.kind) {
    case FaultInjector::Event::Kind::kStallStart: {
      ++stats_.stalls;
      RecordLocked(event.time, LiveEventKind::kSlotDown, kInvalidTxn,
                   event.slot, 0, 0);
      if (options_.watchdog) {
        for (const Attempt& attempt : inflight_) {
          if (!attempt.zombie && attempt.slot == event.slot) {
            stall_watches_.push_back(StallWatch{
                event.time + options_.watchdog_stall_seconds, event.slot,
                attempt.serial});
          }
        }
      }
      break;
    }
    case FaultInjector::Event::Kind::kStallEnd: {
      RecordLocked(event.time, LiveEventKind::kSlotUp, kInvalidTxn,
                   event.slot, 0, 0);
      for (size_t i = 0; i < stall_watches_.size();) {
        if (stall_watches_[i].slot == event.slot) {
          stall_watches_[i] = stall_watches_.back();
          stall_watches_.pop_back();
        } else {
          ++i;
        }
      }
      clock_->NotifyAll(work_available_);
      break;
    }
    case FaultInjector::Event::Kind::kCrash: {
      ++stats_.crashes;
      RecordLocked(event.time, LiveEventKind::kSlotDown, kInvalidTxn,
                   event.slot, 0, 1);
      for (Attempt& attempt : inflight_) {
        if (!attempt.zombie && attempt.slot == event.slot) {
          FailOverAttemptLocked(attempt, event.time,
                                LiveFailoverCause::kCrash);
        }
      }
      // Any armed stall watch on this slot now targets a zombie.
      for (size_t i = 0; i < stall_watches_.size();) {
        if (stall_watches_[i].slot == event.slot) {
          stall_watches_[i] = stall_watches_.back();
          stall_watches_.pop_back();
        } else {
          ++i;
        }
      }
      break;
    }
    case FaultInjector::Event::Kind::kRepair: {
      RecordLocked(event.time, LiveEventKind::kSlotUp, kInvalidTxn,
                   event.slot, 0, 1);
      clock_->NotifyAll(work_available_);
      break;
    }
    case FaultInjector::Event::Kind::kAbort: {
      for (Attempt& attempt : inflight_) {
        if (attempt.zombie || attempt.slot != event.slot ||
            attempt.forced_abort) {
          continue;
        }
        attempt.forced_abort = true;
        // Extend the dispatch barrier to the abort instant so the
        // interrupted return applies before any dispatch at this time.
        // Function tasks keep their open-ended wake: their return time
        // is real, not virtual, and must not gate dispatch.
        if (attempt.simulated) attempt.wake_due = event.time;
        attempt.cancel->store(true, std::memory_order_relaxed);
        ++stats_.forced_aborts;
        ++outcomes_[attempt.id].forced_aborts;
        RecordLocked(event.time, LiveEventKind::kForcedAbort, attempt.id,
                     event.slot, outcomes_[attempt.id].attempts);
        clock_->InterruptSleepers();
        break;
      }
      break;  // idle instants are thinned no-ops, like the sim
    }
  }
}

void Executor::FailOverAttemptLocked(Attempt& attempt, double now,
                                     LiveFailoverCause cause) {
  const TxnId id = attempt.id;
  attempt.zombie = true;
  attempt.cancel->store(true, std::memory_order_relaxed);
  slot_task_[attempt.slot] = kInvalidTxn;  // detach; the slot is down

  TaskOutcome& outcome = outcomes_[id];
  ++outcome.migrations;
  ++stats_.migrations;
  RecordLocked(now, LiveEventKind::kFailover, id, attempt.slot,
               outcome.attempts, static_cast<uint64_t>(cause));

  if (hard_shutdown_) {
    // ShutdownNow already shed everything not in flight; a failover
    // during the final drain sheds the task rather than resurrecting it.
    MarkTerminal(id, TaskResult::kShed, now);
    FailDependents(id, now);
    clock_->InterruptSleepers();
    return;
  }

  ++migration_credits_[id];
  const bool warm = options_.migration == MigrationPolicy::kWarm;
  if (attempt.simulated && warm) {
    const double executed = std::max(
        0.0, now - attempt.dispatch_seconds - attempt.spike_seconds);
    progress_done_[id] = std::min(simulated_durations_[id],
                                  progress_done_[id] + executed);
    remaining_[id] =
        std::max(0.0, simulated_durations_[id] - progress_done_[id]);
  } else {
    progress_done_[id] = 0.0;
    remaining_[id] = specs_[id].length;
  }
  ready_list_.push_back(id);
  policy_->OnReady(id, now);
  policy_->OnMigrated(id, now);
  clock_->InterruptSleepers();
  clock_->NotifyAll(work_available_);
}

void Executor::ReleaseDueRetries(double now) {
  bool released = false;
  for (size_t i = 0; i < delayed_.size();) {
    if (delayed_[i].due_seconds <= now) {
      const DelayedEntry entry = delayed_[i];
      delayed_[i] = delayed_.back();
      delayed_.pop_back();
      if (!outcomes_[entry.id].finished) {
        RecordLocked(entry.due_seconds, LiveEventKind::kRetryReleased,
                     entry.id, LiveTraceEvent::kNoSlot,
                     outcomes_[entry.id].attempts);
        ready_list_.push_back(entry.id);
        policy_->OnReady(entry.id, now);
        released = true;
      }
    } else {
      ++i;
    }
  }
  if (released) clock_->NotifyAll(work_available_);
}

void Executor::ReleaseDueDeferred(double now) {
  for (size_t i = 0; i < deferred_.size();) {
    if (deferred_[i].due_seconds > now) {
      ++i;
      continue;
    }
    const DelayedEntry entry = deferred_[i];
    deferred_[i] = deferred_.back();
    deferred_.pop_back();
    if (outcomes_[entry.id].finished) continue;
    // A reconfigure may have removed the controller while arrivals were
    // deferred; a missing controller admits everything.
    const AdmissionDecision decision = admission_ != nullptr
                                           ? admission_->Decide(entry.id, now)
                                           : AdmissionDecision::Admit();
    switch (decision.action) {
      case AdmissionDecision::Action::kReject:
        RecordLocked(now, LiveEventKind::kShedAdmission, entry.id);
        MarkTerminal(entry.id, TaskResult::kShedAdmission, now);
        FailDependents(entry.id, now);
        break;
      case AdmissionDecision::Action::kDefer:
        ++stats_.admission_defers;
        deferred_.push_back(
            DelayedEntry{now + decision.defer_delay, entry.id});
        RecordLocked(now, LiveEventKind::kDeferArrival, entry.id,
                     LiveTraceEvent::kNoSlot, 0, Bits(decision.defer_delay));
        break;
      case AdmissionDecision::Action::kAdmit:
        announced_[entry.id] = 1;
        policy_->OnArrival(entry.id, now);
        if (unmet_deps_[entry.id] == 0) {
          ready_list_.push_back(entry.id);
          policy_->OnReady(entry.id, now);
          clock_->NotifyAll(work_available_);
        }
        break;
    }
  }
}

void Executor::MarkTerminal(TxnId id, TaskResult result, double now) {
  TaskOutcome& outcome = outcomes_[id];
  WEBTX_DCHECK(!outcome.finished);
  outcome.finished = true;
  outcome.result = result;
  outcome.fate = FateOf(result);
  outcome.finish_seconds = now;
  remaining_[id] = 0.0;
  switch (result) {
    case TaskResult::kCompleted:
      ++stats_.completed;
      break;
    case TaskResult::kFailed:
    case TaskResult::kTimedOut:
      ++stats_.dropped_retries;
      break;
    case TaskResult::kShed:
      ++stats_.shed_shutdown;
      break;
    case TaskResult::kShedAdmission:
      ++stats_.shed_admission;
      break;
    case TaskResult::kDependencyFailed:
      ++stats_.dropped_dependency;
      break;
    case TaskResult::kPending:
      WEBTX_CHECK(false) << "MarkTerminal(kPending)";
      break;
  }
  RecordLocked(now, LiveEventKind::kTerminal, id, LiveTraceEvent::kNoSlot,
               outcome.attempts, static_cast<uint64_t>(result));
  ++finished_;
  if (finished_ == specs_.size()) {
    clock_->NotifyAll(all_done_);
    clock_->NotifyAll(work_available_);
  }
}

void Executor::RemoveFromReady(TxnId id, double now) {
  const auto it = std::find(ready_list_.begin(), ready_list_.end(), id);
  if (it == ready_list_.end()) return;
  *it = ready_list_.back();
  ready_list_.pop_back();
  policy_->OnCompletion(id, now);  // dequeue signal
}

void Executor::FailDependents(TxnId root, double now) {
  std::vector<TxnId> stack(successors_[root]);
  while (!stack.empty()) {
    const TxnId cur = stack.back();
    stack.pop_back();
    if (outcomes_[cur].finished) continue;
    // A dependent can only be waiting (never ready, delayed, or
    // running): its failed predecessor never completed. Ready/delayed
    // membership is still cleared defensively for safety under future
    // callers.
    RemoveFromReady(cur, now);
    for (size_t i = 0; i < delayed_.size();) {
      if (delayed_[i].id == cur) {
        delayed_[i] = delayed_.back();
        delayed_.pop_back();
      } else {
        ++i;
      }
    }
    for (size_t i = 0; i < deferred_.size();) {
      if (deferred_[i].id == cur) {
        deferred_[i] = deferred_.back();
        deferred_.pop_back();
      } else {
        ++i;
      }
    }
    MarkTerminal(cur, TaskResult::kDependencyFailed, now);
    for (const TxnId succ : successors_[cur]) stack.push_back(succ);
  }
}

void Executor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (finished_ != specs_.size()) {
    clock_->WaitUntil(lock, all_done_, kNeverSeconds);
  }
}

void Executor::JoinWorkers() {
  clock_->NotifyAll(work_available_);
  Drain();
  clock_->NotifyAll(work_available_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (pump_.joinable()) pump_.join();
}

void Executor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
    clock_->NotifyAll(work_available_);
  }
  JoinWorkers();
}

void Executor::ShutdownNow() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
    hard_shutdown_ = true;
    const double now = clock_->Now();
    // Shed every task that is not terminal and not currently executing:
    // ready tasks (dequeue the policy first), delayed retries, deferred
    // arrivals, and tasks still waiting on dependencies.
    for (const TxnId id : std::vector<TxnId>(ready_list_)) {
      RemoveFromReady(id, now);
      MarkTerminal(id, TaskResult::kShed, now);
    }
    for (const DelayedEntry& entry : delayed_) {
      if (!outcomes_[entry.id].finished) {
        MarkTerminal(entry.id, TaskResult::kShed, now);
      }
    }
    delayed_.clear();
    for (const DelayedEntry& entry : deferred_) {
      if (!outcomes_[entry.id].finished) {
        MarkTerminal(entry.id, TaskResult::kShed, now);
      }
    }
    deferred_.clear();
    stall_watches_.clear();
    for (TxnId id = 0; id < static_cast<TxnId>(specs_.size()); ++id) {
      if (outcomes_[id].finished) continue;
      bool in_flight = false;
      for (const Attempt& attempt : inflight_) {
        if (attempt.id == id && !attempt.zombie) {
          in_flight = true;
          break;
        }
      }
      if (in_flight) {
        continue;  // cancelled below, awaited by JoinWorkers
      }
      MarkTerminal(id, TaskResult::kShed, now);
    }
    for (const Attempt& attempt : inflight_) {
      attempt.cancel->store(true, std::memory_order_relaxed);
    }
    clock_->InterruptSleepers();
    clock_->NotifyAll(work_available_);
  }
  JoinWorkers();
}

TaskOutcome Executor::OutcomeOf(TxnId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  WEBTX_CHECK_LT(id, outcomes_.size());
  return outcomes_[id];
}

size_t Executor::finished_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

ExecutorStats Executor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<LiveTraceEvent> Executor::TakeTrace() {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_.TakeEvents();
}

}  // namespace webtx::rt
