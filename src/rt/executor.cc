#include "rt/executor.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/check.h"

namespace webtx::rt {

const DependencyGraph& Executor::View::graph() const {
  WEBTX_CHECK(false)
      << "rt::Executor supports transaction-level policies only; "
         "workflow-level policies need the full graph up front";
  std::abort();  // unreachable; keeps the non-void return well-formed
}

const WorkflowRegistry& Executor::View::workflows() const {
  WEBTX_CHECK(false)
      << "rt::Executor supports transaction-level policies only; "
         "workflow-level policies need the full graph up front";
  std::abort();
}

Executor::Executor(std::unique_ptr<SchedulerPolicy> policy,
                   ExecutorOptions options)
    : policy_(std::move(policy)),
      options_(options),
      view_(this),
      epoch_(std::chrono::steady_clock::now()) {
  WEBTX_CHECK(policy_ != nullptr);
  WEBTX_CHECK_GE(options_.num_workers, 1u);
  policy_->Bind(view_);
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() { Shutdown(); }

double Executor::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

Result<TxnId> Executor::Submit(TaskSpec task) {
  const bool has_fn = task.fn != nullptr;
  const bool has_cancellable = task.cancellable_fn != nullptr;
  if (has_fn == has_cancellable) {
    return Status::InvalidArgument(
        "exactly one of fn and cancellable_fn must be set");
  }
  if (task.estimated_cost <= 0.0 || task.weight <= 0.0 ||
      task.relative_deadline <= 0.0) {
    return Status::InvalidArgument(
        "estimated_cost, weight and relative_deadline must be positive");
  }
  if (task.timeout_seconds < 0.0 || task.retry_backoff_seconds < 0.0 ||
      task.backoff_multiplier < 0.0) {
    return Status::InvalidArgument(
        "timeout and retry backoff must be non-negative");
  }
  if (task.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (shutting_down_) {
    return Status::FailedPrecondition("executor is shutting down");
  }
  const auto id = static_cast<TxnId>(specs_.size());
  for (const TxnId dep : task.dependencies) {
    if (dep >= id) {
      return Status::InvalidArgument(
          "dependency ids must reference already-submitted tasks");
    }
  }

  const double now = NowSeconds();
  TransactionSpec spec;
  spec.id = id;
  spec.arrival = now;
  spec.length = task.estimated_cost;
  spec.deadline = now + task.relative_deadline;
  spec.weight = task.weight;
  spec.dependencies = task.dependencies;

  uint32_t unmet = 0;
  bool dead_dependency = false;
  for (const TxnId dep : task.dependencies) {
    const TaskOutcome& dep_outcome = outcomes_[dep];
    if (dep_outcome.finished &&
        dep_outcome.result != TaskResult::kCompleted) {
      dead_dependency = true;  // can never run
    } else if (!dep_outcome.finished) {
      successors_[dep].push_back(id);
      ++unmet;
    }
  }

  specs_.push_back(std::move(spec));
  remaining_.push_back(task.estimated_cost);
  unmet_deps_.push_back(unmet);
  successors_.emplace_back();
  functions_.push_back(std::move(task.fn));
  cancellable_fns_.push_back(std::move(task.cancellable_fn));
  timeouts_.push_back(task.timeout_seconds);
  max_attempts_.push_back(task.max_attempts);
  backoffs_.push_back(task.retry_backoff_seconds);
  backoff_multipliers_.push_back(task.backoff_multiplier);
  TaskOutcome outcome;
  outcome.submit_seconds = now;
  outcomes_.push_back(outcome);

  if (dead_dependency) {
    // Accepted but dead on arrival; the policy never hears of it.
    MarkTerminal(id, TaskResult::kDependencyFailed, now);
    return id;
  }

  policy_->OnArrival(id, now);
  if (unmet == 0) {
    ready_list_.push_back(id);
    policy_->OnReady(id, now);
    work_available_.notify_one();
  }
  return id;
}

void Executor::ReleaseDueRetries(double now) {
  bool released = false;
  for (size_t i = 0; i < delayed_.size();) {
    if (delayed_[i].due_seconds <= now) {
      const TxnId id = delayed_[i].id;
      delayed_[i] = delayed_.back();
      delayed_.pop_back();
      if (!outcomes_[id].finished) {
        ready_list_.push_back(id);
        policy_->OnReady(id, now);
        released = true;
      }
    } else {
      ++i;
    }
  }
  if (released) work_available_.notify_all();
}

double Executor::NextRetryDue() const {
  double due = std::numeric_limits<double>::infinity();
  for (const DelayedRetry& d : delayed_) {
    due = std::min(due, d.due_seconds);
  }
  return due;
}

void Executor::MarkTerminal(TxnId id, TaskResult result, double now) {
  TaskOutcome& outcome = outcomes_[id];
  WEBTX_DCHECK(!outcome.finished);
  outcome.finished = true;
  outcome.result = result;
  outcome.finish_seconds = now;
  remaining_[id] = 0.0;
  ++finished_;
  if (finished_ == specs_.size()) {
    all_done_.notify_all();
    if (shutting_down_) work_available_.notify_all();
  }
}

void Executor::RemoveFromReady(TxnId id, double now) {
  const auto it = std::find(ready_list_.begin(), ready_list_.end(), id);
  if (it == ready_list_.end()) return;
  *it = ready_list_.back();
  ready_list_.pop_back();
  policy_->OnCompletion(id, now);  // dequeue signal
}

void Executor::FailDependents(TxnId root, double now) {
  std::vector<TxnId> stack(successors_[root]);
  while (!stack.empty()) {
    const TxnId cur = stack.back();
    stack.pop_back();
    if (outcomes_[cur].finished) continue;
    // A dependent can only be waiting (never ready, delayed, or
    // running): its failed predecessor never completed. Ready/delayed
    // membership is still cleared defensively for safety under future
    // callers.
    RemoveFromReady(cur, now);
    for (size_t i = 0; i < delayed_.size();) {
      if (delayed_[i].id == cur) {
        delayed_[i] = delayed_.back();
        delayed_.pop_back();
      } else {
        ++i;
      }
    }
    MarkTerminal(cur, TaskResult::kDependencyFailed, now);
    for (const TxnId succ : successors_[cur]) stack.push_back(succ);
  }
}

void Executor::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Wait until a task is ready, a retry comes due, or the executor is
    // shut down with everything terminal.
    while (true) {
      ReleaseDueRetries(NowSeconds());
      if (!ready_list_.empty()) break;
      if (shutting_down_ && finished_ == specs_.size()) return;
      if (!delayed_.empty()) {
        const double due = NextRetryDue();
        work_available_.wait_until(
            lock, epoch_ + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(due)));
      } else {
        work_available_.wait(lock);
      }
    }

    const double dispatch_now = NowSeconds();
    const TxnId id = policy_->PickNext(dispatch_now);
    WEBTX_CHECK_NE(id, kInvalidTxn)
        << "policy idled while tasks were queued";
    // Non-preemptive dispatch: the task leaves the scheduling queues for
    // good (OnCompletion is the policy's dequeue signal; the executor
    // tracks the actual completion separately).
    policy_->OnCompletion(id, dispatch_now);
    const auto it = std::find(ready_list_.begin(), ready_list_.end(), id);
    WEBTX_CHECK(it != ready_list_.end());
    *it = ready_list_.back();
    ready_list_.pop_back();
    running_.push_back(id);
    auto cancel = std::make_shared<std::atomic<bool>>(false);
    running_cancel_.push_back(cancel);
    ++outcomes_[id].attempts;
    // Copy (not move) the functions under the lock: the vectors may
    // reallocate while we execute unlocked, and a retry needs the
    // function again.
    const std::function<void()> fn = functions_[id];
    const std::function<void(const CancelToken&)> cancellable =
        cancellable_fns_[id];
    const double timeout = timeouts_[id];
    CancelToken token;
    token.flag_ = cancel;
    if (timeout > 0.0) {
      token.has_deadline_ = true;
      token.deadline_ =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timeout));
    }

    lock.unlock();
    bool threw = false;
    try {
      if (cancellable != nullptr) {
        cancellable(token);
      } else {
        fn();
      }
    } catch (...) {
      // A throwing task marks the attempt failed; the worker survives.
      threw = true;
    }
    lock.lock();

    const double now = NowSeconds();
    {
      const auto rit = std::find(running_.begin(), running_.end(), id);
      WEBTX_DCHECK(rit != running_.end());
      const size_t idx = static_cast<size_t>(rit - running_.begin());
      running_[idx] = running_.back();
      running_.pop_back();
      running_cancel_[idx] = running_cancel_.back();
      running_cancel_.pop_back();
    }

    TaskOutcome& outcome = outcomes_[id];
    // Only a cancellation-aware attempt can be shed mid-flight: a plain
    // fn ignores the token and its work is complete once it returns.
    const bool shed = cancellable != nullptr &&
                      cancel->load(std::memory_order_relaxed) &&
                      shutting_down_;
    const bool timed_out =
        timeout > 0.0 && now - dispatch_now > timeout;
    if (!threw && !shed && !timed_out) {
      // Success.
      outcome.tardiness_seconds = std::max(0.0, now - specs_[id].deadline);
      MarkTerminal(id, TaskResult::kCompleted, now);
      bool released = false;
      for (const TxnId succ : successors_[id]) {
        WEBTX_DCHECK(unmet_deps_[succ] > 0);
        if (--unmet_deps_[succ] == 0 && !outcomes_[succ].finished) {
          ready_list_.push_back(succ);
          policy_->OnReady(succ, now);
          released = true;
        }
      }
      if (released) work_available_.notify_all();
      continue;
    }
    if (shed) {
      // ShutdownNow tripped the token mid-flight; no retry during
      // shutdown.
      MarkTerminal(id, TaskResult::kShed, now);
      FailDependents(id, now);
      continue;
    }
    const TaskResult failure =
        threw ? TaskResult::kFailed : TaskResult::kTimedOut;
    if (outcome.attempts >= max_attempts_[id]) {
      // Retry budget spent.
      MarkTerminal(id, failure, now);
      FailDependents(id, now);
      continue;
    }
    // Schedule the retry (a plain Shutdown honors remaining retries;
    // only ShutdownNow sheds them).
    double delay = backoffs_[id];
    for (uint32_t i = 1; i < outcome.attempts; ++i) {
      delay *= backoff_multipliers_[id];
    }
    if (delay <= 0.0) {
      ready_list_.push_back(id);
      policy_->OnReady(id, now);
      work_available_.notify_all();
    } else {
      delayed_.push_back(DelayedRetry{now + delay, id});
      // Wake a peer in case everyone is in an untimed wait.
      work_available_.notify_all();
    }
  }
}

void Executor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return finished_ == specs_.size(); });
}

void Executor::JoinWorkers() {
  work_available_.notify_all();
  Drain();
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void Executor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  JoinWorkers();
}

void Executor::ShutdownNow() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
    const double now = NowSeconds();
    // Shed every task that is not terminal and not currently executing:
    // ready tasks (dequeue the policy first), delayed retries, and
    // tasks still waiting on dependencies.
    for (const TxnId id : std::vector<TxnId>(ready_list_)) {
      RemoveFromReady(id, now);
      MarkTerminal(id, TaskResult::kShed, now);
    }
    delayed_.clear();
    for (TxnId id = 0; id < static_cast<TxnId>(specs_.size()); ++id) {
      if (outcomes_[id].finished) continue;
      if (std::find(running_.begin(), running_.end(), id) !=
          running_.end()) {
        continue;  // in flight: cancelled below, awaited by JoinWorkers
      }
      MarkTerminal(id, TaskResult::kShed, now);
    }
    for (const auto& cancel : running_cancel_) {
      cancel->store(true, std::memory_order_relaxed);
    }
  }
  JoinWorkers();
}

TaskOutcome Executor::OutcomeOf(TxnId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  WEBTX_CHECK_LT(id, outcomes_.size());
  return outcomes_[id];
}

size_t Executor::finished_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

}  // namespace webtx::rt
