#include "rt/live_trace.h"

#include <algorithm>
#include <cstring>
#include <tuple>

namespace webtx::rt {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t Fnv1a(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t Bits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

auto CanonicalKey(const LiveTraceEvent& e) {
  return std::make_tuple(e.time, e.txn, static_cast<uint8_t>(e.kind), e.slot,
                         e.attempt, e.aux);
}

}  // namespace

uint64_t LiveTraceDigest(const std::vector<LiveTraceEvent>& events) {
  std::vector<LiveTraceEvent> sorted = events;
  std::sort(sorted.begin(), sorted.end(),
            [](const LiveTraceEvent& a, const LiveTraceEvent& b) {
              return CanonicalKey(a) < CanonicalKey(b);
            });
  uint64_t hash = kFnvOffset;
  hash = Fnv1a(hash, sorted.size());
  for (const LiveTraceEvent& e : sorted) {
    hash = Fnv1a(hash, Bits(e.time));
    hash = Fnv1a(hash, static_cast<uint64_t>(e.kind));
    hash = Fnv1a(hash, e.txn);
    hash = Fnv1a(hash, e.slot);
    hash = Fnv1a(hash, e.attempt);
    hash = Fnv1a(hash, e.aux);
  }
  return hash;
}

}  // namespace webtx::rt
