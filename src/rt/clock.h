#ifndef WEBTX_RT_CLOCK_H_
#define WEBTX_RT_CLOCK_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

namespace webtx::rt {

class Clock;

/// "No wake-up time" sentinel for Clock waits.
inline constexpr double kNeverSeconds =
    std::numeric_limits<double>::infinity();

/// Cooperative cancellation handle passed to TaskSpec::cancellable_fn
/// (and consulted by Clock::SleepUntil). Reports true once the executor
/// wants the attempt to stop: the attempt overran its timeout, a fault
/// was injected into it (forced abort, failover), or ShutdownNow was
/// called. Long-running tasks should poll it at convenient boundaries
/// and return early; the executor never interrupts a task forcibly.
class CancelToken {
 public:
  bool cancelled() const;

  /// Same answer evaluated against an externally supplied clock reading
  /// — lets a Clock implementation check the token while holding its
  /// own lock (cancelled() would re-enter the clock via Now()).
  bool CancelledAt(double now_seconds) const {
    if (flag_ != nullptr && flag_->load(std::memory_order_relaxed)) {
      return true;
    }
    return has_deadline_ && now_seconds >= deadline_seconds_;
  }

 private:
  friend class Executor;
  std::shared_ptr<std::atomic<bool>> flag_;
  const Clock* clock_ = nullptr;  // deadline time base (null: flag only)
  bool has_deadline_ = false;
  double deadline_seconds_ = 0.0;
};

/// Time source and wait primitive of the live executor. Threading every
/// sleep, timeout, and retry-release wait through one of these is what
/// makes a live run replayable: under the RealClock the executor runs
/// on the wall clock exactly as before, under a VirtualClock the same
/// code executes a deterministic discrete-event timeline (see below).
///
/// Times are seconds since the clock's epoch, the executor's SimTime.
class Clock {
 public:
  virtual ~Clock() = default;

  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;

  /// Current clock reading in seconds.
  virtual double Now() const = 0;

  virtual bool is_virtual() const { return false; }

  /// Declares the calling thread a persistent participant of the
  /// timeline: a thread that alternates between doing work and blocking
  /// in WaitUntil/SleepUntil. The VirtualClock only advances when every
  /// registered participant is blocked (quiescence), so executor worker
  /// threads, the fault pump, and any submission driver must register;
  /// unregistered threads may still call the wait primitives and are
  /// treated as pure observers (they never gate an advance). No-ops on
  /// the real clock.
  virtual void RegisterParticipant() {}
  virtual void DeregisterParticipant() {}

  /// Blocks the caller on `cv` — whose mutex `lock` holds — until
  /// roughly clock-time `due` (kNeverSeconds: until notified). May wake
  /// early or spuriously; callers re-check their predicate in a loop.
  /// This is the executor's "wait for state change or timer" primitive.
  virtual void WaitUntil(std::unique_lock<std::mutex>& lock,
                         std::condition_variable& cv, double due) = 0;

  /// Sleeps until clock-time `due`, returning early once `token` (may
  /// be null) reports cancellation. Models an execution attempt's
  /// in-flight time; must be called without holding executor locks.
  virtual void SleepUntil(double due, const CancelToken* token) = 0;

  /// Wakes current SleepUntil callers so they re-check their cancel
  /// tokens. Called after tripping tokens (forced abort, failover,
  /// ShutdownNow).
  virtual void InterruptSleepers() {}

  /// Wakes every WaitUntil caller blocked on `cv`. State changes that
  /// make a waiter runnable MUST be published through this (not a bare
  /// cv.notify_all()): a virtual clock has to see the wake-up, or it
  /// would keep counting the woken thread as blocked while it waits to
  /// reacquire the caller's mutex — and advance the timeline past a
  /// moment where that thread had work to do at the current time.
  virtual void NotifyAll(std::condition_variable& cv) { cv.notify_all(); }

 protected:
  Clock() = default;
};

inline bool CancelToken::cancelled() const {
  if (flag_ != nullptr && flag_->load(std::memory_order_relaxed)) {
    return true;
  }
  if (!has_deadline_ || clock_ == nullptr) return false;
  return clock_->Now() >= deadline_seconds_;
}

/// Wall-clock time, seconds since construction (steady_clock based).
class RealClock final : public Clock {
 public:
  RealClock() : epoch_(std::chrono::steady_clock::now()) {}

  double Now() const override;
  void WaitUntil(std::unique_lock<std::mutex>& lock,
                 std::condition_variable& cv, double due) override;
  void SleepUntil(double due, const CancelToken* token) override;

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Deterministic discrete-event clock. Time stands still while any
/// registered participant is runnable and jumps to the earliest blocked
/// wake-up time once ALL participants are blocked — the executor's
/// threads become a discrete-event simulation of themselves: every
/// dispatch, timeout, retry release, and fault lands at an exact,
/// reproducible virtual instant regardless of host scheduling.
///
/// Mechanics: WaitUntil/SleepUntil from a registered thread record the
/// caller's due time; when the number of blocked registered threads
/// reaches the number registered, now() advances to the minimum finite
/// due and sleepers are notified. WaitUntil callers (who block on a
/// foreign condition variable the clock cannot notify) use a short
/// real-time poll as a wake-up backstop — the poll affects only
/// wall-clock latency, never the virtual timeline, because advance
/// decisions depend solely on the recorded participant state.
class VirtualClock final : public Clock {
 public:
  VirtualClock() = default;

  double Now() const override;
  bool is_virtual() const override { return true; }
  void RegisterParticipant() override;
  void DeregisterParticipant() override;
  void WaitUntil(std::unique_lock<std::mutex>& lock,
                 std::condition_variable& cv, double due) override;
  void SleepUntil(double due, const CancelToken* token) override;
  void InterruptSleepers() override;
  void NotifyAll(std::condition_variable& cv) override;

  /// Manually advances to `t` (>= now). Test hook for driving the clock
  /// without participants.
  void AdvanceTo(double t);

 private:
  /// One blocked registered participant. WaitUntil entries carry the
  /// wake epoch of their cv at park time: a NotifyAll on that cv bumps
  /// the epoch, which marks the entry stale — its owner has been woken
  /// and is merely waiting to reacquire the caller's mutex, so it is
  /// runnable at the CURRENT time and must gate any further advance
  /// until it resumes and re-parks (or leaves).
  /// SleepUntil entries (cv == nullptr) use the sleeper epoch instead:
  /// InterruptSleepers bumps it, and a sleeper refreshes its entry (under
  /// the clock lock, in its wait loop) once it has re-checked its cancel
  /// token. A stale sleeper entry therefore means "interrupt delivered
  /// but not yet examined" — the sleeper may be about to return at the
  /// current time, so the timeline must hold still.
  struct BlockedEntry {
    double due;
    const std::condition_variable* cv;  // nullptr: SleepUntil entry
    uint64_t epoch;
    uint64_t ticket;  // identity for exact erase
  };

  /// Advances to the earliest blocked due once everyone is blocked and
  /// no waiter is stale. Requires mu_.
  void MaybeAdvanceLocked();

  /// Current wake epoch of `cv` (0 if never notified). Requires mu_.
  uint64_t EpochOfLocked(const std::condition_variable* cv) const;

  void EraseEntryLocked(uint64_t ticket);

  mutable std::mutex mu_;
  std::condition_variable sleepers_;
  double now_ = 0.0;
  size_t participants_ = 0;
  /// Currently blocked registered participants (multiset semantics;
  /// size == number blocked).
  std::vector<BlockedEntry> blocked_dues_;
  /// Wake epoch per condition variable seen by NotifyAll.
  std::vector<std::pair<const std::condition_variable*, uint64_t>> epochs_;
  /// Wake epoch of SleepUntil callers; bumped by InterruptSleepers.
  uint64_t sleeper_epoch_ = 0;
  uint64_t next_ticket_ = 0;
};

}  // namespace webtx::rt

#endif  // WEBTX_RT_CLOCK_H_
