#ifndef WEBTX_RT_LIVE_TRACE_H_
#define WEBTX_RT_LIVE_TRACE_H_

#include <cstdint>
#include <vector>

#include "txn/transaction.h"

namespace webtx::rt {

/// Event kinds of the live executor trace. One enum value per
/// observable state change; the validator (rt/live_validator.h) checks
/// the crash-era invariants over these, and the chaos harness digests
/// them for replay byte-identity.
enum class LiveEventKind : uint8_t {
  kSubmit = 0,        // task accepted (aux: weight bits)
  kShedAdmission,     // admission controller rejected the arrival
  kDeferArrival,      // admission deferred the arrival (aux: delay bits)
  kDispatch,          // attempt starts on `slot` (attempt: charged
                      // ordinal; aux: LiveDispatchKind)
  kLatencySpike,      // injected extra latency on this dispatch
                      // (aux: seconds bits)
  kForcedAbort,       // fault stream aborted the in-flight attempt
  kFailover,          // in-flight attempt migrated off `slot`
                      // (aux: LiveFailoverCause)
  kAttemptEnd,        // attempt returned and was accounted
                      // (aux: LiveAttemptResult)
  kZombieEnd,         // a failed-over attempt's thread returned; the
                      // result was discarded
  kRetryScheduled,    // backoff timer armed (aux: delay bits)
  kRetryReleased,     // delayed retry re-entered the ready set
  kSlotDown,          // slot left the pool (aux: 0 stall, 1 crash)
  kSlotUp,            // slot rejoined the pool (aux: 0 stall, 1 crash)
  kTerminal,          // task reached its terminal TaskResult (aux: it)
};

/// kDispatch aux values.
enum class LiveDispatchKind : uint8_t {
  kFresh = 0,   // first charged attempt
  kRetry,       // later charged attempt (after a failure)
  kMigration,   // uncharged re-dispatch after a failover
};

/// kFailover aux values.
enum class LiveFailoverCause : uint8_t {
  kCrash = 0,     // slot crashed with the attempt in flight
  kStall,         // watchdog detected the attempt on a stalled slot
  kShutdown = 2,  // reserved
};

/// kAttemptEnd aux values.
enum class LiveAttemptResult : uint8_t {
  kCompleted = 0,
  kFailed,        // the attempt threw
  kTimedOut,
  kAborted,       // forced abort (fault injection)
  kShed,          // ShutdownNow tripped the token mid-flight
};

/// One recorded event. `slot` and `attempt` are meaningful only for
/// the kinds that reference them (otherwise kNoSlot / 0).
struct LiveTraceEvent {
  double time = 0.0;
  LiveEventKind kind = LiveEventKind::kSubmit;
  TxnId txn = kInvalidTxn;
  uint32_t slot = kNoSlot;
  uint32_t attempt = 0;  // charged attempt ordinal (1-based) at the event
  uint64_t aux = 0;

  static constexpr uint32_t kNoSlot = 0xffffffffu;
};

/// Append-only event log of one executor run. The executor records
/// under its own mutex, so appends are already serialized; the recorder
/// itself is not thread-safe.
class LiveTraceRecorder {
 public:
  void Record(LiveTraceEvent event) { events_.push_back(event); }

  const std::vector<LiveTraceEvent>& events() const { return events_; }
  std::vector<LiveTraceEvent> TakeEvents() { return std::move(events_); }
  void Clear() { events_.clear(); }

 private:
  std::vector<LiveTraceEvent> events_;
};

/// FNV-1a digest over the canonically ordered trace. Worker threads are
/// an anonymous pool, so events that land at the same virtual instant
/// may be appended in either order; the digest sorts events by (time,
/// txn, kind, slot, attempt, aux) first, making it a pure function of
/// the executed timeline — the replay byte-identity contract of
/// `tools/chaos --live`.
uint64_t LiveTraceDigest(const std::vector<LiveTraceEvent>& events);

}  // namespace webtx::rt

#endif  // WEBTX_RT_LIVE_TRACE_H_
