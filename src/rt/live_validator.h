#ifndef WEBTX_RT_LIVE_VALIDATOR_H_
#define WEBTX_RT_LIVE_VALIDATOR_H_

#include <string>
#include <vector>

#include "rt/executor.h"
#include "rt/live_trace.h"
#include "txn/transaction.h"

namespace webtx::rt {

/// What the validator knows about one submitted task, independent of
/// the executor's own bookkeeping (the harness builds these from the
/// TaskSpecs it submitted, so executor accounting is cross-checked
/// against ground truth, not against itself).
struct LiveTaskRecord {
  double submit_seconds = 0.0;
  double deadline_seconds = 0.0;  // absolute (submit + relative deadline)
  uint32_t max_attempts = 1;
  double retry_backoff = 0.0;
  double backoff_multiplier = 2.0;
  /// Deterministic virtual work (TaskSpec::simulated_duration > 0):
  /// enables exact-instant checks (forced aborts end the attempt at the
  /// abort instant, etc.).
  bool simulated = false;
  std::vector<TxnId> dependencies;
};

/// Executor options the invariants depend on.
struct LiveValidatorOptions {
  bool watchdog = false;
  double watchdog_stall_seconds = 0.0;
  double retry_max_backoff = 0.0;
};

struct LiveValidationResult {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

/// Audits one executor run: the recorded trace (record_trace must have
/// been on, and the executor shut down so the trace is quiescent)
/// against the submitted tasks, final outcomes, and stats. Checks the
/// live crash-era invariants:
///   - slot discipline: every dispatch lands on an up, unoccupied slot;
///     down/up events alternate per channel (stall, crash);
///   - no completed attempt's execution interval strictly contains a
///     crash instant of its slot (a crash with the attempt in flight
///     must fail over, leaving a zombie whose return is discarded);
///   - watchdog: stall failovers happen exactly detection-delay after a
///     stall start and only when the watchdog is on; conversely no
///     attempt outlives the detection deadline on a stalled slot;
///   - attempt accounting: charged dispatches == outcome.attempts and
///     <= max_attempts; failovers == outcome.migrations; every failover
///     eventually yields exactly one zombie end; uncharged (migration)
///     re-dispatches never exceed failovers;
///   - forced aborts: recorded against a real in-flight attempt, ending
///     it (simulated tasks: at the abort instant) with an aborted or
///     shed attempt result;
///   - retries: every scheduled backoff delay equals the task's
///     backoff * multiplier^(attempt-1), clamped at retry_max_backoff
///     (clamps consistent with stats.retry_storm_suppressed), and is
///     either released exactly at its due time or cancelled by a
///     shutdown shed / dependency drop;
///   - terminality: exactly one terminal event per task, agreeing with
///     the outcome; every drop has a cause (the TaskResult); fates
///     partition into the stats counters; admission-shed tasks are
///     never dispatched; completed tardiness matches the deadline.
/// `tasks` and `outcomes` are indexed by TxnId (submission order).
LiveValidationResult ValidateLiveTrace(
    const std::vector<LiveTraceEvent>& trace,
    const std::vector<LiveTaskRecord>& tasks,
    const std::vector<TaskOutcome>& outcomes, const ExecutorStats& stats,
    const LiveValidatorOptions& options);

}  // namespace webtx::rt

#endif  // WEBTX_RT_LIVE_VALIDATOR_H_
