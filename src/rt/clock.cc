#include "rt/clock.h"

#include <algorithm>
#include <thread>

#include "common/check.h"

namespace webtx::rt {
namespace {

/// The virtual clock a thread registered with via RegisterParticipant,
/// if any. Lets the wait primitives distinguish timeline participants
/// (whose blocking gates advances) from observer threads (pure polling,
/// no accounting) without widening the call signatures.
thread_local const VirtualClock* tls_registered_clock = nullptr;

/// Wake-up backstop for waits on condition variables the virtual clock
/// cannot notify. Wall-clock latency only; never affects virtual time.
constexpr std::chrono::microseconds kVirtualPoll{500};

std::chrono::steady_clock::duration ToDuration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

}  // namespace

double RealClock::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void RealClock::WaitUntil(std::unique_lock<std::mutex>& lock,
                          std::condition_variable& cv, double due) {
  if (due == kNeverSeconds) {
    cv.wait(lock);
  } else {
    cv.wait_until(lock, epoch_ + ToDuration(due));
  }
}

void RealClock::SleepUntil(double due, const CancelToken* token) {
  // Chunked so a tripped token is honored within ~1ms even though the
  // real clock has no way to interrupt a plain sleep.
  constexpr std::chrono::milliseconds kChunk{1};
  while (true) {
    const double now = Now();
    if (now >= due) return;
    if (token != nullptr && token->CancelledAt(now)) return;
    const auto remaining = ToDuration(due - now);
    std::this_thread::sleep_for(
        remaining < std::chrono::steady_clock::duration(kChunk)
            ? remaining
            : std::chrono::steady_clock::duration(kChunk));
  }
}

double VirtualClock::Now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

void VirtualClock::RegisterParticipant() {
  WEBTX_CHECK(tls_registered_clock == nullptr)
      << "thread is already registered with a virtual clock";
  tls_registered_clock = this;
  std::lock_guard<std::mutex> lock(mu_);
  ++participants_;
}

void VirtualClock::DeregisterParticipant() {
  WEBTX_CHECK(tls_registered_clock == this)
      << "thread is not registered with this clock";
  tls_registered_clock = nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  WEBTX_CHECK_GE(participants_, 1u);
  --participants_;
  // The departing thread may have been the last runnable one.
  MaybeAdvanceLocked();
}

void VirtualClock::MaybeAdvanceLocked() {
  if (participants_ == 0 || blocked_dues_.size() < participants_) return;
  double min_due = kNeverSeconds;
  for (const BlockedEntry& entry : blocked_dues_) {
    // A stale waiter was notified but has not resumed yet (it is
    // between its cv wake-up and reacquiring the caller's mutex). It
    // has work to do at the CURRENT time; advancing would timestamp
    // that work by host-scheduling luck.
    const uint64_t current =
        entry.cv != nullptr ? EpochOfLocked(entry.cv) : sleeper_epoch_;
    if (entry.epoch != current) return;
    min_due = std::min(min_due, entry.due);
  }
  // All-infinite: the timeline is idle until an external event (e.g. a
  // new submission from an unregistered thread) creates a finite due.
  if (min_due == kNeverSeconds || min_due <= now_) return;
  now_ = min_due;
  sleepers_.notify_all();
}

uint64_t VirtualClock::EpochOfLocked(const std::condition_variable* cv) const {
  for (const auto& [known, epoch] : epochs_) {
    if (known == cv) return epoch;
  }
  return 0;
}

void VirtualClock::EraseEntryLocked(uint64_t ticket) {
  blocked_dues_.erase(std::find_if(
      blocked_dues_.begin(), blocked_dues_.end(),
      [ticket](const BlockedEntry& e) { return e.ticket == ticket; }));
}

void VirtualClock::NotifyAll(std::condition_variable& cv) {
  {
    std::lock_guard<std::mutex> clk(mu_);
    bool known_cv = false;
    for (auto& [known, epoch] : epochs_) {
      if (known == &cv) {
        ++epoch;
        known_cv = true;
        break;
      }
    }
    if (!known_cv) epochs_.emplace_back(&cv, 1);
  }
  cv.notify_all();
}

void VirtualClock::WaitUntil(std::unique_lock<std::mutex>& lock,
                             std::condition_variable& cv, double due) {
  if (tls_registered_clock != this) {
    // Observer thread: poll, no timeline accounting.
    cv.wait_for(lock, std::chrono::milliseconds(1));
    return;
  }
  uint64_t ticket;
  {
    std::lock_guard<std::mutex> clk(mu_);
    if (now_ >= due) return;  // already due; caller re-checks state
    ticket = next_ticket_++;
    blocked_dues_.push_back({due, &cv, EpochOfLocked(&cv), ticket});
    MaybeAdvanceLocked();
    if (now_ >= due) {
      // Our own due was the advance target; unblock immediately.
      EraseEntryLocked(ticket);
      return;
    }
  }
  // Blocked on the caller's cv, which state changes notify; the short
  // timeout doubles as the wake-up path after a virtual advance (the
  // clock cannot notify a foreign cv).
  cv.wait_for(lock, kVirtualPoll);
  {
    std::lock_guard<std::mutex> clk(mu_);
    EraseEntryLocked(ticket);
  }
}

void VirtualClock::SleepUntil(double due, const CancelToken* token) {
  std::unique_lock<std::mutex> clk(mu_);
  if (tls_registered_clock != this) {
    while (now_ < due && !(token != nullptr && token->CancelledAt(now_))) {
      sleepers_.wait_for(clk, std::chrono::milliseconds(1));
    }
    return;
  }
  if (now_ >= due || (token != nullptr && token->CancelledAt(now_))) return;
  const uint64_t ticket = next_ticket_++;
  blocked_dues_.push_back({due, nullptr, sleeper_epoch_, ticket});
  MaybeAdvanceLocked();
  while (now_ < due && !(token != nullptr && token->CancelledAt(now_))) {
    // Interrupt examined, still sleeping: refresh the entry so the
    // timeline may move again (a stale sleeper entry holds it still).
    // Must come AFTER the continue-sleeping check: a cancelled sleeper
    // returns at the current time, so its entry must never go fresh
    // again (the advance it could enable would postdate the return).
    for (BlockedEntry& entry : blocked_dues_) {
      if (entry.ticket == ticket) {
        if (entry.epoch != sleeper_epoch_) {
          entry.epoch = sleeper_epoch_;
          MaybeAdvanceLocked();
        }
        break;
      }
    }
    // The refresh's advance may have landed on OUR due (its notify
    // fired before we were back in wait; re-checking avoids sleeping
    // through our own wake-up).
    if (now_ >= due || (token != nullptr && token->CancelledAt(now_))) {
      break;
    }
    sleepers_.wait(clk);
  }
  EraseEntryLocked(ticket);
}

void VirtualClock::InterruptSleepers() {
  std::lock_guard<std::mutex> lock(mu_);
  // Every sleeper must re-examine its cancel token before the timeline
  // may move: the tripped one will return at the CURRENT time.
  ++sleeper_epoch_;
  sleepers_.notify_all();
}

void VirtualClock::AdvanceTo(double t) {
  std::lock_guard<std::mutex> lock(mu_);
  WEBTX_CHECK_GE(t, now_);
  now_ = t;
  sleepers_.notify_all();
}

}  // namespace webtx::rt
