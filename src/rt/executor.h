#ifndef WEBTX_RT_EXECUTOR_H_
#define WEBTX_RT_EXECUTOR_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "sched/scheduler_policy.h"
#include "sched/sim_view.h"
#include "txn/dependency_graph.h"
#include "txn/transaction.h"
#include "txn/workflow.h"

namespace webtx::rt {

/// A unit of real work scheduled by the executor.
struct TaskSpec {
  /// Soft deadline relative to submission, in seconds.
  double relative_deadline = 1.0;
  /// Importance (the w_i of the scheduling model).
  double weight = 1.0;
  /// Estimated execution cost in seconds — the r_i the policy plans
  /// with ("computed by the system based on previous statistics",
  /// Sec. II-A). The actual run may take more or less.
  double estimated_cost = 0.01;
  /// Tasks (by id returned from Submit) that must finish first.
  std::vector<TxnId> dependencies;
  /// The work itself; runs on an executor worker thread.
  std::function<void()> fn;
};

/// Completion record for one task.
struct TaskOutcome {
  bool finished = false;
  double submit_seconds = 0.0;    // submission instant (executor clock)
  double finish_seconds = 0.0;    // completion instant
  double tardiness_seconds = 0.0; // max(0, finish - absolute deadline)
};

struct ExecutorOptions {
  /// Worker threads (parallel "servers").
  size_t num_workers = 1;
};

/// A live (wall-clock) task executor ordered by any transaction-level
/// scheduling policy from this library — the paper's Sec. VI claim
/// ("could be applied in any Real-Time system with soft-deadlines")
/// made concrete.
///
/// Differences from the simulator, inherent to executing real code:
///   - Non-preemptive: a running task cannot be interrupted, so
///     scheduling points are task submissions and completions only
///     (remaining times of running tasks are not re-estimated).
///   - The policy plans with *estimated* costs; actual durations may
///     differ, and tardiness is measured on the real clock.
///   - Transaction-level policies only (EDF/SRPT/HDF/ASETS/...):
///     workflow-level ASETS* needs the full workflow graph up front,
///     which contradicts open-ended submission. Dependencies between
///     tasks are still enforced (a task only becomes schedulable once
///     its dependencies finished).
///
/// Thread-safe: Submit may be called from any thread, including from
/// inside running tasks (self-expanding workloads), as long as
/// dependencies reference already-submitted ids.
class Executor {
 public:
  /// `policy` must be a transaction-level policy; the executor owns it.
  Executor(std::unique_ptr<SchedulerPolicy> policy, ExecutorOptions options);

  /// Drains remaining tasks and joins the workers.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues a task; returns its id. Fails on bad parameters, unknown
  /// dependency ids, or after Shutdown.
  Result<TxnId> Submit(TaskSpec task);

  /// Blocks until every submitted task has finished.
  void Drain();

  /// Stops accepting work, drains, joins workers. Idempotent.
  void Shutdown();

  /// Outcome of a task (valid ids only; finished == false while the
  /// task is pending or running).
  TaskOutcome OutcomeOf(TxnId id) const;

  /// Number of tasks that have finished so far.
  size_t finished_count() const;

  /// Seconds elapsed since the executor started (its SimTime clock).
  double NowSeconds() const;

 private:
  /// Adapter exposing executor state to the policy as a SimView. All
  /// access happens under the executor mutex.
  class View final : public SimView {
   public:
    explicit View(Executor* owner) : owner_(owner) {}
    const std::vector<TransactionSpec>& specs() const override {
      return owner_->specs_;
    }
    const DependencyGraph& graph() const override;
    const WorkflowRegistry& workflows() const override;
    SimTime remaining(TxnId id) const override {
      return owner_->remaining_[id];
    }
    bool IsArrived(TxnId) const override { return true; }
    bool IsFinished(TxnId id) const override {
      return owner_->outcomes_[id].finished;
    }
    bool IsReady(TxnId id) const override {
      return owner_->unmet_deps_[id] == 0 && !owner_->outcomes_[id].finished;
    }
    const std::vector<TxnId>& ready_transactions() const override {
      return owner_->ready_list_;
    }

   private:
    Executor* owner_;
  };

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;

  std::unique_ptr<SchedulerPolicy> policy_;
  ExecutorOptions options_;
  View view_;
  std::chrono::steady_clock::time_point epoch_;

  // Guarded by mu_:
  std::vector<TransactionSpec> specs_;
  std::vector<SimTime> remaining_;
  std::vector<uint32_t> unmet_deps_;
  std::vector<std::vector<TxnId>> successors_;
  std::vector<std::function<void()>> functions_;
  std::vector<TaskOutcome> outcomes_;
  std::vector<TxnId> ready_list_;
  std::vector<TxnId> running_;
  size_t finished_ = 0;
  bool shutting_down_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace webtx::rt

#endif  // WEBTX_RT_EXECUTOR_H_
