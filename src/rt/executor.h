#ifndef WEBTX_RT_EXECUTOR_H_
#define WEBTX_RT_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "rt/clock.h"
#include "rt/fault_injector.h"
#include "rt/live_trace.h"
#include "sched/admission.h"
#include "sched/scheduler_policy.h"
#include "sched/sim_view.h"
#include "sim/fault_plan.h"
#include "sim/metrics.h"
#include "txn/dependency_graph.h"
#include "txn/transaction.h"
#include "txn/workflow.h"

namespace webtx::rt {

/// A unit of real work scheduled by the executor.
struct TaskSpec {
  /// Soft deadline relative to submission, in seconds.
  double relative_deadline = 1.0;
  /// Importance (the w_i of the scheduling model).
  double weight = 1.0;
  /// Estimated execution cost in seconds — the r_i the policy plans
  /// with ("computed by the system based on previous statistics",
  /// Sec. II-A). The actual run may take more or less.
  double estimated_cost = 0.01;
  /// Tasks (by id returned from Submit) that must finish first.
  std::vector<TxnId> dependencies;
  /// The work itself; runs on an executor worker thread. Exactly one of
  /// `fn`, `cancellable_fn`, and `simulated_duration` > 0 must be set.
  std::function<void()> fn;
  /// Cancellation-aware variant of `fn`: receives a CancelToken that
  /// turns true when the attempt overruns `timeout_seconds`, a fault is
  /// injected into it, or the executor is shut down with ShutdownNow.
  std::function<void(const CancelToken&)> cancellable_fn;
  /// Deterministic virtual work: when > 0 the attempt "executes" by
  /// sleeping this many clock-seconds on the executor's Clock —
  /// interruptible like a cancellable_fn — instead of calling a
  /// function. Under a VirtualClock this makes the whole run a
  /// replayable discrete-event timeline (the chaos campaign mode);
  /// under the RealClock it is a plain cancellable sleep.
  double simulated_duration = 0.0;
  /// Wall-clock budget for one execution attempt; 0 = unlimited. The
  /// executor cannot preempt a native thread, so enforcement is
  /// cooperative: the CancelToken trips at the budget, and an attempt
  /// observed to have overrun it when the function returns counts as
  /// timed out (failed) rather than completed.
  double timeout_seconds = 0.0;
  /// Maximum execution attempts (>= 1). Failed or timed-out attempts
  /// are retried until the budget is spent; the last failure is
  /// terminal (kFailed / kTimedOut). Failovers never charge this budget
  /// (the slot died, not the task).
  uint32_t max_attempts = 1;
  /// Delay before retry i (1-based): retry_backoff_seconds *
  /// backoff_multiplier^(i-1). 0 = retry immediately. The executor-wide
  /// ExecutorOptions::retry_max_backoff clamps the product.
  double retry_backoff_seconds = 0.0;
  double backoff_multiplier = 2.0;
};

/// Terminal state of a task. Every submitted task ends in exactly one
/// non-kPending state, even under ShutdownNow.
enum class TaskResult : uint8_t {
  kPending = 0,        // not terminal yet (queued, delayed, or running)
  kCompleted,          // an attempt returned within its budget
  kFailed,             // last attempt threw (or was force-aborted)
  kTimedOut,           // last attempt overran timeout_seconds
  kShed,               // never finished: shed by ShutdownNow
  kDependencyFailed,   // a (transitive) dependency never completed
  kShedAdmission,      // rejected by the admission controller
};

/// The simulator's cause code for `result` (sim/metrics.h), so live and
/// simulated fate accounting partition identically: completions are
/// goodput, kShed/kShedAdmission are sheds, kFailed/kTimedOut are
/// retry-budget drops, kDependencyFailed is a dependency drop.
TxnFate FateOf(TaskResult result);

/// Completion record for one task.
struct TaskOutcome {
  /// True once the task is terminal (any result but kPending); covers
  /// failures and sheds, not just completions — check `result`.
  bool finished = false;
  double submit_seconds = 0.0;    // submission instant (executor clock)
  double finish_seconds = 0.0;    // instant the terminal state was set
  double tardiness_seconds = 0.0; // max(0, finish - absolute deadline),
                                  // completed tasks only
  TaskResult result = TaskResult::kPending;
  /// Sim-compatible cause code; valid once finished (== FateOf(result)).
  TxnFate fate = TxnFate::kCompleted;
  uint32_t attempts = 0;          // charged attempts dispatched
  uint32_t migrations = 0;        // failovers (never charge attempts)
  uint32_t forced_aborts = 0;     // injected aborts absorbed
};

/// Live counterpart of the sim's RunResult counters: everything needed
/// to compare a live run's fate accounting against a simulated one,
/// plus the executor-only resilience counters. Counter identities (all
/// terminal tasks partition): completed + shed_admission + shed_shutdown
/// + dropped_retries + dropped_dependency == finished_count().
struct ExecutorStats {
  size_t submitted = 0;
  size_t completed = 0;
  size_t shed_admission = 0;       // TxnFate::kShedAdmission (at the door)
  size_t shed_shutdown = 0;        // ShutdownNow sheds (same fate code)
  size_t dropped_retries = 0;      // TxnFate::kDroppedRetries
  size_t dropped_dependency = 0;   // TxnFate::kDroppedDependency
  size_t attempts = 0;             // charged dispatches
  size_t retries_scheduled = 0;    // backoff timers armed
  size_t retry_storm_suppressed = 0;  // delays clamped at retry_max_backoff
  size_t retries_dropped_budget = 0;  // global retry_budget overflowed:
                                      // the retry became terminal
  size_t admission_defers = 0;
  size_t forced_aborts = 0;        // injected aborts hitting a busy slot
  size_t migrations = 0;           // failovers (crash + stall watchdog)
  size_t watchdog_failovers = 0;   // subset of migrations: stall-detected
  size_t crashes = 0;              // slot crash windows opened
  size_t stalls = 0;               // slot stall windows opened
  size_t latency_spikes = 0;       // dispatches that paid injected latency
  /// Observed-load EWMAs (the brownout controller's inputs, exported
  /// for benches): completion tardiness and ready-queue depth.
  double tardiness_ewma = 0.0;
  double ready_depth_ewma = 0.0;
  /// Sum of tardiness_seconds over completions so far: with `completed`
  /// this yields exact windowed averages between two stats snapshots
  /// (the digital twin's observed-metrics input).
  double tardiness_total = 0.0;
};

/// Where one unfinished task sits inside a quiescent snapshot.
enum class SnapshotTaskState : uint8_t {
  kReady = 0,      // in the ready set, schedulable now
  kInFlight,       // an attempt is executing on a slot
  kWaitingDeps,    // unmet dependencies remain
  kDelayed,        // retry waiting out its backoff
  kDeferred,       // admission-deferred arrival awaiting re-decision
};

/// One unfinished task as seen at a quiescent point — everything a
/// shadow simulator needs to warm-start a what-if forecast from live
/// state: estimated remaining work, the earliest instant the task can
/// (re)run, its absolute deadline/weight, and the unfinished
/// dependencies still gating it.
struct SnapshotTask {
  TxnId id = kInvalidTxn;
  SnapshotTaskState state = SnapshotTaskState::kReady;
  /// Estimated remaining cost in seconds. In-flight simulated attempts
  /// report their exact wake-derived residual; everything else reports
  /// the policy-visible remaining estimate.
  double remaining = 0.0;
  /// Earliest instant the task can (re)enter execution: `now` for
  /// ready/in-flight/waiting tasks, the timer due instant for delayed
  /// retries and deferred arrivals.
  double release = 0.0;
  double deadline = 0.0;  // absolute, executor-clock seconds
  double weight = 1.0;
  /// Dependencies not yet finished (subset of the spec's dependencies).
  std::vector<TxnId> unfinished_dependencies;
};

/// A consistent view of the executor at a quiescent point (see
/// Executor::SnapshotAtQuiescence).
struct ExecutorSnapshot {
  double now = 0.0;
  size_t num_workers = 0;
  size_t num_workers_up = 0;
  ExecutorStats stats;
  /// Every unfinished task, ascending id.
  std::vector<SnapshotTask> tasks;
};

/// A configuration change applied at a quiescent point (see
/// Executor::Reconfigure). Null members mean "keep the current one".
struct ReconfigureRequest {
  /// Replacement scheduling policy (transaction-level), or null to keep
  /// the current policy.
  std::unique_ptr<SchedulerPolicy> policy;
  /// When true the admission controller is replaced by admission()
  /// (null factory/product = run without admission control from now on).
  bool replace_admission = false;
  AdmissionFactory admission;
};

struct ExecutorOptions {
  /// Worker threads; also the number of SLOTS (the fault-injection
  /// "servers"). Dispatch binds a task to the lowest free up-slot, so
  /// the (task, slot) pairing is a pure function of executor state —
  /// what makes per-slot fault streams replayable even though the OS
  /// threads themselves are an anonymous pool.
  size_t num_workers = 1;
  /// Time source. Null: a private RealClock (wall-clock semantics,
  /// exactly the pre-clock executor). A shared VirtualClock makes the
  /// run a deterministic discrete-event timeline (see rt/clock.h).
  std::shared_ptr<Clock> clock;
  /// Deterministic fault injection (disabled by default).
  FaultInjectorOptions faults;
  /// Fate of the in-flight attempt of a crashed/stalled slot: warm
  /// failover re-dispatches with executed virtual work retained, cold
  /// restarts from zero. Either way the failover never charges
  /// max_attempts. (Function tasks always restart; only
  /// simulated_duration work can be "retained".)
  MigrationPolicy migration = MigrationPolicy::kWarm;
  /// Admission controller factory consulted at every Submit, before the
  /// policy hears of the task (null: admit everything). Rejections are
  /// terminal kShedAdmission; deferrals re-decide after their delay.
  AdmissionFactory admission;
  /// Watchdog: when true, an attempt in flight on a slot entering a
  /// stall window is failed over (per `migration`) once the stall has
  /// lasted watchdog_stall_seconds; when false, in-flight attempts ride
  /// stall windows out (the slot still accepts no new work either way).
  bool watchdog = false;
  double watchdog_stall_seconds = 0.0;  // detection delay (>= 0)
  /// Retry-storm suppression: global ceiling on any single retry delay
  /// (0 = no clamp); each clamped release increments
  /// stats().retry_storm_suppressed — the live mirror of the sim's
  /// RetryOptions::max_backoff.
  double retry_max_backoff = 0.0;
  /// Global retry budget: with more than this many retries waiting out
  /// backoffs, further failures become terminal instead of retrying
  /// (0 = unbounded). The second half of retry-storm suppression.
  size_t retry_budget = 0;
  /// Record a LiveTraceRecorder event log (see rt/live_trace.h) for
  /// validation and replay digests.
  bool record_trace = false;
};

/// A live task executor ordered by any transaction-level scheduling
/// policy from this library — the paper's Sec. VI claim ("could be
/// applied in any Real-Time system with soft-deadlines") made concrete.
///
/// Differences from the simulator, inherent to executing real code:
///   - Non-preemptive: a running task cannot be interrupted, so
///     scheduling points are task submissions and completions only
///     (remaining times of running tasks are not re-estimated), and
///     timeouts/cancellation are cooperative (CancelToken).
///   - The policy plans with *estimated* costs; actual durations may
///     differ, and tardiness is measured on the executor's Clock.
///   - Transaction-level policies only (EDF/SRPT/HDF/ASETS/...):
///     workflow-level ASETS* needs the full workflow graph up front,
///     which contradicts open-ended submission. Dependencies between
///     tasks are still enforced (a task only becomes schedulable once
///     its dependencies finished).
///
/// Failure semantics mirror the simulator's contract (sim/simulator.h):
/// an attempt that throws marks the attempt failed and the worker
/// survives; failed/timed-out/force-aborted attempts retry with bounded
/// exponential backoff; a terminal failure cascades kDependencyFailed
/// to every transitive dependent; Shutdown() drains ALL work (legacy
/// behavior), while ShutdownNow() sheds everything not yet running
/// (kShed), trips the cancel tokens of in-flight attempts, and still
/// joins cleanly.
///
/// Fault injection (ExecutorOptions::faults) consumes the simulator's
/// seeded sim/fault_plan streams against the executor's slots: crashes
/// take a slot out of the pool and fail its in-flight attempt over
/// (warm/cold per MigrationPolicy, handled by re-dispatch of the task
/// while the stuck attempt becomes a "zombie" whose eventual return is
/// discarded); stall windows stop dispatch to the slot and the watchdog
/// fails the in-flight attempt over after a detection delay; forced
/// aborts trip the in-flight attempt's token (charging the retry
/// budget, like sim aborts); latency spikes stretch individual
/// dispatches. Under a VirtualClock the whole run — including every
/// fault — is a deterministic, digest-stable timeline (see
/// exp/live_chaos.h).
///
/// Thread-safe: Submit may be called from any thread, including from
/// inside running tasks (self-expanding workloads), as long as
/// dependencies reference already-submitted ids.
class Executor {
 public:
  /// `policy` must be a transaction-level policy; the executor owns it.
  Executor(std::unique_ptr<SchedulerPolicy> policy, ExecutorOptions options);

  /// Drains remaining tasks and joins the workers.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues a task; returns its id. Fails on bad parameters, unknown
  /// dependency ids, or after Shutdown. A task depending on an
  /// already-failed task is accepted and immediately terminal with
  /// kDependencyFailed; a task rejected by admission control is
  /// accepted and immediately terminal with kShedAdmission.
  Result<TxnId> Submit(TaskSpec task);

  /// Blocks until every submitted task is terminal.
  void Drain();

  /// Stops accepting work, runs EVERYTHING that was submitted to a
  /// terminal state (including pending retries), joins workers.
  /// Idempotent.
  void Shutdown();

  /// Stops accepting work and sheds every task that is not currently
  /// executing (result kShed); in-flight attempts get their CancelToken
  /// tripped and are awaited, never abandoned. Joins workers.
  /// Idempotent; safe to call after Shutdown.
  void ShutdownNow();

  /// Outcome of a task (valid ids only; finished == false while the
  /// task is pending or running).
  TaskOutcome OutcomeOf(TxnId id) const;

  /// Number of tasks that reached a terminal state so far.
  size_t finished_count() const;

  /// Snapshot of the run counters.
  ExecutorStats stats() const;

  /// The recorded event log (empty unless options.record_trace). Call
  /// after Shutdown/Drain for a complete, quiescent trace.
  std::vector<LiveTraceEvent> TakeTrace();

  /// Blocks until the executor is quiescent at the CURRENT clock
  /// instant — every completion due by now has been applied, every due
  /// timer fired, and no dispatch is possible — then returns a
  /// consistent snapshot of all unfinished work. Under a VirtualClock
  /// the caller should be a registered participant: a runnable
  /// registered thread freezes the timeline, so the snapshot captures
  /// the exact virtual instant (the digital twin's control-tick
  /// contract). Safe from any thread; returns an empty-task snapshot
  /// once the run is drained.
  ExecutorSnapshot SnapshotAtQuiescence();

  /// Buffer-reuse variant for callers that snapshot on a cadence (the
  /// twin's control tick): fills `out` in place, reusing its task
  /// vector's capacity so steady-state snapshots allocate nothing new.
  void SnapshotAtQuiescence(ExecutorSnapshot* out);

  /// Swaps the scheduling policy and/or admission controller at a
  /// quiescent point: waits for quiescence exactly like
  /// SnapshotAtQuiescence, then rebinds the new policy and replays the
  /// live state into it (OnArrival for every announced unfinished task,
  /// OnReady for the ready set in queue order). In-flight attempts are
  /// untouched — the executor is non-preemptive, so reconfiguration
  /// never loses work; delayed retries and deferred arrivals re-enter
  /// through their normal release paths and announce themselves to the
  /// new policy there.
  void Reconfigure(ReconfigureRequest request);

  /// Seconds elapsed on the executor's Clock (its SimTime).
  double NowSeconds() const;

  const Clock& clock() const { return *clock_; }

 private:
  /// Adapter exposing executor state to the policy and the admission
  /// controller as a SimView. All access happens under the executor
  /// mutex.
  class View final : public SimView {
   public:
    explicit View(Executor* owner) : owner_(owner) {}
    const std::vector<TransactionSpec>& specs() const override {
      return owner_->specs_;
    }
    const DependencyGraph& graph() const override;
    const WorkflowRegistry& workflows() const override;
    SimTime remaining(TxnId id) const override {
      return owner_->remaining_[id];
    }
    bool IsArrived(TxnId) const override { return true; }
    bool IsFinished(TxnId id) const override {
      return owner_->outcomes_[id].finished;
    }
    bool IsReady(TxnId id) const override {
      return owner_->unmet_deps_[id] == 0 && !owner_->outcomes_[id].finished;
    }
    const std::vector<TxnId>& ready_transactions() const override {
      return owner_->ready_list_;
    }
    size_t num_servers() const override {
      return owner_->options_.num_workers;
    }
    size_t num_servers_up() const override;

   private:
    Executor* owner_;
  };

  /// A retry (or deferred arrival) waiting out its delay.
  struct DelayedEntry {
    double due_seconds = 0.0;
    TxnId id = kInvalidTxn;
  };

  /// One in-flight execution attempt. Slot binding, wake time, and
  /// fault flags live here; `serial` identifies the attempt across the
  /// unlocked execution window (ids can re-dispatch after failover
  /// while the zombie is still running).
  struct Attempt {
    TxnId id = kInvalidTxn;
    uint32_t slot = 0;
    uint64_t serial = 0;
    double dispatch_seconds = 0.0;
    /// Virtual instant the attempt's thread will return (simulated
    /// tasks: min(work end, timeout); function tasks: kNeverSeconds).
    /// The dispatch gate refuses to dispatch past an unapplied
    /// same-instant completion, which keeps slot bindings
    /// deterministic.
    double wake_due = kNeverSeconds;
    double spike_seconds = 0.0;
    std::shared_ptr<std::atomic<bool>> cancel;
    bool cancellable = false;    // fn variant observes the token
    bool simulated = false;      // sleep-based attempt
    bool zombie = false;         // failed over; return will be discarded
    bool forced_abort = false;   // fault stream aborted it
  };

  /// A stall-watchdog timer: fail the attempt over at `due` if it is
  /// still in flight on the (still stalled) slot.
  struct StallWatch {
    double due_seconds = 0.0;
    uint32_t slot = 0;
    uint64_t attempt_serial = 0;
  };

  void WorkerLoop();
  void PumpLoop();
  /// Spins (dropping mu_ between probes) until the executor is
  /// quiescent at the current clock instant or fully drained; returns
  /// with mu_ held by `lock` and the quiescence instant in *now_out.
  void AwaitQuiescenceLocked(std::unique_lock<std::mutex>& lock,
                             double* now_out);
  bool QuiescentLocked(double now) const;
  // The helpers below require mu_ to be held.
  bool CanDispatchLocked(double now) const;
  size_t FreeUpSlotLocked() const;
  bool SlotUpLocked(size_t slot) const;
  double NextWakeDueLocked() const;
  void DispatchOneLocked(std::unique_lock<std::mutex>& lock);
  void ApplyAttemptReturnLocked(uint64_t serial, bool threw);
  void PumpTimedEventsLocked(double now);
  void ApplyFaultEventLocked(const FaultInjector::Event& event);
  void FailOverAttemptLocked(Attempt& attempt, double now,
                             LiveFailoverCause cause);
  void ReleaseDueRetries(double now);
  void ReleaseDueDeferred(double now);
  void HandleAttemptFailureLocked(TxnId id, TaskResult failure, double now);
  void MarkTerminal(TxnId id, TaskResult result, double now);
  void FailDependents(TxnId root, double now);
  void RemoveFromReady(TxnId id, double now);
  void JoinWorkers();
  void RecordLocked(double time, LiveEventKind kind, TxnId txn,
                    uint32_t slot = LiveTraceEvent::kNoSlot,
                    uint32_t attempt = 0, uint64_t aux = 0);

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  /// Signals worker/pump thread clock registration to the constructor
  /// (wall-clock wait; these threads are not timeline participants until
  /// registered, so the constructor must not return — letting callers
  /// submit and sleep — before every thread is accounted for, or the
  /// virtual timeline could advance past arrivals with no worker
  /// present to dispatch them).
  std::condition_variable threads_registered_;
  size_t registered_threads_ = 0;

  std::unique_ptr<SchedulerPolicy> policy_;
  ExecutorOptions options_;
  View view_;
  std::shared_ptr<Clock> clock_;
  std::optional<FaultInjector> injector_;
  std::unique_ptr<AdmissionController> admission_;

  // Guarded by mu_:
  std::vector<TransactionSpec> specs_;
  std::vector<SimTime> remaining_;
  std::vector<uint32_t> unmet_deps_;
  std::vector<std::vector<TxnId>> successors_;
  std::vector<std::function<void()>> functions_;
  std::vector<std::function<void(const CancelToken&)>> cancellable_fns_;
  std::vector<double> simulated_durations_;
  std::vector<double> timeouts_;
  std::vector<uint32_t> max_attempts_;
  std::vector<double> backoffs_;
  std::vector<double> backoff_multipliers_;
  std::vector<TaskOutcome> outcomes_;
  /// Virtual work completed by earlier (warm-failed-over) attempts of
  /// each simulated task; zeroed by cold failover and forced aborts.
  std::vector<double> progress_done_;
  /// Outstanding uncharged re-dispatches owed to failovers.
  std::vector<uint32_t> migration_credits_;
  /// Whether the policy has heard OnArrival for the task (admitted
  /// arrivals only; deferred arrivals announce on admit). Reconfigure
  /// replays exactly these into a replacement policy.
  std::vector<char> announced_;
  std::vector<TxnId> ready_list_;
  std::vector<DelayedEntry> delayed_;    // retries in backoff
  std::vector<DelayedEntry> deferred_;   // admission-deferred arrivals
  std::vector<Attempt> inflight_;
  std::vector<TxnId> slot_task_;         // per-slot occupant (kInvalidTxn
                                         // = free; zombies detach)
  std::vector<StallWatch> stall_watches_;
  std::vector<FaultInjector::Event> fault_scratch_;
  LiveTraceRecorder trace_;
  ExecutorStats stats_;
  uint64_t next_serial_ = 1;
  size_t finished_ = 0;
  bool shutting_down_ = false;
  /// ShutdownNow was called: failures and failovers shed instead of
  /// retrying/re-enqueuing (completions still count).
  bool hard_shutdown_ = false;

  std::vector<std::thread> workers_;
  std::thread pump_;
};

}  // namespace webtx::rt

#endif  // WEBTX_RT_EXECUTOR_H_
