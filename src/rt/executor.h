#ifndef WEBTX_RT_EXECUTOR_H_
#define WEBTX_RT_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "sched/scheduler_policy.h"
#include "sched/sim_view.h"
#include "txn/dependency_graph.h"
#include "txn/transaction.h"
#include "txn/workflow.h"

namespace webtx::rt {

/// Cooperative cancellation handle passed to TaskSpec::cancellable_fn.
/// Reports true once the executor wants the attempt to stop: the
/// attempt overran its timeout, or ShutdownNow was called. Long-running
/// tasks should poll it at convenient boundaries and return early; the
/// executor never interrupts a task forcibly.
class CancelToken {
 public:
  bool cancelled() const {
    if (flag_ != nullptr && flag_->load(std::memory_order_relaxed)) {
      return true;
    }
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

 private:
  friend class Executor;
  std::shared_ptr<std::atomic<bool>> flag_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
};

/// A unit of real work scheduled by the executor.
struct TaskSpec {
  /// Soft deadline relative to submission, in seconds.
  double relative_deadline = 1.0;
  /// Importance (the w_i of the scheduling model).
  double weight = 1.0;
  /// Estimated execution cost in seconds — the r_i the policy plans
  /// with ("computed by the system based on previous statistics",
  /// Sec. II-A). The actual run may take more or less.
  double estimated_cost = 0.01;
  /// Tasks (by id returned from Submit) that must finish first.
  std::vector<TxnId> dependencies;
  /// The work itself; runs on an executor worker thread. Exactly one of
  /// `fn` and `cancellable_fn` must be set.
  std::function<void()> fn;
  /// Cancellation-aware variant of `fn`: receives a CancelToken that
  /// turns true when the attempt overruns `timeout_seconds` or the
  /// executor is shut down with ShutdownNow.
  std::function<void(const CancelToken&)> cancellable_fn;
  /// Wall-clock budget for one execution attempt; 0 = unlimited. The
  /// executor cannot preempt a native thread, so enforcement is
  /// cooperative: the CancelToken trips at the budget, and an attempt
  /// observed to have overrun it when the function returns counts as
  /// timed out (failed) rather than completed.
  double timeout_seconds = 0.0;
  /// Maximum execution attempts (>= 1). Failed or timed-out attempts
  /// are retried until the budget is spent; the last failure is
  /// terminal (kFailed / kTimedOut).
  uint32_t max_attempts = 1;
  /// Delay before retry i (1-based): retry_backoff_seconds *
  /// backoff_multiplier^(i-1). 0 = retry immediately.
  double retry_backoff_seconds = 0.0;
  double backoff_multiplier = 2.0;
};

/// Terminal state of a task. Every submitted task ends in exactly one
/// non-kPending state, even under ShutdownNow.
enum class TaskResult : uint8_t {
  kPending = 0,        // not terminal yet (queued, delayed, or running)
  kCompleted,          // an attempt returned within its budget
  kFailed,             // last attempt threw an exception
  kTimedOut,           // last attempt overran timeout_seconds
  kShed,               // never finished: shed by ShutdownNow
  kDependencyFailed,   // a (transitive) dependency never completed
};

/// Completion record for one task.
struct TaskOutcome {
  /// True once the task is terminal (any result but kPending); covers
  /// failures and sheds, not just completions — check `result`.
  bool finished = false;
  double submit_seconds = 0.0;    // submission instant (executor clock)
  double finish_seconds = 0.0;    // instant the terminal state was set
  double tardiness_seconds = 0.0; // max(0, finish - absolute deadline),
                                  // completed tasks only
  TaskResult result = TaskResult::kPending;
  uint32_t attempts = 0;          // execution attempts dispatched
};

struct ExecutorOptions {
  /// Worker threads (parallel "servers").
  size_t num_workers = 1;
};

/// A live (wall-clock) task executor ordered by any transaction-level
/// scheduling policy from this library — the paper's Sec. VI claim
/// ("could be applied in any Real-Time system with soft-deadlines")
/// made concrete.
///
/// Differences from the simulator, inherent to executing real code:
///   - Non-preemptive: a running task cannot be interrupted, so
///     scheduling points are task submissions and completions only
///     (remaining times of running tasks are not re-estimated), and
///     timeouts/cancellation are cooperative (CancelToken).
///   - The policy plans with *estimated* costs; actual durations may
///     differ, and tardiness is measured on the real clock.
///   - Transaction-level policies only (EDF/SRPT/HDF/ASETS/...):
///     workflow-level ASETS* needs the full workflow graph up front,
///     which contradicts open-ended submission. Dependencies between
///     tasks are still enforced (a task only becomes schedulable once
///     its dependencies finished).
///
/// Failure semantics mirror the simulator's contract (sim/simulator.h):
/// an attempt that throws marks the attempt failed and the worker
/// survives; failed/timed-out attempts retry with bounded exponential
/// backoff; a terminal failure cascades kDependencyFailed to every
/// transitive dependent; Shutdown() drains ALL work (legacy behavior),
/// while ShutdownNow() sheds everything not yet running (kShed), trips
/// the cancel tokens of in-flight attempts, and still joins cleanly.
///
/// Thread-safe: Submit may be called from any thread, including from
/// inside running tasks (self-expanding workloads), as long as
/// dependencies reference already-submitted ids.
class Executor {
 public:
  /// `policy` must be a transaction-level policy; the executor owns it.
  Executor(std::unique_ptr<SchedulerPolicy> policy, ExecutorOptions options);

  /// Drains remaining tasks and joins the workers.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues a task; returns its id. Fails on bad parameters, unknown
  /// dependency ids, or after Shutdown. A task depending on an
  /// already-failed task is accepted and immediately terminal with
  /// kDependencyFailed.
  Result<TxnId> Submit(TaskSpec task);

  /// Blocks until every submitted task is terminal.
  void Drain();

  /// Stops accepting work, runs EVERYTHING that was submitted to a
  /// terminal state (including pending retries), joins workers.
  /// Idempotent.
  void Shutdown();

  /// Stops accepting work and sheds every task that is not currently
  /// executing (result kShed); in-flight attempts get their CancelToken
  /// tripped and are awaited, never abandoned. Joins workers.
  /// Idempotent; safe to call after Shutdown.
  void ShutdownNow();

  /// Outcome of a task (valid ids only; finished == false while the
  /// task is pending or running).
  TaskOutcome OutcomeOf(TxnId id) const;

  /// Number of tasks that reached a terminal state so far.
  size_t finished_count() const;

  /// Seconds elapsed since the executor started (its SimTime clock).
  double NowSeconds() const;

 private:
  /// Adapter exposing executor state to the policy as a SimView. All
  /// access happens under the executor mutex.
  class View final : public SimView {
   public:
    explicit View(Executor* owner) : owner_(owner) {}
    const std::vector<TransactionSpec>& specs() const override {
      return owner_->specs_;
    }
    const DependencyGraph& graph() const override;
    const WorkflowRegistry& workflows() const override;
    SimTime remaining(TxnId id) const override {
      return owner_->remaining_[id];
    }
    bool IsArrived(TxnId) const override { return true; }
    bool IsFinished(TxnId id) const override {
      return owner_->outcomes_[id].finished;
    }
    bool IsReady(TxnId id) const override {
      return owner_->unmet_deps_[id] == 0 && !owner_->outcomes_[id].finished;
    }
    const std::vector<TxnId>& ready_transactions() const override {
      return owner_->ready_list_;
    }

   private:
    Executor* owner_;
  };

  /// A retry waiting out its backoff.
  struct DelayedRetry {
    double due_seconds = 0.0;
    TxnId id = kInvalidTxn;
  };

  void WorkerLoop();
  // The helpers below require mu_ to be held.
  void ReleaseDueRetries(double now);
  double NextRetryDue() const;
  void MarkTerminal(TxnId id, TaskResult result, double now);
  void FailDependents(TxnId root, double now);
  void RemoveFromReady(TxnId id, double now);
  void JoinWorkers();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;

  std::unique_ptr<SchedulerPolicy> policy_;
  ExecutorOptions options_;
  View view_;
  std::chrono::steady_clock::time_point epoch_;

  // Guarded by mu_:
  std::vector<TransactionSpec> specs_;
  std::vector<SimTime> remaining_;
  std::vector<uint32_t> unmet_deps_;
  std::vector<std::vector<TxnId>> successors_;
  std::vector<std::function<void()>> functions_;
  std::vector<std::function<void(const CancelToken&)>> cancellable_fns_;
  std::vector<double> timeouts_;
  std::vector<uint32_t> max_attempts_;
  std::vector<double> backoffs_;
  std::vector<double> backoff_multipliers_;
  std::vector<TaskOutcome> outcomes_;
  std::vector<TxnId> ready_list_;
  std::vector<DelayedRetry> delayed_;
  std::vector<TxnId> running_;
  // Cancel flags of in-flight attempts, parallel to running_.
  std::vector<std::shared_ptr<std::atomic<bool>>> running_cancel_;
  size_t finished_ = 0;
  bool shutting_down_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace webtx::rt

#endif  // WEBTX_RT_EXECUTOR_H_
