#include "rt/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace webtx::rt {

namespace {
/// DeriveSeed stream tag of the per-slot latency-spike RNGs (arbitrary
/// constant, distinct from the outage/abort/crash tags inside
/// sim/fault_plan.cc).
constexpr uint64_t kSpikeStream = 0x5B1CEull;
}  // namespace

Result<FaultInjector> FaultInjector::Create(FaultInjectorOptions options,
                                            size_t num_slots) {
  // Reuse the sim plan's validation for rates and durations.
  WEBTX_ASSIGN_OR_RETURN(FaultPlan plan, FaultPlan::Create(options.plan));
  (void)plan;
  if (options.latency_spike_prob < 0.0 || options.latency_spike_prob > 1.0) {
    return Status::InvalidArgument("latency_spike_prob must be in [0, 1]");
  }
  if (options.latency_spike_prob > 0.0 && options.mean_latency_spike <= 0.0) {
    return Status::InvalidArgument(
        "mean_latency_spike must be > 0 when latency spikes are enabled");
  }
  if (num_slots == 0) {
    return Status::InvalidArgument("fault injection needs >= 1 slot");
  }
  return FaultInjector(std::move(options), num_slots);
}

FaultInjector::FaultInjector(FaultInjectorOptions options, size_t num_slots)
    : options_(std::move(options)) {
  streams_.reserve(num_slots);
  spike_rngs_.reserve(num_slots);
  for (size_t slot = 0; slot < num_slots; ++slot) {
    streams_.emplace_back(options_.plan, static_cast<uint32_t>(slot));
    spike_rngs_.emplace_back(
        DeriveSeed(options_.plan.seed, kSpikeStream, slot));
  }
  stall_active_.assign(num_slots, false);
}

double FaultInjector::NextEventTime() const {
  double best = kNeverTime;
  for (const FaultStream& stream : streams_) {
    best = std::min(best, stream.next_crash_transition());
    best = std::min(best, stream.next_transition());
    best = std::min(best, stream.next_abort());
  }
  return best;
}

size_t FaultInjector::num_slots_up() const {
  size_t up = 0;
  for (const FaultStream& stream : streams_) {
    if (!stream.down()) ++up;
  }
  return up;
}

void FaultInjector::CollectEventsUpTo(double now,
                                      std::vector<Event>* events) {
  while (true) {
    // Global minimum over every stream's next boundary. Scan order is
    // the tie-break: crash boundaries before outage boundaries before
    // abort instants, slots ascending (strict < keeps the first hit).
    double best = kNeverTime;
    uint32_t best_slot = 0;
    enum class Source : uint8_t { kCrash, kOutage, kAbort };
    Source best_source = Source::kCrash;
    for (uint32_t slot = 0; slot < streams_.size(); ++slot) {
      const FaultStream& stream = streams_[slot];
      if (stream.next_crash_transition() < best) {
        best = stream.next_crash_transition();
        best_slot = slot;
        best_source = Source::kCrash;
      }
      if (stream.next_transition() < best) {
        best = stream.next_transition();
        best_slot = slot;
        best_source = Source::kOutage;
      }
      if (stream.next_abort() < best) {
        best = stream.next_abort();
        best_slot = slot;
        best_source = Source::kAbort;
      }
    }
    if (best > now || best >= kNeverTime) return;

    FaultStream& stream = streams_[best_slot];
    switch (best_source) {
      case Source::kCrash:
        if (stream.AdvanceCrashTransition()) {
          events->push_back({best, Event::Kind::kCrash, best_slot});
          if (options_.plan.correlated_crash_prob > 0.0) {
            // Fixed consumption pattern, mirroring the simulator: one
            // correlated draw per other slot, ascending.
            for (uint32_t victim = 0; victim < streams_.size(); ++victim) {
              if (victim == best_slot) continue;
              SimTime repair = 0.0;
              if (!stream.DrawCorrelatedVictim(&repair)) continue;
              const bool was_up = !streams_[victim].crashed();
              streams_[victim].ForceCrash(best, repair);
              if (was_up) {
                events->push_back({best, Event::Kind::kCrash, victim});
              }
            }
          }
        } else {
          events->push_back({best, Event::Kind::kRepair, best_slot});
        }
        break;
      case Source::kOutage: {
        // The stream alternates start/end strictly; mirror the phase to
        // label the boundary (down() can't distinguish: it includes
        // crashes).
        stream.AdvanceTransition();
        const bool starting = !stall_active_[best_slot];
        stall_active_[best_slot] = starting;
        events->push_back({best,
                           starting ? Event::Kind::kStallStart
                                    : Event::Kind::kStallEnd,
                           best_slot});
        break;
      }
      case Source::kAbort:
        stream.AdvanceAbort();
        events->push_back({best, Event::Kind::kAbort, best_slot});
        break;
    }
  }
}

double FaultInjector::DrawLatencySpike(uint32_t slot) {
  if (options_.latency_spike_prob <= 0.0) return 0.0;
  Rng& rng = spike_rngs_[slot];
  // Two draws per dispatch unconditionally, so the stream position is a
  // pure function of the slot's dispatch count.
  const double hit = rng.NextDouble();
  const double magnitude = rng.NextDouble();
  if (hit >= options_.latency_spike_prob) return 0.0;
  return -std::log(1.0 - magnitude) * options_.mean_latency_spike;
}

}  // namespace webtx::rt
