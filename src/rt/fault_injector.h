#ifndef WEBTX_RT_FAULT_INJECTOR_H_
#define WEBTX_RT_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "sim/fault_plan.h"

namespace webtx::rt {

/// Configuration of live fault injection. The `plan` is the exact
/// seeded per-server stream config the simulator consumes
/// (sim/fault_plan.h) reinterpreted for executor slots:
///   - outages become STALL windows: the slot stops accepting work and
///     its in-flight attempt is failed over by the watchdog after the
///     executor's detection delay (or rides the window out when the
///     watchdog is disabled);
///   - aborts become FORCED ABORTS of the attempt in flight on the slot
///     (idle instants are thinned no-ops, exactly like the sim);
///   - crashes take the slot out of the pool for the repair window and
///     the in-flight attempt is failed over immediately, warm or cold
///     per ExecutorOptions::migration. Correlated crashes fell
///     co-victim slots at the same instant.
/// Latency spikes are executor-only: each dispatch draws, from a
/// per-slot stream derived from the same plan seed, whether the attempt
/// pays an exponential extra latency before its work proceeds.
struct FaultInjectorOptions {
  FaultPlanConfig plan;
  /// Probability that a dispatch suffers a latency spike, in [0, 1].
  double latency_spike_prob = 0.0;
  /// Mean injected latency in seconds (exponential); must be > 0 when
  /// latency_spike_prob > 0.
  double mean_latency_spike = 0.0;

  bool enabled() const {
    return plan.outage_rate > 0.0 || plan.abort_rate > 0.0 ||
           plan.crash_rate > 0.0 || latency_spike_prob > 0.0;
  }
};

/// Deterministic fault event source for the live executor: one
/// sim/fault_plan FaultStream per slot plus per-slot latency-spike
/// streams. The executor consumes it under its own mutex (the injector
/// is not thread-safe) in two ways: CollectEventsUpTo drains every
/// timed fault event due by `now` in deterministic (time, slot, kind)
/// order, and DrawLatencySpike is consumed exactly once per dispatch.
/// Given the same seed and the same dispatch sequence the injected
/// fault timeline is identical run to run — the property `tools/chaos
/// --live` pins with trace digests.
class FaultInjector {
 public:
  /// Validates the options (via FaultPlan::Create) and builds streams
  /// for `num_slots` slots.
  static Result<FaultInjector> Create(FaultInjectorOptions options,
                                      size_t num_slots);

  /// One timed fault event, in executor-clock seconds.
  struct Event {
    enum class Kind : uint8_t {
      kStallStart = 0,  // outage window opens: slot undispatchable
      kStallEnd,        // outage window closes
      kCrash,           // slot leaves the pool (repair window opens)
      kRepair,          // slot rejoins the pool
      kAbort,           // abort instant (no-op if the slot is idle)
    };
    double time = 0.0;
    Kind kind = Kind::kStallStart;
    uint32_t slot = 0;
  };

  /// Appends every fault event with time <= now, in (time, slot, kind)
  /// order, advancing the underlying streams. Correlated crashes are
  /// resolved here: a natural crash instant fells each seeded co-victim
  /// slot at the same instant (emitted as its own kCrash event).
  void CollectEventsUpTo(double now, std::vector<Event>* events);

  /// Earliest future fault event, or kNeverTime when none is pending.
  double NextEventTime() const;

  /// Out of the pool right now: stalled or crashed.
  bool slot_down(size_t slot) const { return streams_[slot].down(); }
  bool slot_crashed(size_t slot) const { return streams_[slot].crashed(); }
  size_t num_slots() const { return streams_.size(); }
  size_t num_slots_up() const;

  /// Latency-spike draw for one dispatch on `slot`: 0 most of the time,
  /// an exponential extra latency with probability latency_spike_prob.
  /// Consumes the slot's spike stream exactly once per call.
  double DrawLatencySpike(uint32_t slot);

  const FaultInjectorOptions& options() const { return options_; }

 private:
  FaultInjector(FaultInjectorOptions options, size_t num_slots);

  FaultInjectorOptions options_;
  std::vector<FaultStream> streams_;
  std::vector<Rng> spike_rngs_;
  /// Outage phase per slot (FaultStream keeps it private and down()
  /// unions it with crashes): flipped on every outage boundary so
  /// CollectEventsUpTo can label starts vs ends.
  std::vector<bool> stall_active_;
};

}  // namespace webtx::rt

#endif  // WEBTX_RT_FAULT_INJECTOR_H_
