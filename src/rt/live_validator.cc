#include "rt/live_validator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <sstream>

#include "common/check.h"
#include "common/sim_time.h"

namespace webtx::rt {

namespace {

/// Tolerance of exact-instant comparisons. Virtual-clock timelines are
/// computed, not measured, so everything lands within rounding error.
constexpr double kEps = 1e-6;

double BitsToDouble(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

/// Same-instant apply order of the executor, reconstructed for the
/// sorted replay of the trace: slot state changes land first (workers
/// pump fault events before anything else), then forced aborts, then
/// attempt ends (an interrupted sleep returns at the abort instant),
/// then bookkeeping, then dispatches (the completion barrier orders
/// same-instant completions before any dispatch).
int PhaseOf(LiveEventKind kind) {
  switch (kind) {
    case LiveEventKind::kSlotDown:
    case LiveEventKind::kSlotUp:
      return 0;
    case LiveEventKind::kForcedAbort:
      return 1;
    case LiveEventKind::kAttemptEnd:
    case LiveEventKind::kZombieEnd:
    case LiveEventKind::kFailover:
      return 2;
    case LiveEventKind::kDispatch:
      return 4;
    default:
      return 3;
  }
}

struct SortKey {
  bool operator()(const LiveTraceEvent& a, const LiveTraceEvent& b) const {
    if (a.time != b.time) return a.time < b.time;
    const int pa = PhaseOf(a.kind);
    const int pb = PhaseOf(b.kind);
    if (pa != pb) return pa < pb;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.txn != b.txn) return a.txn < b.txn;
    if (a.attempt != b.attempt) return a.attempt < b.attempt;
    return a.slot < b.slot;
  }
};

struct OpenAttempt {
  TxnId txn = kInvalidTxn;
  uint32_t attempt = 0;
  double dispatch_seconds = 0.0;
  bool forced_abort = false;
  double abort_seconds = 0.0;
};

struct StallWindow {
  double start = 0.0;
  double end = kNeverSeconds;  // still open
};

struct TaskTally {
  uint32_t submits = 0;
  uint32_t charged = 0;
  uint32_t migration_dispatches = 0;
  uint32_t failovers = 0;
  uint32_t zombie_ends = 0;
  uint32_t forced_aborts = 0;
  uint32_t terminals = 0;
  uint64_t terminal_aux = 0;
  double terminal_time = 0.0;
  struct Retry {
    double time = 0.0;
    uint32_t attempt = 0;
    double delay = 0.0;
  };
  std::vector<Retry> scheduled;
  std::vector<Retry> released;
};

}  // namespace

LiveValidationResult ValidateLiveTrace(
    const std::vector<LiveTraceEvent>& trace,
    const std::vector<LiveTaskRecord>& tasks,
    const std::vector<TaskOutcome>& outcomes, const ExecutorStats& stats,
    const LiveValidatorOptions& options) {
  LiveValidationResult result;
  auto fail = [&result](const std::string& message) {
    result.violations.push_back(message);
  };
  auto failf = [&fail](const std::ostringstream& os) { fail(os.str()); };

  if (tasks.size() != outcomes.size()) {
    fail("task records and outcomes disagree in size");
    return result;
  }
  const auto num_tasks = static_cast<TxnId>(tasks.size());

  std::vector<LiveTraceEvent> events(trace);
  std::stable_sort(events.begin(), events.end(), SortKey{});

  // Per-slot state, sized lazily as slots appear.
  std::vector<bool> stall_down;
  std::vector<bool> crash_down;
  std::vector<std::optional<OpenAttempt>> occupant;
  std::vector<std::vector<double>> crash_times;
  std::vector<std::vector<StallWindow>> stall_windows;
  auto ensure_slot = [&](uint32_t slot) {
    if (slot < stall_down.size()) return;
    stall_down.resize(slot + 1, false);
    crash_down.resize(slot + 1, false);
    occupant.resize(slot + 1);
    crash_times.resize(slot + 1);
    stall_windows.resize(slot + 1);
  };

  std::vector<TaskTally> tally(tasks.size());
  std::vector<uint32_t> pending_zombies(tasks.size(), 0);
  double last_time = 0.0;

  for (const LiveTraceEvent& event : events) {
    if (!std::isfinite(event.time) || event.time < 0.0) {
      std::ostringstream os;
      os << "non-finite or negative event time " << event.time;
      failf(os);
      continue;
    }
    last_time = std::max(last_time, event.time);
    const bool has_txn = event.txn != kInvalidTxn;
    if (has_txn && event.txn >= num_tasks) {
      std::ostringstream os;
      os << "event references unknown task " << event.txn;
      failf(os);
      continue;
    }
    if (event.slot != LiveTraceEvent::kNoSlot) ensure_slot(event.slot);

    switch (event.kind) {
      case LiveEventKind::kSubmit:
        ++tally[event.txn].submits;
        break;
      case LiveEventKind::kShedAdmission:
      case LiveEventKind::kDeferArrival:
      case LiveEventKind::kLatencySpike:
        break;
      case LiveEventKind::kSlotDown: {
        const bool crash = event.aux == 1;
        std::vector<bool>& channel = crash ? crash_down : stall_down;
        if (channel[event.slot]) {
          std::ostringstream os;
          os << "slot " << event.slot << " went down twice on the "
             << (crash ? "crash" : "stall") << " channel at " << event.time;
          failf(os);
        }
        channel[event.slot] = true;
        if (crash) {
          crash_times[event.slot].push_back(event.time);
        } else {
          stall_windows[event.slot].push_back(StallWindow{event.time});
        }
        break;
      }
      case LiveEventKind::kSlotUp: {
        const bool crash = event.aux == 1;
        std::vector<bool>& channel = crash ? crash_down : stall_down;
        if (!channel[event.slot]) {
          std::ostringstream os;
          os << "slot " << event.slot << " came up without being down on "
             << "the " << (crash ? "crash" : "stall") << " channel at "
             << event.time;
          failf(os);
        }
        channel[event.slot] = false;
        if (!crash && !stall_windows[event.slot].empty()) {
          stall_windows[event.slot].back().end = event.time;
        }
        break;
      }
      case LiveEventKind::kDispatch: {
        TaskTally& t = tally[event.txn];
        if (t.terminals > 0) {
          std::ostringstream os;
          os << "task " << event.txn << " dispatched at " << event.time
             << " after its terminal event";
          failf(os);
        }
        if (stall_down[event.slot] || crash_down[event.slot]) {
          std::ostringstream os;
          os << "task " << event.txn << " dispatched onto down slot "
             << event.slot << " at " << event.time;
          failf(os);
        }
        if (occupant[event.slot].has_value()) {
          std::ostringstream os;
          os << "task " << event.txn << " dispatched onto occupied slot "
             << event.slot << " at " << event.time << " (occupant: task "
             << occupant[event.slot]->txn << ")";
          failf(os);
        }
        const auto kind = static_cast<LiveDispatchKind>(event.aux);
        if (kind == LiveDispatchKind::kMigration) {
          ++t.migration_dispatches;
        } else {
          ++t.charged;
          if (event.attempt != t.charged) {
            std::ostringstream os;
            os << "task " << event.txn << " charged dispatch at "
               << event.time << " has attempt ordinal " << event.attempt
               << ", expected " << t.charged;
            failf(os);
          }
        }
        occupant[event.slot] =
            OpenAttempt{event.txn, event.attempt, event.time};
        break;
      }
      case LiveEventKind::kForcedAbort: {
        ++tally[event.txn].forced_aborts;
        if (!occupant[event.slot].has_value() ||
            occupant[event.slot]->txn != event.txn) {
          std::ostringstream os;
          os << "forced abort of task " << event.txn << " at " << event.time
             << " on slot " << event.slot
             << " does not match the in-flight attempt";
          failf(os);
        } else {
          occupant[event.slot]->forced_abort = true;
          occupant[event.slot]->abort_seconds = event.time;
        }
        break;
      }
      case LiveEventKind::kFailover: {
        TaskTally& t = tally[event.txn];
        ++t.failovers;
        ++pending_zombies[event.txn];
        if (!occupant[event.slot].has_value() ||
            occupant[event.slot]->txn != event.txn) {
          std::ostringstream os;
          os << "failover of task " << event.txn << " at " << event.time
             << " on slot " << event.slot
             << " does not match the in-flight attempt";
          failf(os);
          break;
        }
        occupant[event.slot].reset();
        const auto cause = static_cast<LiveFailoverCause>(event.aux);
        if (cause == LiveFailoverCause::kCrash) {
          const std::vector<double>& crashes = crash_times[event.slot];
          const bool at_crash =
              !crashes.empty() &&
              std::fabs(crashes.back() - event.time) <= kEps;
          if (!at_crash) {
            std::ostringstream os;
            os << "crash failover of task " << event.txn << " at "
               << event.time << " on slot " << event.slot
               << " without a crash at that instant";
            failf(os);
          }
        } else if (cause == LiveFailoverCause::kStall) {
          if (!options.watchdog) {
            std::ostringstream os;
            os << "stall failover of task " << event.txn << " at "
               << event.time << " with the watchdog disabled";
            failf(os);
            break;
          }
          bool at_deadline = false;
          for (const StallWindow& w : stall_windows[event.slot]) {
            if (std::fabs(w.start + options.watchdog_stall_seconds -
                          event.time) <= kEps &&
                w.end > event.time - kEps) {
              at_deadline = true;
              break;
            }
          }
          if (!at_deadline) {
            std::ostringstream os;
            os << "stall failover of task " << event.txn << " at "
               << event.time << " on slot " << event.slot
               << " not at a stall start + detection delay";
            failf(os);
          }
        }
        break;
      }
      case LiveEventKind::kAttemptEnd: {
        if (!occupant[event.slot].has_value() ||
            occupant[event.slot]->txn != event.txn) {
          std::ostringstream os;
          os << "attempt end of task " << event.txn << " at " << event.time
             << " on slot " << event.slot
             << " does not match the in-flight attempt";
          failf(os);
          break;
        }
        const OpenAttempt open = *occupant[event.slot];
        occupant[event.slot].reset();
        const double d = open.dispatch_seconds;
        const double e = event.time;
        // A crash strictly inside the execution interval must have
        // failed the attempt over; surviving to a normal end is the
        // core invariant violation ("execution on a crashed worker").
        for (const double c : crash_times[event.slot]) {
          if (c > d + kEps && c < e - kEps) {
            std::ostringstream os;
            os << "task " << event.txn << " attempt on slot " << event.slot
               << " ran across a crash at " << c << " (interval [" << d
               << ", " << e << "])";
            failf(os);
          }
        }
        const auto res = static_cast<LiveAttemptResult>(event.aux);
        if (options.watchdog && res != LiveAttemptResult::kShed) {
          const double wd = options.watchdog_stall_seconds;
          for (const StallWindow& w : stall_windows[event.slot]) {
            if (w.start < d - kEps) continue;  // began before dispatch?
            if (w.start >= e) continue;
            const double deadline = w.start + wd;
            const bool stalled_past_deadline = w.end > deadline + kEps;
            if (stalled_past_deadline && e > deadline + kEps) {
              std::ostringstream os;
              os << "task " << event.txn << " attempt on slot "
                 << event.slot << " outlived the watchdog deadline "
                 << deadline << " of the stall at " << w.start
                 << " (ended " << e << ")";
              failf(os);
            }
          }
        }
        if (open.forced_abort) {
          if (res != LiveAttemptResult::kAborted &&
              res != LiveAttemptResult::kShed) {
            std::ostringstream os;
            os << "force-aborted attempt of task " << event.txn
               << " ended with result " << static_cast<int>(res)
               << " instead of aborted/shed";
            failf(os);
          }
          if (tasks[event.txn].simulated &&
              std::fabs(e - open.abort_seconds) > kEps) {
            std::ostringstream os;
            os << "force-aborted simulated attempt of task " << event.txn
               << " ended at " << e << ", not at the abort instant "
               << open.abort_seconds;
            failf(os);
          }
        }
        break;
      }
      case LiveEventKind::kZombieEnd: {
        ++tally[event.txn].zombie_ends;
        if (pending_zombies[event.txn] == 0) {
          std::ostringstream os;
          os << "zombie end of task " << event.txn << " at " << event.time
             << " without a matching failover";
          failf(os);
        } else {
          --pending_zombies[event.txn];
        }
        break;
      }
      case LiveEventKind::kRetryScheduled:
        tally[event.txn].scheduled.push_back(TaskTally::Retry{
            event.time, event.attempt, BitsToDouble(event.aux)});
        break;
      case LiveEventKind::kRetryReleased:
        tally[event.txn].released.push_back(
            TaskTally::Retry{event.time, event.attempt, 0.0});
        break;
      case LiveEventKind::kTerminal: {
        TaskTally& t = tally[event.txn];
        ++t.terminals;
        t.terminal_aux = event.aux;
        t.terminal_time = event.time;
        break;
      }
    }
  }

  // Cross-checks against ground truth and final outcomes.
  size_t total_charged = 0;
  size_t total_failovers = 0;
  size_t total_aborts = 0;
  size_t clamped_retries = 0;
  size_t by_result[7] = {0, 0, 0, 0, 0, 0, 0};
  for (TxnId id = 0; id < num_tasks; ++id) {
    const LiveTaskRecord& task = tasks[id];
    const TaskOutcome& outcome = outcomes[id];
    const TaskTally& t = tally[id];
    total_charged += t.charged;
    total_failovers += t.failovers;
    total_aborts += t.forced_aborts;

    if (!outcome.finished) {
      std::ostringstream os;
      os << "task " << id << " never reached a terminal state";
      failf(os);
      continue;
    }
    by_result[static_cast<size_t>(outcome.result)]++;
    if (t.submits != 1) {
      std::ostringstream os;
      os << "task " << id << " has " << t.submits << " submit events";
      failf(os);
    }
    if (t.terminals != 1) {
      std::ostringstream os;
      os << "task " << id << " has " << t.terminals
         << " terminal events (every drop needs exactly one cause)";
      failf(os);
    } else {
      if (t.terminal_aux != static_cast<uint64_t>(outcome.result)) {
        std::ostringstream os;
        os << "task " << id << " terminal event cause " << t.terminal_aux
           << " disagrees with outcome result "
           << static_cast<int>(outcome.result);
        failf(os);
      }
      if (std::fabs(t.terminal_time - outcome.finish_seconds) > kEps) {
        std::ostringstream os;
        os << "task " << id << " terminal event at " << t.terminal_time
           << " disagrees with outcome finish " << outcome.finish_seconds;
        failf(os);
      }
    }
    if (outcome.fate != FateOf(outcome.result)) {
      std::ostringstream os;
      os << "task " << id << " fate does not match its result";
      failf(os);
    }
    if (t.charged != outcome.attempts) {
      std::ostringstream os;
      os << "task " << id << " has " << t.charged
         << " charged dispatches but outcome.attempts == "
         << outcome.attempts;
      failf(os);
    }
    if (t.charged > task.max_attempts) {
      std::ostringstream os;
      os << "task " << id << " charged " << t.charged
         << " attempts, over its budget of " << task.max_attempts;
      failf(os);
    }
    if (t.failovers != outcome.migrations) {
      std::ostringstream os;
      os << "task " << id << " has " << t.failovers
         << " failover events but outcome.migrations == "
         << outcome.migrations;
      failf(os);
    }
    if (t.zombie_ends != t.failovers) {
      std::ostringstream os;
      os << "task " << id << " has " << t.failovers << " failovers but "
         << t.zombie_ends << " zombie ends (trace not quiescent?)";
      failf(os);
    }
    if (t.migration_dispatches > t.failovers) {
      std::ostringstream os;
      os << "task " << id << " has more uncharged re-dispatches ("
         << t.migration_dispatches << ") than failovers (" << t.failovers
         << ")";
      failf(os);
    }
    if (t.forced_aborts != outcome.forced_aborts) {
      std::ostringstream os;
      os << "task " << id << " has " << t.forced_aborts
         << " forced-abort events but outcome.forced_aborts == "
         << outcome.forced_aborts;
      failf(os);
    }
    if (outcome.result == TaskResult::kShedAdmission &&
        t.charged + t.migration_dispatches > 0) {
      std::ostringstream os;
      os << "admission-shed task " << id << " was dispatched";
      failf(os);
    }
    if (outcome.result == TaskResult::kCompleted) {
      const double expect = std::max(
          0.0, outcome.finish_seconds - task.deadline_seconds);
      if (std::fabs(outcome.tardiness_seconds - expect) > kEps) {
        std::ostringstream os;
        os << "task " << id << " tardiness " << outcome.tardiness_seconds
           << " disagrees with finish - deadline = " << expect;
        failf(os);
      }
    }
    if (outcome.result == TaskResult::kDependencyFailed) {
      bool has_failed_dep = false;
      for (const TxnId dep : task.dependencies) {
        if (dep < num_tasks &&
            outcomes[dep].result != TaskResult::kCompleted) {
          has_failed_dep = true;
          break;
        }
      }
      if (!has_failed_dep) {
        std::ostringstream os;
        os << "task " << id
           << " was dropped as dependency-failed but every dependency "
              "completed";
        failf(os);
      }
    }

    // Retry backoff discipline.
    for (const TaskTally::Retry& retry : t.scheduled) {
      double raw = task.retry_backoff;
      for (uint32_t i = 1; i < retry.attempt; ++i) {
        raw *= task.backoff_multiplier;
      }
      double expect = raw;
      if (options.retry_max_backoff > 0.0 &&
          raw > options.retry_max_backoff) {
        expect = options.retry_max_backoff;
        ++clamped_retries;
      }
      if (std::fabs(retry.delay - expect) >
          kEps * std::max(1.0, std::fabs(expect))) {
        std::ostringstream os;
        os << "task " << id << " retry " << retry.attempt
           << " scheduled with delay " << retry.delay << ", expected "
           << expect;
        failf(os);
      }
      const double due = retry.time + retry.delay;
      bool released = false;
      for (const TaskTally::Retry& rel : t.released) {
        if (rel.attempt == retry.attempt &&
            std::fabs(rel.time - due) <= kEps) {
          released = true;
          break;
        }
      }
      if (!released && outcome.result != TaskResult::kShed &&
          outcome.result != TaskResult::kDependencyFailed) {
        std::ostringstream os;
        os << "task " << id << " retry " << retry.attempt
           << " scheduled for " << due
           << " was never released nor cancelled by a shed/drop";
        failf(os);
      }
    }
  }

  for (TxnId id = 0; id < num_tasks; ++id) {
    if (pending_zombies[id] != 0) {
      std::ostringstream os;
      os << "task " << id << " still has " << pending_zombies[id]
         << " unresolved zombie attempts at end of trace";
      failf(os);
    }
  }
  for (size_t slot = 0; slot < occupant.size(); ++slot) {
    if (occupant[slot].has_value()) {
      std::ostringstream os;
      os << "slot " << slot << " still occupied by task "
         << occupant[slot]->txn << " at end of trace";
      failf(os);
    }
  }

  // Stats partition: every submitted task lands in exactly one bucket.
  const size_t completed = by_result[static_cast<size_t>(
      TaskResult::kCompleted)];
  const size_t dropped_retries =
      by_result[static_cast<size_t>(TaskResult::kFailed)] +
      by_result[static_cast<size_t>(TaskResult::kTimedOut)];
  const size_t shed_shutdown =
      by_result[static_cast<size_t>(TaskResult::kShed)];
  const size_t shed_admission =
      by_result[static_cast<size_t>(TaskResult::kShedAdmission)];
  const size_t dropped_dependency =
      by_result[static_cast<size_t>(TaskResult::kDependencyFailed)];
  if (stats.submitted != tasks.size()) {
    std::ostringstream os;
    os << "stats.submitted == " << stats.submitted << ", expected "
       << tasks.size();
    failf(os);
  }
  if (stats.completed != completed || stats.shed_shutdown != shed_shutdown ||
      stats.shed_admission != shed_admission ||
      stats.dropped_retries != dropped_retries ||
      stats.dropped_dependency != dropped_dependency) {
    fail("stats fate counters disagree with per-task outcomes");
  }
  if (stats.completed + stats.shed_admission + stats.shed_shutdown +
          stats.dropped_retries + stats.dropped_dependency !=
      tasks.size()) {
    fail("stats fate counters do not partition the submitted tasks");
  }
  if (stats.attempts != total_charged) {
    std::ostringstream os;
    os << "stats.attempts == " << stats.attempts << ", trace charged "
       << total_charged;
    failf(os);
  }
  if (stats.migrations != total_failovers) {
    std::ostringstream os;
    os << "stats.migrations == " << stats.migrations << ", trace has "
       << total_failovers << " failovers";
    failf(os);
  }
  if (stats.forced_aborts != total_aborts) {
    std::ostringstream os;
    os << "stats.forced_aborts == " << stats.forced_aborts
       << ", trace has " << total_aborts;
    failf(os);
  }
  if (stats.retry_storm_suppressed < clamped_retries) {
    std::ostringstream os;
    os << "stats.retry_storm_suppressed == " << stats.retry_storm_suppressed
       << " but the trace shows " << clamped_retries
       << " clamped retry delays";
    failf(os);
  }
  return result;
}

}  // namespace webtx::rt
