#include "webdb/query_parser.h"

#include <cctype>
#include <vector>

#include "common/csv.h"

namespace webtx::webdb {

namespace {

enum class TokenType {
  kIdentifier,  // table/column names and keywords
  kNumber,
  kString,  // 'quoted'
  kStar,
  kLeftParen,
  kRightParen,
  kOperator,  // = != < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    const size_t n = input_.size();
    while (i < n) {
      const char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '*') {
        tokens.push_back({TokenType::kStar, "*"});
        ++i;
      } else if (c == '(') {
        tokens.push_back({TokenType::kLeftParen, "("});
        ++i;
      } else if (c == ')') {
        tokens.push_back({TokenType::kRightParen, ")"});
        ++i;
      } else if (c == '\'') {
        const size_t close = input_.find('\'', i + 1);
        if (close == std::string::npos) {
          return Status::InvalidArgument("unterminated string literal");
        }
        tokens.push_back(
            {TokenType::kString, input_.substr(i + 1, close - i - 1)});
        i = close + 1;
      } else if (c == '=' || c == '<' || c == '>' || c == '!') {
        std::string op(1, c);
        if (i + 1 < n && input_[i + 1] == '=') {
          op += '=';
          i += 2;
        } else {
          ++i;
        }
        if (op == "!") {
          return Status::InvalidArgument("stray '!' (did you mean '!='?)");
        }
        tokens.push_back({TokenType::kOperator, op});
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '.') {
        size_t j = i + 1;
        while (j < n && (std::isdigit(static_cast<unsigned char>(
                             input_[j])) ||
                         input_[j] == '.' || input_[j] == 'e' ||
                         input_[j] == 'E' || input_[j] == '-' ||
                         input_[j] == '+')) {
          ++j;
        }
        tokens.push_back({TokenType::kNumber, input_.substr(i, j - i)});
        i = j;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i + 1;
        while (j < n && (std::isalnum(static_cast<unsigned char>(
                             input_[j])) ||
                         input_[j] == '_' || input_[j] == '.')) {
          ++j;
        }
        tokens.push_back({TokenType::kIdentifier, input_.substr(i, j - i)});
        i = j;
      } else {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "'");
      }
    }
    tokens.push_back({TokenType::kEnd, ""});
    return tokens;
  }

 private:
  const std::string& input_;
};

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QuerySpec> Parse() {
    QuerySpec spec;
    WEBTX_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    WEBTX_RETURN_NOT_OK(ParseSelect(spec));
    WEBTX_RETURN_NOT_OK(ExpectKeyword("FROM"));
    WEBTX_ASSIGN_OR_RETURN(spec.table, ExpectIdentifier("table name"));
    if (PeekKeyword("JOIN")) {
      ++pos_;
      WEBTX_ASSIGN_OR_RETURN(spec.join_table,
                             ExpectIdentifier("join table name"));
      WEBTX_RETURN_NOT_OK(ExpectKeyword("ON"));
      WEBTX_ASSIGN_OR_RETURN(spec.join_left_column,
                             ExpectIdentifier("join key column"));
      WEBTX_RETURN_NOT_OK(ExpectOperator("="));
      WEBTX_ASSIGN_OR_RETURN(spec.join_right_column,
                             ExpectIdentifier("join key column"));
    }
    if (PeekKeyword("WHERE")) {
      ++pos_;
      while (true) {
        WEBTX_RETURN_NOT_OK(ParseCondition(spec));
        if (!PeekKeyword("AND")) break;
        ++pos_;
      }
    }
    if (Peek().type != TokenType::kEnd) {
      return Status::InvalidArgument("unexpected trailing token '" +
                                     Peek().text + "'");
    }
    return spec;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }

  bool PeekKeyword(const std::string& keyword) const {
    return Peek().type == TokenType::kIdentifier &&
           ToUpper(Peek().text) == keyword;
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (!PeekKeyword(keyword)) {
      return Status::InvalidArgument("expected " + keyword + ", got '" +
                                     Peek().text + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected " + what + ", got '" +
                                     Peek().text + "'");
    }
    return tokens_[pos_++].text;
  }

  Status ExpectOperator(const std::string& op) {
    if (Peek().type != TokenType::kOperator || Peek().text != op) {
      return Status::InvalidArgument("expected '" + op + "', got '" +
                                     Peek().text + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ParseSelect(QuerySpec& spec) {
    if (Peek().type == TokenType::kStar) {
      ++pos_;
      return Status::OK();
    }
    WEBTX_ASSIGN_OR_RETURN(const std::string fn,
                           ExpectIdentifier("aggregate function or *"));
    const std::string fn_upper = ToUpper(fn);
    if (fn_upper == "SUM") {
      spec.aggregate = AggregateFn::kSum;
    } else if (fn_upper == "AVG") {
      spec.aggregate = AggregateFn::kAvg;
    } else if (fn_upper == "MIN") {
      spec.aggregate = AggregateFn::kMin;
    } else if (fn_upper == "MAX") {
      spec.aggregate = AggregateFn::kMax;
    } else if (fn_upper == "COUNT") {
      spec.aggregate = AggregateFn::kCount;
    } else {
      return Status::InvalidArgument("unknown aggregate '" + fn + "'");
    }
    if (Peek().type != TokenType::kLeftParen) {
      return Status::InvalidArgument("expected '(' after " + fn_upper);
    }
    ++pos_;
    if (spec.aggregate == AggregateFn::kCount &&
        Peek().type == TokenType::kStar) {
      ++pos_;
    } else {
      WEBTX_ASSIGN_OR_RETURN(spec.aggregate_column,
                             ExpectIdentifier("aggregate column"));
    }
    if (Peek().type != TokenType::kRightParen) {
      return Status::InvalidArgument("expected ')' in aggregate");
    }
    ++pos_;
    return Status::OK();
  }

  Status ParseCondition(QuerySpec& spec) {
    WEBTX_ASSIGN_OR_RETURN(std::string column,
                           ExpectIdentifier("filter column"));
    if (Peek().type != TokenType::kOperator) {
      return Status::InvalidArgument("expected comparison after '" + column +
                                     "'");
    }
    const std::string op_text = tokens_[pos_++].text;
    CompareOp op;
    if (op_text == "=") {
      op = CompareOp::kEq;
    } else if (op_text == "!=") {
      op = CompareOp::kNe;
    } else if (op_text == "<") {
      op = CompareOp::kLt;
    } else if (op_text == "<=") {
      op = CompareOp::kLe;
    } else if (op_text == ">") {
      op = CompareOp::kGt;
    } else if (op_text == ">=") {
      op = CompareOp::kGe;
    } else {
      return Status::InvalidArgument("unknown operator '" + op_text + "'");
    }

    Value literal;
    if (Peek().type == TokenType::kString) {
      literal = tokens_[pos_++].text;
    } else if (Peek().type == TokenType::kNumber) {
      WEBTX_ASSIGN_OR_RETURN(const double number,
                             ParseDouble(tokens_[pos_++].text));
      literal = number;
    } else {
      return Status::InvalidArgument("expected literal, got '" +
                                     Peek().text + "'");
    }

    // "<join_table>.<column>" routes the condition to the build side.
    bool join_side = false;
    if (!spec.join_table.empty() &&
        column.rfind(spec.join_table + ".", 0) == 0) {
      column = column.substr(spec.join_table.size() + 1);
      join_side = true;
    }
    Filter filter{std::move(column), op, std::move(literal)};
    if (join_side) {
      spec.join_filters.push_back(std::move(filter));
    } else {
      spec.filters.push_back(std::move(filter));
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<QuerySpec> ParseQuery(const std::string& text) {
  Lexer lexer(text);
  WEBTX_ASSIGN_OR_RETURN(auto tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace webtx::webdb
