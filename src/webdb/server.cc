#include "webdb/server.h"

#include <utility>

#include "common/check.h"

namespace webtx::webdb {

PageRequestServer::PageRequestServer(const InMemoryDatabase* db,
                                     Profiler* profiler, CostModel cost_model,
                                     FragmentCache* cache)
    : db_(db), profiler_(profiler), engine_(db, cost_model), cache_(cache) {
  WEBTX_CHECK(db_ != nullptr);
  WEBTX_CHECK(profiler_ != nullptr);
}

Result<std::vector<TxnId>> PageRequestServer::Submit(const PageTemplate& page,
                                                     SubscriptionTier tier,
                                                     SimTime arrival) {
  WEBTX_RETURN_NOT_OK(page.Validate());
  if (arrival < 0.0) {
    return Status::InvalidArgument("request arrival must be non-negative");
  }
  const size_t request_index = requests_.size();
  requests_.push_back(RequestRecord{page.name, tier, arrival});

  const double tier_multiplier = TierWeightMultiplier(tier);
  const TxnId first_id = static_cast<TxnId>(workload_.size());
  std::vector<TxnId> ids;
  ids.reserve(page.fragments.size());

  for (size_t f = 0; f < page.fragments.size(); ++f) {
    const FragmentTemplate& frag = page.fragments[f];

    // Length: a fresh cached materialization is a cheap lookup;
    // otherwise the profiled estimate for this query class, falling back
    // to the engine's modeled cost for an unseen class.
    double length;
    if (cache_ != nullptr && cache_->Fresh(frag.query)) {
      length = FragmentCache::kHitCost;
    } else {
      WEBTX_ASSIGN_OR_RETURN(const QueryResult probe,
                             engine_.Execute(frag.query));
      length = profiler_->Estimate(frag.query.name, /*fallback=*/probe.cost);
    }

    TransactionSpec txn;
    txn.id = static_cast<TxnId>(workload_.size());
    txn.arrival = arrival;
    txn.length = length;
    txn.deadline = arrival + frag.sla_offset;
    txn.weight = frag.base_weight * tier_multiplier;
    for (const size_t dep : frag.depends_on) {
      txn.dependencies.push_back(first_id + static_cast<TxnId>(dep));
    }
    ids.push_back(txn.id);
    workload_.push_back(std::move(txn));
    refs_.push_back(FragmentRef{request_index, f, page.name, frag.name,
                                frag.query.name});
    queries_.push_back(frag.query);
  }
  return ids;
}

const PageRequestServer::FragmentRef& PageRequestServer::RefOf(
    TxnId id) const {
  WEBTX_CHECK_LT(id, refs_.size());
  return refs_[id];
}

Result<QueryResult> PageRequestServer::Materialize(TxnId id) {
  if (id >= queries_.size()) {
    return Status::OutOfRange("no transaction " + std::to_string(id));
  }
  const QuerySpec& query = queries_[id];
  if (cache_ != nullptr) {
    if (const QueryResult* cached = cache_->Lookup(query)) {
      QueryResult result = *cached;
      result.cost = FragmentCache::kHitCost;
      return result;
    }
  }
  WEBTX_ASSIGN_OR_RETURN(QueryResult result, engine_.Execute(query));
  profiler_->Observe(query.name, result.cost);
  if (cache_ != nullptr) cache_->Store(query, result);
  return result;
}

Status PageRequestServer::MaterializeAll() {
  for (TxnId id = 0; id < workload_.size(); ++id) {
    WEBTX_ASSIGN_OR_RETURN(const QueryResult unused, Materialize(id));
    (void)unused;
  }
  return Status::OK();
}

}  // namespace webtx::webdb
