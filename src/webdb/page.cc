#include "webdb/page.h"

#include <set>

namespace webtx::webdb {

Status PageTemplate::Validate() const {
  if (fragments.empty()) {
    return Status::InvalidArgument("page " + name + " has no fragments");
  }
  std::set<std::string> names;
  for (size_t i = 0; i < fragments.size(); ++i) {
    const FragmentTemplate& f = fragments[i];
    if (!names.insert(f.name).second) {
      return Status::InvalidArgument("page " + name +
                                     " has duplicate fragment '" + f.name +
                                     "'");
    }
    if (f.sla_offset <= 0.0) {
      return Status::InvalidArgument("fragment '" + f.name +
                                     "' needs a positive SLA offset");
    }
    if (f.base_weight <= 0.0) {
      return Status::InvalidArgument("fragment '" + f.name +
                                     "' needs a positive base weight");
    }
    for (const size_t dep : f.depends_on) {
      if (dep >= i) {
        return Status::InvalidArgument(
            "fragment '" + f.name +
            "' may only depend on earlier fragments (got index " +
            std::to_string(dep) + ")");
      }
    }
  }
  return Status::OK();
}

double TierWeightMultiplier(SubscriptionTier tier) {
  switch (tier) {
    case SubscriptionTier::kBronze:
      return 1.0;
    case SubscriptionTier::kSilver:
      return 2.0;
    case SubscriptionTier::kGold:
      return 4.0;
  }
  return 1.0;
}

const char* TierName(SubscriptionTier tier) {
  switch (tier) {
    case SubscriptionTier::kBronze:
      return "bronze";
    case SubscriptionTier::kSilver:
      return "silver";
    case SubscriptionTier::kGold:
      return "gold";
  }
  return "unknown";
}

}  // namespace webtx::webdb
