#ifndef WEBTX_WEBDB_QUERY_PARSER_H_
#define WEBTX_WEBDB_QUERY_PARSER_H_

#include <string>

#include "common/result.h"
#include "webdb/query.h"

namespace webtx::webdb {

/// Parses a small SQL-like surface syntax into a QuerySpec, so page
/// templates can declare fragments as readable strings:
///
///   SELECT * FROM stocks
///   SELECT * FROM stocks WHERE price >= 100 AND symbol != 'IBM'
///   SELECT * FROM stocks JOIN portfolio ON symbol = symbol
///       WHERE portfolio.user = 'alice'
///   SELECT SUM(price) FROM stocks JOIN portfolio ON symbol = symbol
///   SELECT COUNT(*) FROM stocks WHERE change_pct >= 5
///
/// Grammar (case-insensitive keywords; identifiers are [A-Za-z_][\w.]*;
/// string literals use single quotes, numbers are doubles):
///
///   query  := SELECT select FROM ident [join] [where]
///   select := '*' | fn '(' ident ')' | COUNT '(' '*' ')'
///   fn     := SUM | AVG | MIN | MAX | COUNT
///   join   := JOIN ident ON ident '=' ident
///   where  := WHERE cond (AND cond)*
///   cond   := ident op literal
///   op     := '=' | '!=' | '<' | '<=' | '>' | '>='
///
/// WHERE conditions whose column is prefixed with the join table's name
/// ("portfolio.user") apply to the join (build) side; all others apply
/// to the base table. The returned spec's `name` is left empty — set it
/// to the fragment's query class before use.
Result<QuerySpec> ParseQuery(const std::string& text);

}  // namespace webtx::webdb

#endif  // WEBTX_WEBDB_QUERY_PARSER_H_
