#include "webdb/database.h"

#include <sstream>
#include <utility>

namespace webtx::webdb {

std::string ValueToString(const Value& v) {
  if (const auto* d = std::get_if<double>(&v)) {
    std::ostringstream os;
    os << *d;
    return os.str();
  }
  return std::get<std::string>(v);
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

Result<size_t> Table::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == column) return i;
  }
  return Status::NotFound("table " + name_ + " has no column '" + column +
                          "'");
}

Status Table::Insert(Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.size()) + " for table " + name_);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!ValueMatchesType(row[i], schema_[i].type)) {
      return Status::InvalidArgument("type mismatch in column '" +
                                     schema_[i].name + "' of table " + name_);
    }
  }
  rows_.push_back(std::move(row));
  ++version_;
  return Status::OK();
}

Status Table::UpdateCell(size_t row_index, const std::string& column,
                         Value v) {
  if (row_index >= rows_.size()) {
    return Status::OutOfRange("row " + std::to_string(row_index) +
                              " out of range for table " + name_);
  }
  WEBTX_ASSIGN_OR_RETURN(const size_t col, ColumnIndex(column));
  if (!ValueMatchesType(v, schema_[col].type)) {
    return Status::InvalidArgument("type mismatch updating column '" + column +
                                   "' of table " + name_);
  }
  rows_[row_index][col] = std::move(v);
  ++version_;
  return Status::OK();
}

Status InMemoryDatabase::CreateTable(const std::string& name, Schema schema) {
  if (schema.empty()) {
    return Status::InvalidArgument("table " + name + " needs >= 1 column");
  }
  if (HasTable(name)) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  tables_.emplace(name, Table(name, std::move(schema)));
  return Status::OK();
}

Result<Table*> InMemoryDatabase::GetTable(const std::string& name) {
  const auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table '" + name + "'");
  return &it->second;
}

Result<const Table*> InMemoryDatabase::GetTable(const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table '" + name + "'");
  return &it->second;
}

}  // namespace webtx::webdb
