#ifndef WEBTX_WEBDB_CACHE_H_
#define WEBTX_WEBDB_CACHE_H_

#include <map>
#include <string>
#include <vector>

#include "webdb/database.h"
#include "webdb/query.h"

namespace webtx::webdb {

/// Materialized-fragment cache (the WebView materialization of the
/// paper's Sec. II-A / ref. [8]): stores query results keyed by query
/// class, invalidated by table-version changes. A cache hit turns a
/// fragment materialization into a cheap lookup, which is exactly why
/// the paper notes that "transactions' lengths are adjusted accordingly"
/// — PageRequestServer consults this cache when estimating lengths.
class FragmentCache {
 public:
  /// `db` must outlive the cache.
  explicit FragmentCache(const InMemoryDatabase* db);

  FragmentCache(const FragmentCache&) = delete;
  FragmentCache& operator=(const FragmentCache&) = delete;

  /// Returns the cached result for `query` if present AND every table it
  /// reads is unchanged since the entry was stored; nullptr otherwise.
  const QueryResult* Lookup(const QuerySpec& query);

  /// Stores a freshly materialized result for `query`.
  void Store(const QuerySpec& query, QueryResult result);

  /// True when Lookup would hit (non-mutating convenience).
  bool Fresh(const QuerySpec& query) const;

  /// Drops every entry.
  void Clear() { entries_.clear(); }

  size_t size() const { return entries_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

  /// Modeled cost of serving a fragment from cache, in scheduler time
  /// units (a fraction of any real query's fixed cost).
  static constexpr double kHitCost = 0.1;

 private:
  struct Entry {
    QueryResult result;
    // (table name, version at store time) for every table read.
    std::vector<std::pair<std::string, uint64_t>> snapshot;
  };

  bool SnapshotIsCurrent(const Entry& entry) const;
  std::vector<std::pair<std::string, uint64_t>> SnapshotFor(
      const QuerySpec& query) const;

  const InMemoryDatabase* db_;
  std::map<std::string, Entry> entries_;  // keyed by query class name
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace webtx::webdb

#endif  // WEBTX_WEBDB_CACHE_H_
