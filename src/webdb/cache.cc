#include "webdb/cache.h"

#include <utility>

#include "common/check.h"

namespace webtx::webdb {

FragmentCache::FragmentCache(const InMemoryDatabase* db) : db_(db) {
  WEBTX_CHECK(db_ != nullptr);
}

std::vector<std::pair<std::string, uint64_t>> FragmentCache::SnapshotFor(
    const QuerySpec& query) const {
  std::vector<std::pair<std::string, uint64_t>> snapshot;
  for (const std::string& table_name : {query.table, query.join_table}) {
    if (table_name.empty()) continue;
    auto table = db_->GetTable(table_name);
    // Unknown tables yield version 0; the query itself will fail later.
    snapshot.emplace_back(table_name,
                          table.ok() ? table.ValueOrDie()->version() : 0);
  }
  return snapshot;
}

bool FragmentCache::SnapshotIsCurrent(const Entry& entry) const {
  for (const auto& [table_name, version] : entry.snapshot) {
    auto table = db_->GetTable(table_name);
    if (!table.ok() || table.ValueOrDie()->version() != version) {
      return false;
    }
  }
  return true;
}

const QueryResult* FragmentCache::Lookup(const QuerySpec& query) {
  const auto it = entries_.find(query.name);
  if (it == entries_.end() || !SnapshotIsCurrent(it->second)) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second.result;
}

void FragmentCache::Store(const QuerySpec& query, QueryResult result) {
  Entry entry;
  entry.result = std::move(result);
  entry.snapshot = SnapshotFor(query);
  entries_[query.name] = std::move(entry);
}

bool FragmentCache::Fresh(const QuerySpec& query) const {
  const auto it = entries_.find(query.name);
  return it != entries_.end() && SnapshotIsCurrent(it->second);
}

}  // namespace webtx::webdb
