#include "webdb/query.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/check.h"

namespace webtx::webdb {

namespace {

bool CompareValues(const Value& lhs, CompareOp op, const Value& rhs) {
  // Mixed-type comparisons are rejected earlier (schema typing); variant's
  // ordering handles both alternatives consistently here.
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

/// Resolves filters to column indices and validates literal types.
Result<std::vector<std::pair<size_t, const Filter*>>> ResolveFilters(
    const Table& table, const std::vector<Filter>& filters) {
  std::vector<std::pair<size_t, const Filter*>> resolved;
  resolved.reserve(filters.size());
  for (const Filter& f : filters) {
    WEBTX_ASSIGN_OR_RETURN(const size_t col, table.ColumnIndex(f.column));
    if (!ValueMatchesType(f.literal, table.schema()[col].type)) {
      return Status::InvalidArgument("filter literal type mismatch on " +
                                     table.name() + "." + f.column);
    }
    resolved.emplace_back(col, &f);
  }
  return resolved;
}

bool RowPasses(const Row& row,
               const std::vector<std::pair<size_t, const Filter*>>& filters) {
  for (const auto& [col, f] : filters) {
    if (!CompareValues(row[col], f->op, f->literal)) return false;
  }
  return true;
}

Result<size_t> FindOutputColumn(const Schema& schema,
                                const std::string& name) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i].name == name) return i;
  }
  return Status::NotFound("no output column '" + name + "'");
}

}  // namespace

QueryEngine::QueryEngine(const InMemoryDatabase* db, CostModel model)
    : db_(db), model_(model) {
  WEBTX_CHECK(db_ != nullptr);
}

Result<QueryResult> QueryEngine::Execute(const QuerySpec& query) const {
  WEBTX_ASSIGN_OR_RETURN(const Table* base, db_->GetTable(query.table));
  WEBTX_ASSIGN_OR_RETURN(auto base_filters,
                         ResolveFilters(*base, query.filters));

  QueryResult result;
  result.cost = model_.fixed;

  // 1. Filtered scan of the base table.
  result.schema = base->schema();
  result.cost += model_.scan_per_row * static_cast<double>(base->num_rows());
  for (const Row& row : base->rows()) {
    if (RowPasses(row, base_filters)) result.rows.push_back(row);
  }

  // 2. Optional equi hash-join.
  if (!query.join_table.empty()) {
    WEBTX_ASSIGN_OR_RETURN(const Table* right,
                           db_->GetTable(query.join_table));
    WEBTX_ASSIGN_OR_RETURN(auto right_filters,
                           ResolveFilters(*right, query.join_filters));
    WEBTX_ASSIGN_OR_RETURN(const size_t left_key,
                           FindOutputColumn(result.schema,
                                            query.join_left_column));
    WEBTX_ASSIGN_OR_RETURN(const size_t right_key,
                           right->ColumnIndex(query.join_right_column));
    if (result.schema[left_key].type != right->schema()[right_key].type) {
      return Status::InvalidArgument("join key type mismatch between " +
                                     query.table + "." +
                                     query.join_left_column + " and " +
                                     query.join_table + "." +
                                     query.join_right_column);
    }

    // Build side: the (filtered) right table.
    std::map<Value, std::vector<const Row*>> hash;
    size_t built = 0;
    for (const Row& row : right->rows()) {
      if (!RowPasses(row, right_filters)) continue;
      hash[row[right_key]].push_back(&row);
      ++built;
    }
    result.cost +=
        model_.scan_per_row * static_cast<double>(right->num_rows()) +
        model_.build_per_row * static_cast<double>(built);

    // Output schema: left columns, then right columns (right-side names
    // prefixed with the table name on collision).
    Schema joined_schema = result.schema;
    for (const ColumnDef& col : right->schema()) {
      ColumnDef out = col;
      if (FindOutputColumn(result.schema, col.name).ok()) {
        out.name = query.join_table + "." + col.name;
      }
      joined_schema.push_back(std::move(out));
    }

    std::vector<Row> joined;
    result.cost +=
        model_.probe_per_row * static_cast<double>(result.rows.size());
    for (const Row& left_row : result.rows) {
      const auto it = hash.find(left_row[left_key]);
      if (it == hash.end()) continue;
      for (const Row* right_row : it->second) {
        Row out = left_row;
        out.insert(out.end(), right_row->begin(), right_row->end());
        joined.push_back(std::move(out));
      }
    }
    result.schema = std::move(joined_schema);
    result.rows = std::move(joined);
  }

  // 3. Optional aggregate folding the result to one row.
  if (query.aggregate != AggregateFn::kNone) {
    result.cost +=
        model_.agg_per_row * static_cast<double>(result.rows.size());
    double acc = 0.0;
    size_t count = result.rows.size();
    if (query.aggregate != AggregateFn::kCount) {
      WEBTX_ASSIGN_OR_RETURN(const size_t col,
                             FindOutputColumn(result.schema,
                                              query.aggregate_column));
      if (result.schema[col].type != ColumnType::kNumber) {
        return Status::InvalidArgument("aggregate over non-numeric column '" +
                                       query.aggregate_column + "'");
      }
      bool first = true;
      for (const Row& row : result.rows) {
        const double v = std::get<double>(row[col]);
        switch (query.aggregate) {
          case AggregateFn::kSum:
          case AggregateFn::kAvg:
            acc += v;
            break;
          case AggregateFn::kMin:
            acc = first ? v : std::min(acc, v);
            break;
          case AggregateFn::kMax:
            acc = first ? v : std::max(acc, v);
            break;
          case AggregateFn::kCount:
          case AggregateFn::kNone:
            break;
        }
        first = false;
      }
      if (query.aggregate == AggregateFn::kAvg && count > 0) {
        acc /= static_cast<double>(count);
      }
    }
    const double out = query.aggregate == AggregateFn::kCount
                           ? static_cast<double>(count)
                           : acc;
    result.schema = {
        ColumnDef{query.name.empty() ? "agg" : query.name,
                  ColumnType::kNumber}};
    result.rows = {Row{Value{out}}};
  }

  result.cost += model_.emit_per_row * static_cast<double>(result.rows.size());
  return result;
}

}  // namespace webtx::webdb
