#ifndef WEBTX_WEBDB_DATABASE_H_
#define WEBTX_WEBDB_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "webdb/value.h"

namespace webtx::webdb {

/// One in-memory relation.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// Monotone modification counter; bumped by every Insert/UpdateCell.
  /// Caches key their entries on this to detect staleness.
  uint64_t version() const { return version_; }

  /// Index of a column by name.
  Result<size_t> ColumnIndex(const std::string& column) const;

  /// Appends one validated row (arity + types must match the schema).
  Status Insert(Row row);

  /// Replaces the value at (row_index, column). Used by the examples to
  /// model live updates (stock ticks) between page requests.
  Status UpdateCell(size_t row_index, const std::string& column, Value v);

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  uint64_t version_ = 0;
};

/// The single back-end database of the paper's system model (Sec. II-A):
/// all fragments of every dynamic page are materialized by transactions
/// against this store.
class InMemoryDatabase {
 public:
  InMemoryDatabase() = default;

  InMemoryDatabase(const InMemoryDatabase&) = delete;
  InMemoryDatabase& operator=(const InMemoryDatabase&) = delete;
  InMemoryDatabase(InMemoryDatabase&&) = default;
  InMemoryDatabase& operator=(InMemoryDatabase&&) = default;

  /// Creates an empty table; fails on duplicate names or empty schema.
  Status CreateTable(const std::string& name, Schema schema);

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace webtx::webdb

#endif  // WEBTX_WEBDB_DATABASE_H_
