#ifndef WEBTX_WEBDB_VALUE_H_
#define WEBTX_WEBDB_VALUE_H_

#include <string>
#include <variant>
#include <vector>

namespace webtx::webdb {

/// Column type of the in-memory backend database.
enum class ColumnType {
  kNumber,  // double
  kText,    // std::string
};

/// A single cell value.
using Value = std::variant<double, std::string>;

/// A tuple; fields positionally match the table schema.
using Row = std::vector<Value>;

/// One column declaration.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kNumber;
};

/// An ordered list of columns.
using Schema = std::vector<ColumnDef>;

/// True when `v` holds the representation `type` requires.
inline bool ValueMatchesType(const Value& v, ColumnType type) {
  return (type == ColumnType::kNumber)
             ? std::holds_alternative<double>(v)
             : std::holds_alternative<std::string>(v);
}

/// Renders a value for debug output.
std::string ValueToString(const Value& v);

}  // namespace webtx::webdb

#endif  // WEBTX_WEBDB_VALUE_H_
