#ifndef WEBTX_WEBDB_PAGE_H_
#define WEBTX_WEBDB_PAGE_H_

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "webdb/query.h"

namespace webtx::webdb {

/// One content fragment of a dynamic page (paper Sec. II-A): the query
/// that materializes it, its SLA, importance, and which sibling fragments
/// must be materialized first.
struct FragmentTemplate {
  /// Fragment name, unique within the page.
  std::string name;
  /// Query executed against the back-end database.
  QuerySpec query;
  /// Soft deadline relative to the page request time (the fragment-level
  /// SLA of Sec. I). Absolute deadline = request arrival + sla_offset.
  SimTime sla_offset = 10.0;
  /// Fragment importance; the final transaction weight is
  /// base_weight * subscription-tier multiplier.
  double base_weight = 1.0;
  /// Indices (within the page) of fragments whose output feeds this one —
  /// the dependency list l_i.
  std::vector<size_t> depends_on;
};

/// A dynamic web page layout: an ordered set of interdependent fragments.
struct PageTemplate {
  std::string name;
  std::vector<FragmentTemplate> fragments;

  /// Checks fragment-name uniqueness and that depends_on indices are
  /// in-range, non-self and acyclic (indices must reference earlier
  /// fragments, which makes cycles unrepresentable).
  Status Validate() const;
};

/// Subscription tiers of the paper's application scenario (Sec. II-B):
/// "gold, silver, or bronze, corresponding to how much money they paid".
enum class SubscriptionTier { kBronze, kSilver, kGold };

/// Weight multiplier applied to every fragment of a user's page request.
double TierWeightMultiplier(SubscriptionTier tier);

const char* TierName(SubscriptionTier tier);

}  // namespace webtx::webdb

#endif  // WEBTX_WEBDB_PAGE_H_
