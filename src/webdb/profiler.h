#ifndef WEBTX_WEBDB_PROFILER_H_
#define WEBTX_WEBDB_PROFILER_H_

#include <map>
#include <string>

#include "common/check.h"

namespace webtx::webdb {

/// Per-query-class execution-time estimator. The paper's scheduler relies
/// on length estimates "computed by the system based on previous
/// statistics and profiles of transaction execution" (Sec. II-A); this
/// class is that profile store: an exponentially weighted moving average
/// of observed costs per query class.
class Profiler {
 public:
  /// `smoothing` is the EWMA weight of a new observation in (0, 1].
  explicit Profiler(double smoothing = 0.25) : smoothing_(smoothing) {
    WEBTX_CHECK(smoothing > 0.0 && smoothing <= 1.0);
  }

  /// Folds an observed execution cost into the class estimate.
  void Observe(const std::string& query_class, double cost);

  /// Current estimate for the class, or `fallback` when the class has
  /// never been observed (a fresh system has no profile yet).
  double Estimate(const std::string& query_class, double fallback) const;

  bool HasProfile(const std::string& query_class) const {
    return estimates_.count(query_class) > 0;
  }
  size_t num_classes() const { return estimates_.size(); }
  size_t ObservationCount(const std::string& query_class) const;

 private:
  struct ClassStats {
    double ewma = 0.0;
    size_t observations = 0;
  };

  double smoothing_;
  std::map<std::string, ClassStats> estimates_;
};

}  // namespace webtx::webdb

#endif  // WEBTX_WEBDB_PROFILER_H_
