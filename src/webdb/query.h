#ifndef WEBTX_WEBDB_QUERY_H_
#define WEBTX_WEBDB_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "webdb/database.h"
#include "webdb/value.h"

namespace webtx::webdb {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// One predicate `column <op> literal`; numbers compare numerically,
/// strings lexicographically.
struct Filter {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;
};

enum class AggregateFn { kNone, kCount, kSum, kAvg, kMin, kMax };

/// A declarative web-transaction query: filtered scan of a base table,
/// optionally hash-joined with a second filtered table, optionally folded
/// by one aggregate. This tiny algebra covers the paper's Sec. II-B
/// application scenario (list stocks; join with a portfolio; aggregate a
/// portfolio's value; filter for alerts).
struct QuerySpec {
  /// Query-class label used by the Profiler to estimate lengths.
  std::string name;

  std::string table;
  std::vector<Filter> filters;  // ANDed, applied to `table`

  /// Equi-join configuration; empty join_table = no join.
  std::string join_table;
  std::string join_left_column;   // key in `table`
  std::string join_right_column;  // key in `join_table`
  std::vector<Filter> join_filters;  // ANDed, applied to `join_table`

  AggregateFn aggregate = AggregateFn::kNone;
  std::string aggregate_column;  // ignored for kCount
};

/// Rows produced plus the simulated processing cost in scheduler time
/// units.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  double cost = 0.0;
};

/// Linear cost model calibrated so typical example queries land in the
/// paper's 1-50 time-unit length range.
struct CostModel {
  double fixed = 0.5;            // parse/plan/connection overhead
  double scan_per_row = 0.002;   // per base/probe row scanned
  double build_per_row = 0.004;  // per hash-table build row
  double probe_per_row = 0.003;  // per probe into the hash table
  double agg_per_row = 0.001;    // per aggregated row
  double emit_per_row = 0.002;   // per output row materialized to HTML
};

/// Executes QuerySpecs against an InMemoryDatabase and reports both the
/// result and its modeled cost.
class QueryEngine {
 public:
  /// `db` must outlive the engine.
  explicit QueryEngine(const InMemoryDatabase* db, CostModel model = {});

  Result<QueryResult> Execute(const QuerySpec& query) const;

  const CostModel& cost_model() const { return model_; }

 private:
  const InMemoryDatabase* db_;
  CostModel model_;
};

}  // namespace webtx::webdb

#endif  // WEBTX_WEBDB_QUERY_H_
