#include "webdb/profiler.h"

namespace webtx::webdb {

void Profiler::Observe(const std::string& query_class, double cost) {
  auto [it, inserted] = estimates_.try_emplace(query_class);
  ClassStats& stats = it->second;
  if (inserted || stats.observations == 0) {
    stats.ewma = cost;
  } else {
    stats.ewma = smoothing_ * cost + (1.0 - smoothing_) * stats.ewma;
  }
  ++stats.observations;
}

double Profiler::Estimate(const std::string& query_class,
                          double fallback) const {
  const auto it = estimates_.find(query_class);
  if (it == estimates_.end()) return fallback;
  return it->second.ewma;
}

size_t Profiler::ObservationCount(const std::string& query_class) const {
  const auto it = estimates_.find(query_class);
  return it == estimates_.end() ? 0 : it->second.observations;
}

}  // namespace webtx::webdb
