#ifndef WEBTX_WEBDB_SERVER_H_
#define WEBTX_WEBDB_SERVER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "txn/transaction.h"
#include "webdb/cache.h"
#include "webdb/page.h"
#include "webdb/profiler.h"
#include "webdb/query.h"

namespace webtx::webdb {

/// Front end of the dynamic-content system: turns incoming page requests
/// into the transaction workload the back-end scheduler sees.
///
/// Each page request expands into one transaction per fragment, wired per
/// the page's dependency structure — exactly the paper's model where "user-
/// requested web pages are dynamically created by executing a number of
/// database queries or web transactions" forming workflows. Deadlines come
/// from fragment SLAs, weights from fragment importance scaled by the
/// user's subscription tier, and lengths from the Profiler (falling back
/// to the query engine's modeled cost when no profile exists yet).
///
/// Typical use:
///   PageRequestServer server(&db, &profiler);
///   server.Submit(stock_page, SubscriptionTier::kGold, /*arrival=*/0.0);
///   ... more requests ...
///   auto sim = Simulator::Create(server.workload());
///   RunResult r = sim.ValueOrDie().Run(asets_star);
///   server.MaterializeAll();  // run queries for real, train the profiler
class PageRequestServer {
 public:
  /// `db` and `profiler` must outlive the server. `cache` is optional
  /// (nullptr = no fragment caching); when present, fragments whose
  /// cached materialization is still fresh get kHitCost as their length
  /// ("transactions' lengths are adjusted accordingly", Sec. II-A) and
  /// Materialize serves them from the cache.
  PageRequestServer(const InMemoryDatabase* db, Profiler* profiler,
                    CostModel cost_model = {},
                    FragmentCache* cache = nullptr);

  /// Expands one request into transactions appended to the workload.
  /// Returns the ids of the new transactions (fragment order).
  Result<std::vector<TxnId>> Submit(const PageTemplate& page,
                                    SubscriptionTier tier, SimTime arrival);

  /// The accumulated workload, ready for Simulator::Create.
  const std::vector<TransactionSpec>& workload() const { return workload_; }
  size_t num_requests() const { return requests_.size(); }

  /// Where a transaction came from.
  struct FragmentRef {
    size_t request = 0;
    size_t fragment = 0;
    std::string page_name;
    std::string fragment_name;
    std::string query_class;
  };
  const FragmentRef& RefOf(TxnId id) const;

  /// Executes the query behind transaction `id` against the live database
  /// and feeds the observed cost to the profiler.
  Result<QueryResult> Materialize(TxnId id);

  /// Materializes every submitted transaction (profiler training pass).
  Status MaterializeAll();

 private:
  const InMemoryDatabase* db_;
  Profiler* profiler_;
  QueryEngine engine_;
  FragmentCache* cache_;  // may be nullptr

  struct RequestRecord {
    std::string page_name;
    SubscriptionTier tier;
    SimTime arrival;
  };
  std::vector<RequestRecord> requests_;
  std::vector<TransactionSpec> workload_;
  std::vector<FragmentRef> refs_;      // parallel to workload_
  std::vector<QuerySpec> queries_;     // parallel to workload_
};

}  // namespace webtx::webdb

#endif  // WEBTX_WEBDB_SERVER_H_
