#include "txn/dependency_graph.h"

#include <algorithm>
#include <deque>
#include <string>

namespace webtx {

Result<DependencyGraph> DependencyGraph::Build(
    const std::vector<TransactionSpec>& txns) {
  const size_t n = txns.size();
  DependencyGraph g;
  g.preds_.resize(n);
  g.succs_.resize(n);

  for (size_t i = 0; i < n; ++i) {
    if (txns[i].id != static_cast<TxnId>(i)) {
      return Status::InvalidArgument(
          "transaction ids must be dense 0..N-1; slot " + std::to_string(i) +
          " holds id " + std::to_string(txns[i].id));
    }
    std::vector<TxnId> deps = txns[i].dependencies;
    std::sort(deps.begin(), deps.end());
    for (size_t k = 0; k < deps.size(); ++k) {
      const TxnId d = deps[k];
      if (d >= n) {
        return Status::InvalidArgument("T" + std::to_string(i) +
                                       " depends on unknown transaction " +
                                       std::to_string(d));
      }
      if (d == static_cast<TxnId>(i)) {
        return Status::InvalidArgument("T" + std::to_string(i) +
                                       " depends on itself");
      }
      if (k > 0 && deps[k] == deps[k - 1]) {
        return Status::InvalidArgument("T" + std::to_string(i) +
                                       " lists duplicate dependency " +
                                       std::to_string(d));
      }
    }
    g.preds_[i] = std::move(deps);
    for (const TxnId d : g.preds_[i]) {
      g.succs_[d].push_back(static_cast<TxnId>(i));
      ++g.num_edges_;
    }
  }
  for (auto& s : g.succs_) std::sort(s.begin(), s.end());

  // Kahn's algorithm: topological order doubling as cycle detection.
  std::vector<size_t> indegree(n);
  std::deque<TxnId> frontier;
  for (size_t i = 0; i < n; ++i) {
    indegree[i] = g.preds_[i].size();
    if (indegree[i] == 0) frontier.push_back(static_cast<TxnId>(i));
  }
  g.topo_.reserve(n);
  while (!frontier.empty()) {
    const TxnId u = frontier.front();
    frontier.pop_front();
    g.topo_.push_back(u);
    for (const TxnId v : g.succs_[u]) {
      if (--indegree[v] == 0) frontier.push_back(v);
    }
  }
  if (g.topo_.size() != n) {
    return Status::InvalidArgument(
        "dependency lists contain a cycle; workflows must be acyclic");
  }
  return g;
}

std::vector<TxnId> DependencyGraph::Roots() const {
  std::vector<TxnId> roots;
  for (size_t i = 0; i < succs_.size(); ++i) {
    if (succs_[i].empty()) roots.push_back(static_cast<TxnId>(i));
  }
  return roots;
}

}  // namespace webtx
