#include "txn/dependency_graph.h"

#include <algorithm>
#include <string>

namespace webtx {

Result<DependencyGraph> DependencyGraph::Build(
    const std::vector<TransactionSpec>& txns) {
  DependencyGraph g;
  Status status = g.Rebuild(txns);
  if (!status.ok()) return status;
  return g;
}

Status DependencyGraph::Rebuild(const std::vector<TransactionSpec>& txns) {
  const size_t n = txns.size();
  preds_.resize(n);
  succs_.resize(n);
  for (auto& s : succs_) s.clear();
  num_edges_ = 0;

  for (size_t i = 0; i < n; ++i) {
    if (txns[i].id != static_cast<TxnId>(i)) {
      return Status::InvalidArgument(
          "transaction ids must be dense 0..N-1; slot " + std::to_string(i) +
          " holds id " + std::to_string(txns[i].id));
    }
    std::vector<TxnId>& deps = preds_[i];
    deps.assign(txns[i].dependencies.begin(), txns[i].dependencies.end());
    std::sort(deps.begin(), deps.end());
    for (size_t k = 0; k < deps.size(); ++k) {
      const TxnId d = deps[k];
      if (d >= n) {
        return Status::InvalidArgument("T" + std::to_string(i) +
                                       " depends on unknown transaction " +
                                       std::to_string(d));
      }
      if (d == static_cast<TxnId>(i)) {
        return Status::InvalidArgument("T" + std::to_string(i) +
                                       " depends on itself");
      }
      if (k > 0 && deps[k] == deps[k - 1]) {
        return Status::InvalidArgument("T" + std::to_string(i) +
                                       " lists duplicate dependency " +
                                       std::to_string(d));
      }
    }
    for (const TxnId d : deps) {
      succs_[d].push_back(static_cast<TxnId>(i));
      ++num_edges_;
    }
  }
  for (auto& s : succs_) std::sort(s.begin(), s.end());

  // Kahn's algorithm: topological order doubling as cycle detection. The
  // output array itself serves as the FIFO frontier (head index walk), which
  // visits nodes in exactly the order a queue would while reusing topo_'s
  // storage.
  indeg_.resize(n);
  topo_.clear();
  for (size_t i = 0; i < n; ++i) {
    indeg_[i] = preds_[i].size();
    if (indeg_[i] == 0) topo_.push_back(static_cast<TxnId>(i));
  }
  for (size_t head = 0; head < topo_.size(); ++head) {
    const TxnId u = topo_[head];
    for (const TxnId v : succs_[u]) {
      if (--indeg_[v] == 0) topo_.push_back(v);
    }
  }
  if (topo_.size() != n) {
    return Status::InvalidArgument(
        "dependency lists contain a cycle; workflows must be acyclic");
  }
  return Status::OK();
}

std::vector<TxnId> DependencyGraph::Roots() const {
  std::vector<TxnId> roots;
  for (size_t i = 0; i < succs_.size(); ++i) {
    if (succs_[i].empty()) roots.push_back(static_cast<TxnId>(i));
  }
  return roots;
}

}  // namespace webtx
