#ifndef WEBTX_TXN_DEPENDENCY_GRAPH_H_
#define WEBTX_TXN_DEPENDENCY_GRAPH_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "txn/transaction.h"

namespace webtx {

/// Immutable precedence structure over a set of transactions.
///
/// Edges point from predecessor to dependent: if T_x appears in T_y's
/// dependency list (T_x -> T_y), then `successors(x)` contains y and
/// `predecessors(y)` contains x. The graph must be acyclic; `Build`
/// validates ids, rejects self-dependencies, duplicate edges, and cycles.
class DependencyGraph {
 public:
  /// An empty graph; populate with `Rebuild`.
  DependencyGraph() = default;

  /// Validates and builds the graph from per-transaction dependency lists.
  static Result<DependencyGraph> Build(
      const std::vector<TransactionSpec>& txns);

  /// Rebuilds this graph in place from a new transaction set, reusing the
  /// adjacency and topological-order storage from the previous build (no
  /// allocations once the graph has seen an equal-or-larger set). Produces
  /// exactly the structure `Build` would. On error the graph is left in an
  /// unspecified state and must be rebuilt before use.
  Status Rebuild(const std::vector<TransactionSpec>& txns);

  size_t num_transactions() const { return preds_.size(); }

  const std::vector<TxnId>& predecessors(TxnId id) const {
    return preds_[id];
  }
  const std::vector<TxnId>& successors(TxnId id) const { return succs_[id]; }

  /// True when the transaction has no predecessors (independent, a workflow
  /// leaf per Sec. II-A).
  bool IsIndependent(TxnId id) const { return preds_[id].empty(); }

  /// True when the transaction appears in no dependency list — a workflow
  /// *root* in the paper's terminology; one workflow is defined per root.
  bool IsRoot(TxnId id) const { return succs_[id].empty(); }

  /// All roots, ascending by id.
  std::vector<TxnId> Roots() const;

  /// A topological order (predecessors before dependents).
  const std::vector<TxnId>& TopologicalOrder() const { return topo_; }

  /// Total number of precedence edges.
  size_t num_edges() const { return num_edges_; }

 private:
  std::vector<std::vector<TxnId>> preds_;
  std::vector<std::vector<TxnId>> succs_;
  std::vector<TxnId> topo_;
  size_t num_edges_ = 0;
  /// Kahn scratch, retained across `Rebuild` calls.
  std::vector<size_t> indeg_;
};

}  // namespace webtx

#endif  // WEBTX_TXN_DEPENDENCY_GRAPH_H_
