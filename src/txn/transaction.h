#ifndef WEBTX_TXN_TRANSACTION_H_
#define WEBTX_TXN_TRANSACTION_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace webtx {

/// Dense transaction identifier; transactions in a workload are numbered
/// 0..N-1.
using TxnId = uint32_t;

/// Sentinel for "no transaction" (e.g., an idle scheduling decision).
inline constexpr TxnId kInvalidTxn = std::numeric_limits<TxnId>::max();

/// Static description of one web transaction (paper Definition 1).
///
/// A transaction materializes one content fragment of a dynamic web page.
/// `deadline` is absolute (the fragment's SLA mapped to simulated time),
/// `length` is the total processing requirement, `weight` the fragment's
/// importance, and `dependencies` the immediate predecessor list l_i: this
/// transaction is ready only after every listed transaction has finished.
struct TransactionSpec {
  TxnId id = kInvalidTxn;
  SimTime arrival = 0.0;
  SimTime length = 0.0;
  SimTime deadline = 0.0;
  double weight = 1.0;
  std::vector<TxnId> dependencies;

  /// The scheduler's a-priori estimate of `length` ("typically computed
  /// by the system based on previous statistics and profiles",
  /// Sec. II-A). 0 (default) means the estimate is exact. The simulator
  /// completes transactions after `length` time units but shows policies
  /// estimate-derived remaining times — see SimView::remaining.
  SimTime length_estimate = 0.0;

  /// The estimate the scheduler plans with.
  SimTime EstimateOrLength() const {
    return length_estimate > 0.0 ? length_estimate : length;
  }

  /// Slack at time `t` given remaining processing time `remaining`
  /// (paper Definition 2): s_i = d_i - (t + r_i).
  SimTime SlackAt(SimTime t, SimTime remaining) const {
    return deadline - (t + remaining);
  }

  /// Initial slack at arrival: d_i - a_i - l_i.
  SimTime InitialSlack() const { return deadline - arrival - length; }

  std::string DebugString() const;
};

/// Tardiness of a finished transaction (paper Definition 3):
/// max(0, finish - deadline).
inline SimTime TardinessOf(SimTime finish, SimTime deadline) {
  const SimTime t = finish - deadline;
  return t > 0.0 ? t : 0.0;
}

}  // namespace webtx

#endif  // WEBTX_TXN_TRANSACTION_H_
