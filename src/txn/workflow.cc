#include "txn/workflow.h"

#include <algorithm>

namespace webtx {

WorkflowRegistry WorkflowRegistry::Build(const DependencyGraph& graph) {
  WorkflowRegistry registry;
  const size_t n = graph.num_transactions();
  registry.txn_to_workflows_.resize(n);

  std::vector<char> visited(n);
  std::vector<TxnId> stack;
  for (const TxnId root : graph.Roots()) {
    Workflow wf;
    wf.id = static_cast<WorkflowId>(registry.workflows_.size());
    wf.root = root;

    std::fill(visited.begin(), visited.end(), 0);
    stack.assign(1, root);
    visited[root] = 1;
    while (!stack.empty()) {
      const TxnId u = stack.back();
      stack.pop_back();
      wf.members.push_back(u);
      for (const TxnId p : graph.predecessors(u)) {
        if (!visited[p]) {
          visited[p] = 1;
          stack.push_back(p);
        }
      }
    }
    std::sort(wf.members.begin(), wf.members.end());
    registry.max_workflow_size_ =
        std::max(registry.max_workflow_size_, wf.members.size());
    for (const TxnId m : wf.members) {
      registry.txn_to_workflows_[m].push_back(wf.id);
    }
    registry.workflows_.push_back(std::move(wf));
  }
  return registry;
}

}  // namespace webtx
