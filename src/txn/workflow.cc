#include "txn/workflow.h"

#include <algorithm>

namespace webtx {

WorkflowRegistry WorkflowRegistry::Build(const DependencyGraph& graph) {
  WorkflowRegistry registry;
  registry.Rebuild(graph);
  return registry;
}

void WorkflowRegistry::Rebuild(const DependencyGraph& graph) {
  const size_t n = graph.num_transactions();
  txn_to_workflows_.resize(n);
  for (auto& w : txn_to_workflows_) w.clear();
  if (visited_.size() < n) visited_.resize(n, 0);
  max_workflow_size_ = 0;

  // Roots ascend by id (matching DependencyGraph::Roots), and workflow slots
  // from the previous build are reused in place.
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    const TxnId root = static_cast<TxnId>(i);
    if (!graph.IsRoot(root)) continue;
    if (w == workflows_.size()) workflows_.emplace_back();
    Workflow& wf = workflows_[w];
    wf.id = static_cast<WorkflowId>(w);
    wf.root = root;
    wf.members.clear();

    const size_t stamp = ++stamp_;
    stack_.clear();
    stack_.push_back(root);
    visited_[root] = stamp;
    while (!stack_.empty()) {
      const TxnId u = stack_.back();
      stack_.pop_back();
      wf.members.push_back(u);
      for (const TxnId p : graph.predecessors(u)) {
        if (visited_[p] != stamp) {
          visited_[p] = stamp;
          stack_.push_back(p);
        }
      }
    }
    std::sort(wf.members.begin(), wf.members.end());
    max_workflow_size_ = std::max(max_workflow_size_, wf.members.size());
    for (const TxnId m : wf.members) {
      txn_to_workflows_[m].push_back(wf.id);
    }
    ++w;
  }
  workflows_.resize(w);
}

}  // namespace webtx
