#ifndef WEBTX_TXN_WORKFLOW_H_
#define WEBTX_TXN_WORKFLOW_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "txn/dependency_graph.h"
#include "txn/transaction.h"

namespace webtx {

/// Dense workflow identifier (0..num_workflows-1).
using WorkflowId = uint32_t;

inline constexpr WorkflowId kInvalidWorkflow =
    std::numeric_limits<WorkflowId>::max();

/// One workflow as defined in Sec. II-A: for every *root* transaction (a
/// transaction appearing in no dependency list) the workflow contains the
/// root plus every transaction reachable backwards through dependency
/// lists. A transaction can belong to several workflows.
struct Workflow {
  WorkflowId id = kInvalidWorkflow;
  TxnId root = kInvalidTxn;
  /// All member transactions (including the root), ascending by id.
  std::vector<TxnId> members;
};

/// Workflow decomposition of a transaction set: the list of workflows plus
/// the inverse map transaction -> workflows it belongs to.
class WorkflowRegistry {
 public:
  /// Builds the registry by backward reachability from every root of `graph`.
  static WorkflowRegistry Build(const DependencyGraph& graph);

  /// Rebuilds this registry in place for a new graph, reusing workflow and
  /// inverse-map storage from the previous build (no allocations once the
  /// registry has seen an equal-or-larger graph). Produces exactly the
  /// decomposition `Build` would.
  void Rebuild(const DependencyGraph& graph);

  size_t num_workflows() const { return workflows_.size(); }
  const Workflow& workflow(WorkflowId id) const { return workflows_[id]; }
  const std::vector<Workflow>& workflows() const { return workflows_; }

  /// Workflows the transaction belongs to (ascending).
  const std::vector<WorkflowId>& WorkflowsOf(TxnId id) const {
    return txn_to_workflows_[id];
  }

  /// Largest workflow size in the registry (useful for sizing scratch
  /// buffers; workflows are expected to be small, <= ~10 per Sec. IV-A).
  size_t max_workflow_size() const { return max_workflow_size_; }

 private:
  std::vector<Workflow> workflows_;
  std::vector<std::vector<WorkflowId>> txn_to_workflows_;
  size_t max_workflow_size_ = 0;
  /// DFS scratch, retained across `Rebuild` calls. `visited_` holds the
  /// stamp of the last DFS that reached the transaction, so per-root
  /// clearing is one counter bump instead of an O(n) fill.
  std::vector<size_t> visited_;
  std::vector<TxnId> stack_;
  size_t stamp_ = 0;
};

}  // namespace webtx

#endif  // WEBTX_TXN_WORKFLOW_H_
