#include "txn/transaction.h"

#include <sstream>

namespace webtx {

std::string TransactionSpec::DebugString() const {
  std::ostringstream os;
  os << "T" << id << "{a=" << arrival << ", l=" << length
     << ", d=" << deadline << ", w=" << weight << ", deps=[";
  for (size_t i = 0; i < dependencies.size(); ++i) {
    if (i > 0) os << ",";
    os << dependencies[i];
  }
  os << "]}";
  return os.str();
}

}  // namespace webtx
