#ifndef WEBTX_SCHED_INDEXED_PRIORITY_QUEUE_H_
#define WEBTX_SCHED_INDEXED_PRIORITY_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace webtx {

/// Min-heap over dense 32-bit ids with an id -> heap-position index,
/// supporting O(log n) push / pop / erase / key update and O(1) membership
/// tests. This is the "balanced binary search tree" priority structure of
/// Sec. III-A2: every scheduler event costs O(log N).
///
/// Ordering is (key, id) lexicographic, so ties are deterministic (lower id
/// wins).
class IndexedPriorityQueue {
 public:
  IndexedPriorityQueue() = default;

  /// Pre-sizes the position index AND the heap storage for ids in
  /// [0, n), so subsequent Push calls never reallocate (previously only
  /// the index map was sized, and the first pushes after construction
  /// still grew the heap vector — pinned by the 262k storm case in
  /// tests/sim/allocation_test.cc).
  explicit IndexedPriorityQueue(size_t n) { Reserve(n); }

  /// Pre-sizes the position index for ids in [0, n) and reserves heap
  /// capacity for n entries, so subsequent Push calls never reallocate.
  void Reserve(size_t n) {
    if (pos_.size() < n) pos_.resize(n, kNoPos);
    heap_.reserve(n);
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  bool Contains(uint32_t id) const {
    return id < pos_.size() && pos_[id] != kNoPos;
  }

  /// Current key of a contained id.
  double KeyOf(uint32_t id) const {
    WEBTX_DCHECK(Contains(id));
    return heap_[pos_[id]].key;
  }

  /// Inserts `id` with `key`. The id must not be present.
  void Push(uint32_t id, double key) {
    if (id >= pos_.size()) pos_.resize(id + 1, kNoPos);
    WEBTX_DCHECK(pos_[id] == kNoPos);
    heap_.push_back(Entry{key, id});
    pos_[id] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
  }

  /// The id with the smallest (key, id). Queue must be non-empty.
  uint32_t Top() const {
    WEBTX_DCHECK(!heap_.empty());
    return heap_[0].id;
  }

  double TopKey() const {
    WEBTX_DCHECK(!heap_.empty());
    return heap_[0].key;
  }

  /// Removes and returns the minimum id.
  uint32_t Pop() {
    const uint32_t id = Top();
    Erase(id);
    return id;
  }

  /// Removes `id` if present; returns whether it was present.
  bool Erase(uint32_t id) {
    if (!Contains(id)) return false;
    const size_t i = pos_[id];
    const size_t last = heap_.size() - 1;
    if (i != last) {
      SwapEntries(i, last);
      heap_.pop_back();
      pos_[id] = kNoPos;
      // The moved entry may need to go either direction.
      if (!SiftUp(i)) SiftDown(i);
    } else {
      heap_.pop_back();
      pos_[id] = kNoPos;
    }
    return true;
  }

  /// Changes the key of a contained id.
  void Update(uint32_t id, double key) {
    WEBTX_DCHECK(Contains(id));
    const size_t i = pos_[id];
    heap_[i].key = key;
    if (!SiftUp(i)) SiftDown(i);
  }

  /// Changes the key of a contained id only when it actually differs,
  /// skipping the sift cycle (and its cache traffic) on no-op re-keys.
  /// Returns whether the key changed.
  bool UpdateKeyIfChanged(uint32_t id, double key) {
    WEBTX_DCHECK(Contains(id));
    const size_t i = pos_[id];
    if (heap_[i].key == key) return false;
    heap_[i].key = key;
    if (!SiftUp(i)) SiftDown(i);
    return true;
  }

  /// Push, or Update when already present.
  void PushOrUpdate(uint32_t id, double key) {
    if (Contains(id)) {
      Update(id, key);
    } else {
      Push(id, key);
    }
  }

  /// Replaces the queue's contents with `items` in O(n) via Floyd's
  /// bottom-up heapify (vs. n individual Pushes at O(n log n)), reserving
  /// capacity for `capacity` ids (>= items.size()) so later Pushes stay
  /// allocation-free. Ids must be unique.
  void ReserveAndBulkLoad(const std::vector<std::pair<uint32_t, double>>& items,
                          size_t capacity = 0) {
    Clear();
    Reserve(capacity > items.size() ? capacity : items.size());
    for (const auto& [id, key] : items) {
      if (id >= pos_.size()) pos_.resize(id + 1, kNoPos);
      WEBTX_DCHECK(pos_[id] == kNoPos) << "duplicate id in bulk load";
      heap_.push_back(Entry{key, id});
      pos_[id] = heap_.size() - 1;
    }
    if (heap_.size() > 1) {
      for (size_t i = heap_.size() / 2; i-- > 0;) SiftDown(i);
    }
  }

  void Clear() {
    for (const Entry& e : heap_) pos_[e.id] = kNoPos;
    heap_.clear();
  }

  /// One frontier node of the read-only top-k walk: a heap slot plus a
  /// copy of its (key, id) so comparisons never touch the main heap.
  struct FrontierEntry {
    double key;
    uint32_t id;
    uint32_t slot;
  };
  /// Caller-owned scratch for AppendTopK; reuse it across calls so the
  /// walk is allocation-free once warm (it never exceeds k + 1 entries).
  using TopKScratch = std::vector<FrontierEntry>;

  /// Appends the queue's min(k, size) smallest ids to `out`, in exactly
  /// the (key, id) order k successive Pops would produce, WITHOUT
  /// mutating the heap: a frontier min-heap over heap slots starts at
  /// the root and expands children as slots are consumed, so the main
  /// heap sees no sifts, no position updates, and no writes at all.
  /// O(k log k) instead of the pop-k/push-k-back round trip.
  void AppendTopK(size_t k, std::vector<uint32_t>& out,
                  TopKScratch& frontier) const {
    frontier.clear();
    if (k == 0 || heap_.empty()) return;
    frontier.push_back(FrontierEntry{heap_[0].key, heap_[0].id, 0});
    for (size_t taken = 0; taken < k && !frontier.empty(); ++taken) {
      std::pop_heap(frontier.begin(), frontier.end(), FrontierAfter);
      const FrontierEntry next = frontier.back();
      frontier.pop_back();
      out.push_back(next.id);
      const size_t left = 2 * static_cast<size_t>(next.slot) + 1;
      for (size_t child = left; child < left + 2 && child < heap_.size();
           ++child) {
        frontier.push_back(FrontierEntry{heap_[child].key, heap_[child].id,
                                         static_cast<uint32_t>(child)});
        std::push_heap(frontier.begin(), frontier.end(), FrontierAfter);
      }
    }
  }

 private:
  struct Entry {
    double key;
    uint32_t id;
  };
  static constexpr size_t kNoPos = std::numeric_limits<size_t>::max();

  static bool Less(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }

  /// std::push_heap/pop_heap build a max-heap under the comparator, so
  /// "a pops after b" puts the smallest (key, id) on top.
  static bool FrontierAfter(const FrontierEntry& a, const FrontierEntry& b) {
    if (a.key != b.key) return a.key > b.key;
    return a.id > b.id;
  }

  void SwapEntries(size_t i, size_t j) {
    std::swap(heap_[i], heap_[j]);
    pos_[heap_[i].id] = i;
    pos_[heap_[j].id] = j;
  }

  /// Returns true if the entry moved.
  bool SiftUp(size_t i) {
    bool moved = false;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!Less(heap_[i], heap_[parent])) break;
      SwapEntries(i, parent);
      i = parent;
      moved = true;
    }
    return moved;
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    while (true) {
      const size_t left = 2 * i + 1;
      const size_t right = left + 1;
      size_t smallest = i;
      if (left < n && Less(heap_[left], heap_[smallest])) smallest = left;
      if (right < n && Less(heap_[right], heap_[smallest])) smallest = right;
      if (smallest == i) break;
      SwapEntries(i, smallest);
      i = smallest;
    }
  }

  std::vector<Entry> heap_;
  std::vector<size_t> pos_;
};

}  // namespace webtx

#endif  // WEBTX_SCHED_INDEXED_PRIORITY_QUEUE_H_
