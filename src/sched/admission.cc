#include "sched/admission.h"

#include <sstream>

namespace webtx {

QueueDepthAdmission::QueueDepthAdmission(QueueDepthAdmissionOptions options)
    : options_(options) {
  WEBTX_CHECK_GE(options_.max_ready, 1u);
  WEBTX_CHECK_GE(options_.defer_delay, 0.0);
}

std::string QueueDepthAdmission::name() const {
  std::ostringstream os;
  os << "queue-depth(" << options_.max_ready << ")";
  return os.str();
}

void QueueDepthAdmission::Reset() { defers_.clear(); }

AdmissionDecision QueueDepthAdmission::Decide(TxnId id, SimTime now) {
  (void)now;
  if (!view().specs()[id].dependencies.empty()) {
    return AdmissionDecision::Admit();
  }
  if (view().ready_transactions().size() < options_.max_ready) {
    return AdmissionDecision::Admit();
  }
  if (options_.defer_delay > 0.0) {
    if (defers_.size() <= id) defers_.resize(id + 1, 0);
    if (defers_[id] < options_.max_defers) {
      ++defers_[id];
      return AdmissionDecision::Defer(options_.defer_delay);
    }
  }
  return AdmissionDecision::Reject();
}

FeasibilityAdmission::FeasibilityAdmission(
    FeasibilityAdmissionOptions options)
    : options_(options) {
  WEBTX_CHECK_GE(options_.tardiness_bound, 0.0);
}

std::string FeasibilityAdmission::name() const {
  std::ostringstream os;
  os << "feasibility(" << options_.tardiness_bound << ")";
  return os.str();
}

AdmissionDecision FeasibilityAdmission::Decide(TxnId id, SimTime now) {
  const TransactionSpec& spec = view().specs()[id];
  if (!spec.dependencies.empty()) return AdmissionDecision::Admit();
  SimTime backlog = 0.0;
  for (const TxnId ready : view().ready_transactions()) {
    backlog += view().remaining(ready);
  }
  // Translate backlog via the servers actually up: a half-crashed farm
  // drains its queue at half rate, so feasibility must shrink with it.
  const auto servers = static_cast<double>(view().num_servers_up());
  const SimTime predicted_finish =
      now + (backlog + spec.EstimateOrLength()) / servers;
  const SimTime predicted_tardiness = predicted_finish - spec.deadline;
  if (predicted_tardiness > options_.tardiness_bound + kTimeEpsilon) {
    return AdmissionDecision::Reject();
  }
  return AdmissionDecision::Admit();
}

AdmissionFactory MakeQueueDepthAdmission(QueueDepthAdmissionOptions options) {
  return [options] { return std::make_unique<QueueDepthAdmission>(options); };
}

AdmissionFactory MakeFeasibilityAdmission(
    FeasibilityAdmissionOptions options) {
  return
      [options] { return std::make_unique<FeasibilityAdmission>(options); };
}

}  // namespace webtx
