#include "sched/admission.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace webtx {

QueueDepthAdmission::QueueDepthAdmission(QueueDepthAdmissionOptions options)
    : options_(options) {
  WEBTX_CHECK_GE(options_.max_ready, 1u);
  WEBTX_CHECK_GE(options_.defer_delay, 0.0);
}

std::string QueueDepthAdmission::name() const {
  std::ostringstream os;
  os << "queue-depth(" << options_.max_ready << ")";
  return os.str();
}

void QueueDepthAdmission::Reset() { defers_.clear(); }

AdmissionDecision QueueDepthAdmission::Decide(TxnId id, SimTime now) {
  (void)now;
  if (!view().specs()[id].dependencies.empty()) {
    return AdmissionDecision::Admit();
  }
  if (view().ready_transactions().size() < options_.max_ready) {
    return AdmissionDecision::Admit();
  }
  if (options_.defer_delay > 0.0) {
    if (defers_.size() <= id) defers_.resize(id + 1, 0);
    if (defers_[id] < options_.max_defers) {
      ++defers_[id];
      return AdmissionDecision::Defer(options_.defer_delay);
    }
  }
  return AdmissionDecision::Reject();
}

FeasibilityAdmission::FeasibilityAdmission(
    FeasibilityAdmissionOptions options)
    : options_(options) {
  WEBTX_CHECK_GE(options_.tardiness_bound, 0.0);
}

std::string FeasibilityAdmission::name() const {
  std::ostringstream os;
  os << "feasibility(" << options_.tardiness_bound << ")";
  return os.str();
}

AdmissionDecision FeasibilityAdmission::Decide(TxnId id, SimTime now) {
  const TransactionSpec& spec = view().specs()[id];
  if (!spec.dependencies.empty()) return AdmissionDecision::Admit();
  SimTime backlog = 0.0;
  for (const TxnId ready : view().ready_transactions()) {
    backlog += view().remaining(ready);
  }
  // Translate backlog via the servers actually up: a half-crashed farm
  // drains its queue at half rate, so feasibility must shrink with it.
  const auto servers = static_cast<double>(view().num_servers_up());
  const SimTime predicted_finish =
      now + (backlog + spec.EstimateOrLength()) / servers;
  const SimTime predicted_tardiness = predicted_finish - spec.deadline;
  if (predicted_tardiness > options_.tardiness_bound + kTimeEpsilon) {
    return AdmissionDecision::Reject();
  }
  return AdmissionDecision::Admit();
}

BrownoutAdmission::BrownoutAdmission(BrownoutAdmissionOptions options)
    : options_(std::move(options)) {
  WEBTX_CHECK(options_.tardiness_slo > 0.0);
  WEBTX_CHECK(options_.depth_slo > 0.0);
  WEBTX_CHECK(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0);
  WEBTX_CHECK(!options_.weight_tiers.empty());
  for (size_t i = 1; i < options_.weight_tiers.size(); ++i) {
    WEBTX_CHECK(options_.weight_tiers[i - 1] < options_.weight_tiers[i])
        << "weight_tiers must be strictly ascending";
  }
  WEBTX_CHECK(options_.breaker_trip_severity > 1.0);
  WEBTX_CHECK(options_.breaker_cooldown > 0.0);
  WEBTX_CHECK(options_.capacity_slo >= 0.0 && options_.capacity_slo <= 1.0)
      << "capacity_slo is a down-fraction in [0, 1]";
}

std::string BrownoutAdmission::name() const {
  std::ostringstream os;
  os << "brownout(slo=" << options_.tardiness_slo << ")";
  return os.str();
}

void BrownoutAdmission::Reset() {
  tardy_ewma_ = 0.0;
  depth_ewma_ = 0.0;
  breaker_ = BreakerState::kClosed;
  open_until_ = 0.0;
  probe_ = kInvalidTxn;
}

double BrownoutAdmission::SeverityLocked() const {
  double severity = std::max(tardy_ewma_ / options_.tardiness_slo,
                             depth_ewma_ / options_.depth_slo);
  if (options_.capacity_slo > 0.0) {
    // Crash-aware signal: shed against the capacity that is GONE, not
    // only the symptoms (tardiness/depth) it eventually causes. Uses
    // the instantaneous pool size, not an EWMA — a crash should tighten
    // admission at the very next arrival.
    const auto total = static_cast<double>(view().num_servers());
    const auto up = static_cast<double>(
        std::min(view().num_servers_up(), view().num_servers()));
    const double down_fraction = total > 0.0 ? (total - up) / total : 0.0;
    severity = std::max(severity, down_fraction / options_.capacity_slo);
  }
  return severity;
}

AdmissionDecision BrownoutAdmission::Decide(TxnId id, SimTime now) {
  // Depth signal: ready backlog per server actually up, smoothed.
  const double depth =
      static_cast<double>(view().ready_transactions().size()) /
      static_cast<double>(view().num_servers_up());
  depth_ewma_ =
      (1.0 - options_.ewma_alpha) * depth_ewma_ + options_.ewma_alpha * depth;

  const TransactionSpec& spec = view().specs()[id];
  // Mid-workflow arrivals ride on their admitted root: shedding them
  // would waste finished predecessor work.
  if (!spec.dependencies.empty()) return AdmissionDecision::Admit();

  const double top_tier = options_.weight_tiers.back();
  if (breaker_ == BreakerState::kOpen) {
    if (now < open_until_) {
      return spec.weight >= top_tier ? AdmissionDecision::Admit()
                                     : AdmissionDecision::Reject();
    }
    breaker_ = BreakerState::kHalfOpen;
  }
  if (breaker_ == BreakerState::kHalfOpen) {
    if (probe_ == kInvalidTxn) {
      probe_ = id;  // the probe: its observed tardiness decides the fate
      return AdmissionDecision::Admit();
    }
    return spec.weight >= top_tier ? AdmissionDecision::Admit()
                                   : AdmissionDecision::Reject();
  }

  const double severity = SeverityLocked();
  if (severity >= options_.breaker_trip_severity) {
    breaker_ = BreakerState::kOpen;
    open_until_ = now + options_.breaker_cooldown;
    return spec.weight >= top_tier ? AdmissionDecision::Admit()
                                   : AdmissionDecision::Reject();
  }
  if (severity <= 1.0) return AdmissionDecision::Admit();
  // Browned out: one tier of shedding per unit of overload.
  const auto level = static_cast<size_t>(severity - 1.0) + 1;
  const size_t tier = std::min(level, options_.weight_tiers.size()) - 1;
  return spec.weight < options_.weight_tiers[tier]
             ? AdmissionDecision::Reject()
             : AdmissionDecision::Admit();
}

void BrownoutAdmission::ObserveCompletion(TxnId id, SimTime tardiness,
                                          SimTime now) {
  tardy_ewma_ = (1.0 - options_.ewma_alpha) * tardy_ewma_ +
                options_.ewma_alpha * std::max(0.0, tardiness);
  if (breaker_ == BreakerState::kHalfOpen && id == probe_) {
    if (tardiness <= options_.tardiness_slo) {
      breaker_ = BreakerState::kClosed;
    } else {
      breaker_ = BreakerState::kOpen;
      open_until_ = now + options_.breaker_cooldown;
    }
    probe_ = kInvalidTxn;
  }
}

AdmissionFactory MakeQueueDepthAdmission(QueueDepthAdmissionOptions options) {
  return [options] { return std::make_unique<QueueDepthAdmission>(options); };
}

AdmissionFactory MakeFeasibilityAdmission(
    FeasibilityAdmissionOptions options) {
  return
      [options] { return std::make_unique<FeasibilityAdmission>(options); };
}

AdmissionFactory MakeBrownoutAdmission(BrownoutAdmissionOptions options) {
  return [options] { return std::make_unique<BrownoutAdmission>(options); };
}

}  // namespace webtx
