#ifndef WEBTX_SCHED_LAZY_DELETE_HEAP_H_
#define WEBTX_SCHED_LAZY_DELETE_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace webtx {

/// Drop-in replacement for IndexedPriorityQueue (same API, same
/// (key, id) pop order) that trades the id -> heap-position index for
/// version-stamped tombstones: Erase and Update are O(1) stamp bumps
/// instead of O(log n) sift cycles, and Push never maintains a position
/// map. Stale entries are pruned when they surface at the root and
/// swept wholesale once they outnumber live ones.
///
/// This wins in the ASETS* hot path, where most key changes are
/// representative-update storms on workflow heads (Update >> Pop): the
/// classic indexed heap pays two cache-hostile sift walks per update,
/// the lazy heap pays one append. The flip side is memory: the heap
/// array can transiently hold up to 2x live entries plus a slack
/// constant before compaction triggers.
///
/// Ordering contract: among LIVE entries, pop order is exactly the
/// (key, id) lexicographic order of IndexedPriorityQueue — lower id
/// wins ties — so swapping the two structures is byte-identical at the
/// simulator level (pinned by tests/sched/lazy_delete_heap_test.cc and
/// the huge-structures differential matrix).
///
/// The heap is 4-ary ("bucketed"): each node's children share a cache
/// line of entries, so sift-down touches ~half the lines of a binary
/// heap at 262k+ items.
class LazyDeleteHeap {
 public:
  LazyDeleteHeap() = default;

  /// Pre-sizes the slot table and heap storage for ids in [0, n).
  explicit LazyDeleteHeap(size_t n) { Reserve(n); }

  void Reserve(size_t n) {
    if (slots_.size() < n) slots_.resize(n);
    heap_.reserve(n);
  }

  bool empty() const { return live_ == 0; }

  /// Number of LIVE ids (not heap entries).
  size_t size() const { return live_; }

  bool Contains(uint32_t id) const {
    return id < slots_.size() && slots_[id].in;
  }

  /// Current key of a contained id. O(1) via the slot table.
  double KeyOf(uint32_t id) const {
    WEBTX_DCHECK(Contains(id));
    return slots_[id].key;
  }

  /// Inserts `id` with `key`. The id must not be present.
  void Push(uint32_t id, double key) {
    if (id >= slots_.size()) slots_.resize(id + 1);
    WEBTX_DCHECK(!slots_[id].in);
    Slot& slot = slots_[id];
    slot.in = true;
    slot.key = key;
    heap_.push_back(Entry{key, id, slot.version});
    SiftUp(heap_.size() - 1);
    ++live_;
  }

  /// The id with the smallest live (key, id). Queue must be non-empty.
  /// Non-const: surfacing the live minimum prunes tombstones.
  uint32_t Top() {
    PruneTop();
    return heap_.front().id;
  }

  double TopKey() {
    PruneTop();
    return heap_.front().key;
  }

  /// Removes and returns the minimum live id.
  uint32_t Pop() {
    PruneTop();
    const uint32_t id = heap_.front().id;
    slots_[id].in = false;
    ++slots_[id].version;
    --live_;
    PopRoot();
    return id;
  }

  /// Removes `id` if present; returns whether it was present. O(1):
  /// the heap entry becomes a tombstone.
  bool Erase(uint32_t id) {
    if (!Contains(id)) return false;
    slots_[id].in = false;
    ++slots_[id].version;
    --live_;
    MaybeCompact();
    return true;
  }

  /// Changes the key of a contained id: tombstone the old entry, append
  /// a fresh one.
  void Update(uint32_t id, double key) {
    WEBTX_DCHECK(Contains(id));
    Slot& slot = slots_[id];
    ++slot.version;
    slot.key = key;
    heap_.push_back(Entry{key, id, slot.version});
    SiftUp(heap_.size() - 1);
    MaybeCompact();
  }

  /// Changes the key of a contained id only when it actually differs.
  /// Returns whether the key changed.
  bool UpdateKeyIfChanged(uint32_t id, double key) {
    WEBTX_DCHECK(Contains(id));
    if (slots_[id].key == key) return false;
    Update(id, key);
    return true;
  }

  /// Push, or Update when already present.
  void PushOrUpdate(uint32_t id, double key) {
    if (Contains(id)) {
      Update(id, key);
    } else {
      Push(id, key);
    }
  }

  /// Replaces the queue's contents with `items` in O(n) via Floyd's
  /// bottom-up heapify, reserving capacity for `capacity` ids
  /// (>= items.size()). Ids must be unique.
  void ReserveAndBulkLoad(const std::vector<std::pair<uint32_t, double>>& items,
                          size_t capacity = 0) {
    Clear();
    Reserve(capacity > items.size() ? capacity : items.size());
    for (const auto& [id, key] : items) {
      if (id >= slots_.size()) slots_.resize(id + 1);
      WEBTX_DCHECK(!slots_[id].in) << "duplicate id in bulk load";
      Slot& slot = slots_[id];
      slot.in = true;
      slot.key = key;
      heap_.push_back(Entry{key, id, slot.version});
    }
    live_ = heap_.size();
    Heapify();
  }

  void Clear() {
    for (const Entry& e : heap_) {
      slots_[e.id].in = false;
      ++slots_[e.id].version;  // re-stamping a stale twin is harmless
    }
    heap_.clear();
    live_ = 0;
  }

 private:
  struct Entry {
    double key;
    uint32_t id;
    uint32_t version;
  };
  struct Slot {
    double key = 0.0;
    uint32_t version = 0;
    bool in = false;
  };
  static constexpr size_t kArity = 4;
  static constexpr size_t kCompactSlack = 64;

  static bool Less(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }

  bool IsLive(const Entry& e) const {
    const Slot& slot = slots_[e.id];
    return slot.in && slot.version == e.version;
  }

  void SiftUp(size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!Less(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    const Entry e = heap_[i];
    while (true) {
      const size_t first = kArity * i + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t last = first + kArity < n ? first + kArity : n;
      for (size_t c = first + 1; c < last; ++c) {
        if (Less(heap_[c], heap_[best])) best = c;
      }
      if (!Less(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  /// Removes the root entry (live or stale).
  void PopRoot() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
  }

  /// Discards tombstones until the root is live.
  void PruneTop() {
    WEBTX_DCHECK(live_ > 0);
    while (!IsLive(heap_.front())) PopRoot();
  }

  /// Sweeps all tombstones once they dominate: filter in place, then
  /// one O(n) Floyd heapify — amortized O(1) per erase/update.
  void MaybeCompact() {
    if (heap_.size() <= 2 * live_ + kCompactSlack) return;
    size_t w = 0;
    for (const Entry& e : heap_) {
      if (IsLive(e)) heap_[w++] = e;
    }
    heap_.resize(w);
    WEBTX_DCHECK(w == live_);
    Heapify();
  }

  void Heapify() {
    if (heap_.size() < 2) return;
    for (size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) SiftDown(i);
  }

  std::vector<Entry> heap_;   // live entries + tombstones
  std::vector<Slot> slots_;   // id -> {current key, version, membership}
  size_t live_ = 0;
};

}  // namespace webtx

#endif  // WEBTX_SCHED_LAZY_DELETE_HEAP_H_
