#ifndef WEBTX_SCHED_SIM_VIEW_H_
#define WEBTX_SCHED_SIM_VIEW_H_

#include <cstddef>
#include <vector>

#include "common/sim_time.h"
#include "txn/dependency_graph.h"
#include "txn/transaction.h"
#include "txn/workflow.h"

namespace webtx {

/// Read-only window onto simulator runtime state, handed to scheduling
/// policies. Policies never mutate simulation state; they only observe it
/// and answer PickNext.
class SimView {
 public:
  virtual ~SimView() = default;

  /// Static descriptions of every transaction in the workload.
  virtual const std::vector<TransactionSpec>& specs() const = 0;

  /// Precedence structure over the workload.
  virtual const DependencyGraph& graph() const = 0;

  /// Workflow decomposition (one workflow per root transaction).
  virtual const WorkflowRegistry& workflows() const = 0;

  /// Remaining processing time r_i; equals length before first dispatch,
  /// 0 once finished. Updated at scheduling points.
  virtual SimTime remaining(TxnId id) const = 0;

  virtual bool IsArrived(TxnId id) const = 0;
  virtual bool IsFinished(TxnId id) const = 0;

  /// Arrived, all dependencies finished, and not itself finished.
  virtual bool IsReady(TxnId id) const = 0;

  /// All currently ready transactions, in unspecified order.
  virtual const std::vector<TxnId>& ready_transactions() const = 0;

  size_t num_transactions() const { return specs().size(); }

  /// Number of parallel servers executing transactions. Admission
  /// controllers use this to translate ready-queue backlog into an
  /// estimated completion delay; 1 matches the paper's testbed.
  virtual size_t num_servers() const { return 1; }

  /// Servers currently in the schedulable pool: num_servers() minus
  /// those down in an outage window or crashed awaiting repair. Never
  /// reported below 1 — even a fully-down farm comes back, so capacity
  /// estimates stay finite. Equals num_servers() for fault-free runs.
  virtual size_t num_servers_up() const { return num_servers(); }

  /// Slack of `id` at time `now` (Definition 2).
  SimTime SlackAt(TxnId id, SimTime now) const {
    return specs()[id].SlackAt(now, remaining(id));
  }
};

}  // namespace webtx

#endif  // WEBTX_SCHED_SIM_VIEW_H_
