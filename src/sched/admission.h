#ifndef WEBTX_SCHED_ADMISSION_H_
#define WEBTX_SCHED_ADMISSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"
#include "sched/sim_view.h"
#include "txn/transaction.h"

namespace webtx {

/// Verdict of an admission controller for one arriving transaction.
struct AdmissionDecision {
  enum class Action : uint8_t {
    kAdmit,   // enter the system normally
    kReject,  // shed: the transaction (and its dependents) never runs
    kDefer,   // re-present the arrival to the controller after a delay
  };

  Action action = Action::kAdmit;
  /// Delay until the deferred re-arrival; must be > 0 for kDefer.
  SimTime defer_delay = 0.0;

  static AdmissionDecision Admit() { return {}; }
  static AdmissionDecision Reject() {
    return {Action::kReject, 0.0};
  }
  static AdmissionDecision Defer(SimTime delay) {
    WEBTX_DCHECK(delay > 0.0);
    return {Action::kDefer, delay};
  }
};

/// Overload-shedding hook consulted by the simulator (and conceptually
/// by any executor front end) at every transaction arrival, BEFORE the
/// scheduling policy learns of the transaction. Rejected transactions
/// are shed with fate kShedAdmission and their dependents are dropped;
/// deferred transactions re-arrive (and are re-decided) defer_delay
/// later. Controllers observe system load through the same read-only
/// SimView policies use, so "estimated system tardiness" and
/// "ready-queue depth" bounds are expressible without new plumbing.
///
/// Controllers are stateful (e.g. per-transaction defer budgets) and
/// NOT thread-safe; the simulator constructs a fresh instance per run
/// from SimOptions::admission, mirroring the PolicyFactory contract.
class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Display name, e.g. "queue-depth(64)".
  virtual std::string name() const = 0;

  /// Attaches the controller to a run and clears internal state.
  virtual void Bind(const SimView& view) {
    view_ = &view;
    Reset();
  }

  /// Decides the fate of arriving transaction `id` at time `now`. The
  /// transaction is not yet arrived/ready in the view. Called again on
  /// every deferred re-arrival; controllers must eventually answer
  /// kAdmit or kReject for the run to terminate.
  virtual AdmissionDecision Decide(TxnId id, SimTime now) = 0;

  /// Feedback hook: the host reports every completion with its observed
  /// tardiness (live executors report measured wall/virtual-clock
  /// tardiness, not the oracle estimate). Default: ignored. Adaptive
  /// controllers (BrownoutAdmission) steer shedding with it.
  virtual void ObserveCompletion(TxnId id, SimTime tardiness, SimTime now) {
    (void)id;
    (void)tardiness;
    (void)now;
  }

 protected:
  AdmissionController() = default;

  /// Clears per-run state. Called by Bind.
  virtual void Reset() {}

  const SimView& view() const {
    WEBTX_DCHECK(view_ != nullptr) << "controller used before Bind()";
    return *view_;
  }

 private:
  const SimView* view_ = nullptr;
};

/// Creates a fresh controller per simulation run. Factories are invoked
/// from sweep worker threads (one controller per run, never shared), so
/// they must be thread-safe and deterministic.
using AdmissionFactory =
    std::function<std::unique_ptr<AdmissionController>()>;

// ---------------------------------------------------------------------------
// Shipped strategies.

struct QueueDepthAdmissionOptions {
  /// Reject (or defer) dependency-free arrivals once the ready queue
  /// holds at least this many transactions.
  size_t max_ready = 64;
  /// When > 0, an over-cap arrival is deferred by this delay instead of
  /// rejected, up to max_defers times; afterwards it is rejected.
  SimTime defer_delay = 0.0;
  uint32_t max_defers = 4;
};

/// Queue-depth cap: the classic bounded-run-queue shed. Only
/// dependency-free (workflow-root) transactions are ever shed —
/// rejecting a mid-workflow transaction would waste its predecessors'
/// finished work.
class QueueDepthAdmission final : public AdmissionController {
 public:
  explicit QueueDepthAdmission(QueueDepthAdmissionOptions options = {});

  std::string name() const override;
  AdmissionDecision Decide(TxnId id, SimTime now) override;

 protected:
  void Reset() override;

 private:
  QueueDepthAdmissionOptions options_;
  std::vector<uint32_t> defers_;  // per-txn defer count, sized lazily
};

struct FeasibilityAdmissionOptions {
  /// Admit while the predicted tardiness of the arrival stays within
  /// this bound (0 = admit only transactions predicted to meet their
  /// deadline).
  SimTime tardiness_bound = 0.0;
};

/// Feasibility-based rejection: predicts the arrival's completion time
/// from the policy-visible remaining times of the current ready set
/// (backlog / num_servers + own estimated length) and sheds
/// dependency-free transactions whose predicted tardiness exceeds the
/// bound — transactions that would finish hopelessly late are cheaper
/// to reject at the door than to time out in the queue.
class FeasibilityAdmission final : public AdmissionController {
 public:
  explicit FeasibilityAdmission(FeasibilityAdmissionOptions options = {});

  std::string name() const override;
  AdmissionDecision Decide(TxnId id, SimTime now) override;

 private:
  FeasibilityAdmissionOptions options_;
};

struct BrownoutAdmissionOptions {
  /// Observed-tardiness EWMA considered "at capacity" (severity 1.0).
  SimTime tardiness_slo = 0.5;
  /// Ready-queue depth per up-server considered "at capacity".
  double depth_slo = 16.0;
  /// EWMA smoothing factor in (0, 1]: applied per completion to the
  /// tardiness signal and per arrival to the depth signal.
  double ewma_alpha = 0.2;
  /// SLA weight tiers, strictly ascending. At brownout level k
  /// (1-based), dependency-free arrivals with weight below
  /// weight_tiers[min(k, tiers) - 1] are shed; deeper overload raises
  /// the admitted-weight floor tier by tier.
  std::vector<double> weight_tiers = {1.0, 4.0, 16.0};
  /// Severity at which the circuit breaker trips wide open.
  double breaker_trip_severity = 4.0;
  /// Seconds the breaker stays open before probing again (half-open).
  SimTime breaker_cooldown = 5.0;
  /// Crash-aware severity: fraction of servers down considered "at
  /// capacity" (severity 1.0). 0 disables the signal (the historical
  /// behavior — severity then reacts to crashes only indirectly,
  /// through the tardiness/depth the shrunken pool causes). With e.g.
  /// capacity_slo = 0.5, half the farm being down alone browns the
  /// controller out, so admission tightens the moment workers crash
  /// instead of waiting for the backlog to build.
  double capacity_slo = 0.0;
};

/// Brownout / circuit-breaker admission driven by *observed* load, not
/// oracle estimates: the host reports measured completion tardiness via
/// ObserveCompletion and the controller maintains EWMAs of tardiness
/// and ready-queue depth (normalized per up-server). Severity is the
/// worse of the two signals relative to its SLO:
///   - severity <= 1: healthy, admit everything;
///   - 1 < severity < trip: browned out — shed low-SLA-weight arrivals,
///     raising the admitted-weight floor one tier per unit of overload;
///   - severity >= trip: the breaker opens — only top-tier arrivals are
///     admitted for breaker_cooldown seconds, then ONE probe arrival is
///     admitted (half-open) and its observed tardiness decides between
///     closing the breaker and re-opening it.
/// Only dependency-free (root) arrivals are ever shed, matching the
/// other controllers. Deterministic given the same call sequence.
class BrownoutAdmission final : public AdmissionController {
 public:
  explicit BrownoutAdmission(BrownoutAdmissionOptions options = {});

  std::string name() const override;
  AdmissionDecision Decide(TxnId id, SimTime now) override;
  void ObserveCompletion(TxnId id, SimTime tardiness, SimTime now) override;

  /// Introspection for tests and benches.
  double tardiness_ewma() const { return tardy_ewma_; }
  double depth_ewma() const { return depth_ewma_; }
  enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };
  BreakerState breaker_state() const { return breaker_; }

 protected:
  void Reset() override;

 private:
  double SeverityLocked() const;

  BrownoutAdmissionOptions options_;
  double tardy_ewma_ = 0.0;
  double depth_ewma_ = 0.0;
  BreakerState breaker_ = BreakerState::kClosed;
  SimTime open_until_ = 0.0;
  TxnId probe_ = kInvalidTxn;  // half-open probe awaiting its completion
};

/// Convenience factories for SimOptions::admission.
AdmissionFactory MakeQueueDepthAdmission(
    QueueDepthAdmissionOptions options = {});
AdmissionFactory MakeFeasibilityAdmission(
    FeasibilityAdmissionOptions options = {});
AdmissionFactory MakeBrownoutAdmission(BrownoutAdmissionOptions options = {});

}  // namespace webtx

#endif  // WEBTX_SCHED_ADMISSION_H_
