#ifndef WEBTX_SCHED_POLICY_FACTORY_H_
#define WEBTX_SCHED_POLICY_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sched/scheduler_policy.h"

namespace webtx {

/// Creates a policy from a textual spec, for CLI tools and examples.
///
/// Supported specs (case-sensitive):
///   "FCFS" | "EDF" | "SRPT" | "LS" | "HDF" | "HVF"
///   "MIX" | "MIX(<beta>)"           static EDF/value blend [Buttazzo 95]
///   "ASETS"                       transaction-level ASETS
///   "Ready"                       the Wait-queue baseline (Sec. III-B)
///   "ASETS*"                      workflow-level general ASETS*
///   "<inner>-BA(time=<rate>)"     balance-aware wrapper, time-based
///   "<inner>-BA(count=<rate>)"    balance-aware wrapper, count-based
///   "<base>-sharded"              sharded-state implementation variant
///                                 (per-shard queues + deterministic
///                                 work stealing; byte-identical
///                                 schedules — supported for the
///                                 single-queue policies, "ASETS*" and
///                                 "ASETS*-lazy")
///
/// Examples: "ASETS*-BA(time=0.005)", "ASETS-BA(count=0.05)",
/// "SRPT-sharded", "ASETS*-lazy-sharded".
Result<std::unique_ptr<SchedulerPolicy>> CreatePolicy(const std::string& spec);

/// Names of the plain (non-wrapped) policies the factory knows about.
std::vector<std::string> KnownPolicyNames();

}  // namespace webtx

#endif  // WEBTX_SCHED_POLICY_FACTORY_H_
