#include "sched/policy_factory.h"

#include <utility>

#include "common/csv.h"
#include "sched/policies/asets.h"
#include "sched/policies/asets_star.h"
#include "sched/policies/asets_star_sharded.h"
#include "sched/policies/balance_aware.h"
#include "sched/policies/mix.h"
#include "sched/policies/single_queue_policies.h"

namespace webtx {

namespace {

std::unique_ptr<SchedulerPolicy> CreatePlain(const std::string& name) {
  if (name == "FCFS") return std::make_unique<FcfsPolicy>();
  if (name == "EDF") return std::make_unique<EdfPolicy>();
  if (name == "SRPT") return std::make_unique<SrptPolicy>();
  if (name == "LS") return std::make_unique<LsPolicy>();
  if (name == "HDF") return std::make_unique<HdfPolicy>();
  if (name == "HVF") return std::make_unique<HvfPolicy>();
  if (name == "ASETS") return std::make_unique<AsetsPolicy>();
  if (name == "Ready") return std::make_unique<ReadyPolicy>();
  if (name == "ASETS*") return std::make_unique<AsetsStarPolicy>();
  // Same decision procedure over the lazy-delete heap; byte-identical
  // schedules to "ASETS*" (pinned by the huge-structures differential
  // matrix). Deliberately NOT in KnownPolicyNames(): it is an
  // implementation variant for huge-scale runs, not a distinct policy.
  if (name == "ASETS*-lazy") return std::make_unique<AsetsStarLazyPolicy>();
  return nullptr;
}

/// "<base>-sharded": the sharded-state implementation variant of `base`
/// (see ShardedPolicyState in sched/scheduler_policy.h). Byte-identical
/// schedules to the base policy — pinned by the sharded differential
/// matrix — so, like "ASETS*-lazy", these are NOT distinct policies and
/// stay out of KnownPolicyNames().
std::unique_ptr<SchedulerPolicy> CreateSharded(const std::string& base) {
  if (base == "ASETS*") return std::make_unique<AsetsStarShardedPolicy>();
  if (base == "ASETS*-lazy") {
    return std::make_unique<AsetsStarShardedLazyPolicy>();
  }
  auto inner = CreatePlain(base);
  if (auto* sq = dynamic_cast<SingleQueuePolicy*>(inner.get())) {
    sq->EnableSharded();
    return inner;
  }
  return nullptr;
}

}  // namespace

Result<std::unique_ptr<SchedulerPolicy>> CreatePolicy(
    const std::string& spec) {
  // Sharded-state variant: "<base>-sharded".
  const std::string sharded_suffix = "-sharded";
  if (spec.size() > sharded_suffix.size() &&
      spec.compare(spec.size() - sharded_suffix.size(),
                   sharded_suffix.size(), sharded_suffix) == 0) {
    const std::string base =
        spec.substr(0, spec.size() - sharded_suffix.size());
    auto policy = CreateSharded(base);
    if (policy == nullptr) {
      return Status::NotFound("policy '" + base +
                              "' has no sharded-state variant");
    }
    return policy;
  }

  // MIX with an explicit blend: "MIX(<beta>)"; bare "MIX" uses beta=0.5.
  if (spec == "MIX") {
    return std::unique_ptr<SchedulerPolicy>(std::make_unique<MixPolicy>());
  }
  if (spec.rfind("MIX(", 0) == 0 && spec.back() == ')') {
    WEBTX_ASSIGN_OR_RETURN(
        const double beta, ParseDouble(spec.substr(4, spec.size() - 5)));
    if (beta < 0.0 || beta > 1.0) {
      return Status::InvalidArgument("MIX beta must be in [0, 1]: " + spec);
    }
    return std::unique_ptr<SchedulerPolicy>(
        std::make_unique<MixPolicy>(beta));
  }

  // Balance-aware wrapper syntax: "<inner>-BA(<mode>=<rate>)".
  const std::string marker = "-BA(";
  const size_t pos = spec.find(marker);
  if (pos != std::string::npos) {
    if (spec.empty() || spec.back() != ')') {
      return Status::InvalidArgument("malformed policy spec: " + spec);
    }
    const std::string inner_name = spec.substr(0, pos);
    const std::string args =
        spec.substr(pos + marker.size(),
                    spec.size() - pos - marker.size() - 1);
    const size_t eq = args.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("missing '=' in policy spec: " + spec);
    }
    const std::string mode_name = args.substr(0, eq);
    BalanceAwareOptions options;
    if (mode_name == "time") {
      options.mode = ActivationMode::kTimeBased;
    } else if (mode_name == "count") {
      options.mode = ActivationMode::kCountBased;
    } else {
      return Status::InvalidArgument("unknown activation mode '" + mode_name +
                                     "' in " + spec);
    }
    WEBTX_ASSIGN_OR_RETURN(options.rate, ParseDouble(args.substr(eq + 1)));
    if (options.rate <= 0.0) {
      return Status::InvalidArgument("activation rate must be positive: " +
                                     spec);
    }
    auto inner = CreatePlain(inner_name);
    if (inner == nullptr) {
      return Status::NotFound("unknown inner policy '" + inner_name + "'");
    }
    return std::unique_ptr<SchedulerPolicy>(
        std::make_unique<BalanceAwarePolicy>(std::move(inner), options));
  }

  auto policy = CreatePlain(spec);
  if (policy == nullptr) {
    return Status::NotFound("unknown policy '" + spec + "'");
  }
  return policy;
}

std::vector<std::string> KnownPolicyNames() {
  return {"FCFS", "EDF", "SRPT", "LS", "HDF", "HVF", "ASETS", "Ready",
          "ASETS*"};
}

}  // namespace webtx
