#ifndef WEBTX_SCHED_POLICIES_SINGLE_QUEUE_POLICIES_H_
#define WEBTX_SCHED_POLICIES_SINGLE_QUEUE_POLICIES_H_

#include <string>
#include <utility>
#include <vector>

#include "sched/indexed_priority_queue.h"
#include "sched/scheduler_policy.h"

namespace webtx {

/// Base for the classic priority policies of Sec. II-C: one priority queue
/// over the ready transactions, ordered by a per-policy key (smallest key =
/// highest priority). Subclasses provide the key; keys that depend on
/// remaining processing time are refreshed via OnRemainingUpdated.
///
/// Sharded-state variant (factory spec "<name>-sharded"): EnableSharded()
/// before Bind splits the queue into one IndexedPriorityQueue per shard
/// (shard = server, assigned by the simulator via BindShards). A ready
/// transaction lives in exactly one shard — initially id % num_shards,
/// then wherever it was last dispatched (OnPlaced steals it into the
/// placing server's shard, key preserved). Picks take the lexicographic
/// (key, id) minimum over the shard tops, which is exactly the pop order
/// of the single global queue, so schedules are byte-identical to the
/// global variant (pinned by tests/sim/sharded_differential_test.cc).
/// Without EnableSharded (or when BindShards is never called) everything
/// routes through shard 0 — the historical single-queue behavior.
class SingleQueuePolicy : public SchedulerPolicy,
                          public ShardedPolicyState {
 public:
  void OnReady(TxnId id, SimTime now) override;
  void OnCompletion(TxnId id, SimTime now) override;
  void OnRemainingUpdated(TxnId id, SimTime now) override;
  TxnId PickNext(SimTime now) override;
  TxnId PickNextExcluding(SimTime now,
                          const std::vector<TxnId>& exclude) override;
  void PickBatch(SimTime now, size_t k, std::vector<TxnId>& out) override;
  /// Policies with time-independent keys (FCFS, EDF, HVF) never react to
  /// OnRemainingUpdated, so the simulator may skip the calls outright.
  bool WantsRemainingUpdates() const override { return RemainingSensitive(); }

  /// Opts into the sharded-state protocol; must precede Bind. Called by
  /// the factory for "<name>-sharded" specs.
  void EnableSharded() { sharded_ = true; }

  // ShardedPolicyState (only reachable after EnableSharded):
  ShardedPolicyState* AsShardedState() override {
    return sharded_ ? this : nullptr;
  }
  void BindShards(uint32_t num_shards) override;
  void OnPlaced(TxnId id, uint32_t server, SimTime now) override;
  uint64_t steal_count() const override { return steals_; }

  /// Number of ready transactions currently queued (over all shards).
  size_t queue_size() const;

 protected:
  void Reset() override;

  /// Priority key for a ready transaction; smaller runs first.
  virtual double KeyFor(TxnId id, SimTime now) const = 0;

  /// True when KeyFor depends on remaining processing time, so the running
  /// transaction needs a key refresh at scheduling points.
  virtual bool RemainingSensitive() const { return false; }

  /// Subclass display name, with the sharded-variant suffix applied.
  std::string DecoratedName(const char* base) const {
    return sharded_ ? std::string(base) + "-sharded" : base;
  }

 private:
  /// Shard owning transaction `id` right now.
  uint32_t OwnerOf(TxnId id) const {
    return num_shards_ == 1 ? 0 : owner_[id];
  }

  /// Index of the shard holding the global (key, id) minimum, or -1 when
  /// every shard is empty.
  int TopShard() const;

  std::vector<IndexedPriorityQueue> queues_;  // one per shard; [0] only
                                              // until BindShards
  std::vector<uint32_t> owner_;               // TxnId -> shard (sharded only)
  uint32_t num_shards_ = 1;
  bool sharded_ = false;
  uint64_t steals_ = 0;
  /// Scratch for PickNextExcluding's park-and-restore (hoisted so the
  /// hot path stays allocation-free after warm-up).
  std::vector<std::pair<TxnId, double>> parked_;
  /// Scratch for PickBatch's read-only top-k heap walk (ditto).
  IndexedPriorityQueue::TopKScratch frontier_;
};

/// First-Come-First-Served: key = arrival time.
class FcfsPolicy final : public SingleQueuePolicy {
 public:
  std::string name() const override { return DecoratedName("FCFS"); }

 protected:
  double KeyFor(TxnId id, SimTime now) const override;
};

/// Earliest-Deadline-First (priority 1/d_i): key = absolute deadline.
/// Optimal when the system can meet every deadline; suffers the domino
/// effect under overload (Sec. III-A1).
class EdfPolicy final : public SingleQueuePolicy {
 public:
  std::string name() const override { return DecoratedName("EDF"); }

 protected:
  double KeyFor(TxnId id, SimTime now) const override;
};

/// Shortest-Remaining-Processing-Time (priority 1/r_i): key = remaining
/// time. Optimal for mean response time, hence for tardiness when every
/// deadline is already missed [Schroeder & Harchol-Balter].
class SrptPolicy final : public SingleQueuePolicy {
 public:
  std::string name() const override { return DecoratedName("SRPT"); }

 protected:
  double KeyFor(TxnId id, SimTime now) const override;
  bool RemainingSensitive() const override { return true; }
};

/// Least-Slack first (priority 1/s_i) [Abbott & Garcia-Molina]: key =
/// slack d_i - (now + r_i). All slacks shift equally with `now`, so the
/// time-independent key d_i - r_i preserves the ordering.
class LsPolicy final : public SingleQueuePolicy {
 public:
  std::string name() const override { return DecoratedName("LS"); }

 protected:
  double KeyFor(TxnId id, SimTime now) const override;
  bool RemainingSensitive() const override { return true; }
};

/// Highest-Density-First (priority w_i/r_i): key = r_i / w_i. Optimal for
/// weighted tardiness when every deadline is already missed
/// [Becchetti et al. 2001]; reduces to SRPT under equal weights.
class HdfPolicy final : public SingleQueuePolicy {
 public:
  std::string name() const override { return DecoratedName("HDF"); }

 protected:
  double KeyFor(TxnId id, SimTime now) const override;
  bool RemainingSensitive() const override { return true; }
};

/// Highest-Value-First (priority w_i) [Buttazzo et al. 1995]: key = -w_i.
/// Deadline- and length-oblivious; included as an extra baseline.
class HvfPolicy final : public SingleQueuePolicy {
 public:
  std::string name() const override { return DecoratedName("HVF"); }

 protected:
  double KeyFor(TxnId id, SimTime now) const override;
};

}  // namespace webtx

#endif  // WEBTX_SCHED_POLICIES_SINGLE_QUEUE_POLICIES_H_
