#ifndef WEBTX_SCHED_POLICIES_SINGLE_QUEUE_POLICIES_H_
#define WEBTX_SCHED_POLICIES_SINGLE_QUEUE_POLICIES_H_

#include <string>

#include "sched/indexed_priority_queue.h"
#include "sched/scheduler_policy.h"

namespace webtx {

/// Base for the classic priority policies of Sec. II-C: one priority queue
/// over the ready transactions, ordered by a per-policy key (smallest key =
/// highest priority). Subclasses provide the key; keys that depend on
/// remaining processing time are refreshed via OnRemainingUpdated.
class SingleQueuePolicy : public SchedulerPolicy {
 public:
  void OnReady(TxnId id, SimTime now) override;
  void OnCompletion(TxnId id, SimTime now) override;
  void OnRemainingUpdated(TxnId id, SimTime now) override;
  TxnId PickNext(SimTime now) override;
  TxnId PickNextExcluding(SimTime now,
                          const std::vector<TxnId>& exclude) override;

  /// Number of ready transactions currently queued.
  size_t queue_size() const { return queue_.size(); }

 protected:
  void Reset() override;

  /// Priority key for a ready transaction; smaller runs first.
  virtual double KeyFor(TxnId id, SimTime now) const = 0;

  /// True when KeyFor depends on remaining processing time, so the running
  /// transaction needs a key refresh at scheduling points.
  virtual bool RemainingSensitive() const { return false; }

 private:
  IndexedPriorityQueue queue_;
};

/// First-Come-First-Served: key = arrival time.
class FcfsPolicy final : public SingleQueuePolicy {
 public:
  std::string name() const override { return "FCFS"; }

 protected:
  double KeyFor(TxnId id, SimTime now) const override;
};

/// Earliest-Deadline-First (priority 1/d_i): key = absolute deadline.
/// Optimal when the system can meet every deadline; suffers the domino
/// effect under overload (Sec. III-A1).
class EdfPolicy final : public SingleQueuePolicy {
 public:
  std::string name() const override { return "EDF"; }

 protected:
  double KeyFor(TxnId id, SimTime now) const override;
};

/// Shortest-Remaining-Processing-Time (priority 1/r_i): key = remaining
/// time. Optimal for mean response time, hence for tardiness when every
/// deadline is already missed [Schroeder & Harchol-Balter].
class SrptPolicy final : public SingleQueuePolicy {
 public:
  std::string name() const override { return "SRPT"; }

 protected:
  double KeyFor(TxnId id, SimTime now) const override;
  bool RemainingSensitive() const override { return true; }
};

/// Least-Slack first (priority 1/s_i) [Abbott & Garcia-Molina]: key =
/// slack d_i - (now + r_i). All slacks shift equally with `now`, so the
/// time-independent key d_i - r_i preserves the ordering.
class LsPolicy final : public SingleQueuePolicy {
 public:
  std::string name() const override { return "LS"; }

 protected:
  double KeyFor(TxnId id, SimTime now) const override;
  bool RemainingSensitive() const override { return true; }
};

/// Highest-Density-First (priority w_i/r_i): key = r_i / w_i. Optimal for
/// weighted tardiness when every deadline is already missed
/// [Becchetti et al. 2001]; reduces to SRPT under equal weights.
class HdfPolicy final : public SingleQueuePolicy {
 public:
  std::string name() const override { return "HDF"; }

 protected:
  double KeyFor(TxnId id, SimTime now) const override;
  bool RemainingSensitive() const override { return true; }
};

/// Highest-Value-First (priority w_i) [Buttazzo et al. 1995]: key = -w_i.
/// Deadline- and length-oblivious; included as an extra baseline.
class HvfPolicy final : public SingleQueuePolicy {
 public:
  std::string name() const override { return "HVF"; }

 protected:
  double KeyFor(TxnId id, SimTime now) const override;
};

}  // namespace webtx

#endif  // WEBTX_SCHED_POLICIES_SINGLE_QUEUE_POLICIES_H_
