#ifndef WEBTX_SCHED_POLICIES_ASETS_H_
#define WEBTX_SCHED_POLICIES_ASETS_H_

#include <string>

#include "sched/indexed_priority_queue.h"
#include "sched/scheduler_policy.h"

namespace webtx {

/// Knobs exposed for the ablation benches; the defaults reproduce the paper
/// (Eq. (1) and the Fig. 7 pseudo-code).
struct AsetsOptions {
  /// Clamp slacks at zero inside the negative-impact formula. The default
  /// matches Eq. (1)/Fig. 7, where the tardy side contributes no slack.
  bool clamp_slack = true;
  /// Break impact ties toward the EDF side. Fig. 7 uses a strict '<'
  /// (ties run the HDF side); Sec. III-B's prose uses '<=' (ties run the
  /// EDF side). Default follows the pseudo-code.
  bool ties_to_edf = false;
};

/// ASETS: the transaction-level adaptive hybrid of EDF and HDF/SRPT
/// (Sec. III-A; [Sharaf et al., SMDB 2008]).
///
/// Ready transactions that can still meet their deadline live in the
/// *EDF-List* (ordered by deadline, Definition 6); the rest live in the
/// *HDF-List* (ordered by r_i/w_i — SRPT when weights are equal,
/// Definition 7). At each scheduling point the policy compares the
/// negative impact of the two list heads and runs the cheaper one:
///
///   impact(EDF head)  = r_EDF * w_HDF                       (Fig. 7 l.15)
///   impact(HDF head)  = max(0, r_HDF - s_EDF) * w_EDF       (Fig. 7 l.16)
///
/// With equal weights this is exactly Eq. (1). Transactions migrate from
/// the EDF-List to the HDF-List when their deadline becomes unreachable; a
/// third queue keyed by the critical time d_i - r_i makes each migration
/// O(log N) amortized, so every scheduler event is O(log N).
class AsetsPolicy : public SchedulerPolicy {
 public:
  explicit AsetsPolicy(AsetsOptions options = {}) : options_(options) {}

  std::string name() const override { return "ASETS"; }

  void OnReady(TxnId id, SimTime now) override;
  void OnCompletion(TxnId id, SimTime now) override;
  void OnRemainingUpdated(TxnId id, SimTime now) override;
  TxnId PickNext(SimTime now) override;
  TxnId PickNextExcluding(SimTime now,
                          const std::vector<TxnId>& exclude) override;
  void PickBatch(SimTime now, size_t k, std::vector<TxnId>& out) override;

  /// Introspection for tests: current list sizes.
  size_t edf_list_size() const { return edf_.size(); }
  size_t hdf_list_size() const { return hdf_.size(); }

 protected:
  void Reset() override;

 private:
  /// Moves every EDF-List member whose deadline became unreachable
  /// (now + r_i > d_i) to the HDF-List.
  void MigrateDue(SimTime now);

  double HdfKey(TxnId id) const;

  /// The Fig. 7 head compare: true when the EDF-List head `e` should run
  /// ahead of the HDF-List head `h`. Shared by PickNext and PickBatch so
  /// the batched round cannot drift from the single pick.
  bool RunEdfHead(TxnId e, TxnId h, SimTime now) const;

  AsetsOptions options_;
  IndexedPriorityQueue edf_;       // key: deadline d_i
  IndexedPriorityQueue hdf_;       // key: r_i / w_i
  IndexedPriorityQueue critical_;  // EDF-List members, key: d_i - r_i
  /// PickBatch scratch (hoisted so batched rounds are allocation-free
  /// after warm-up): read-only top-k streams of each list plus the
  /// heap-walk frontier.
  std::vector<TxnId> edf_stream_;
  std::vector<TxnId> hdf_stream_;
  IndexedPriorityQueue::TopKScratch frontier_;
};

/// The *Ready* baseline of Sec. III-B: dependent transactions sit in an
/// opaque Wait queue until runnable, and transaction-level ASETS schedules
/// the ready ones. Since the simulator only feeds policies OnReady for
/// runnable transactions, this is ASETS by construction — the class exists
/// to give the baseline its paper name and to contrast with the
/// workflow-aware ASETS*.
class ReadyPolicy final : public AsetsPolicy {
 public:
  explicit ReadyPolicy(AsetsOptions options = {}) : AsetsPolicy(options) {}

  std::string name() const override { return "Ready"; }
};

}  // namespace webtx

#endif  // WEBTX_SCHED_POLICIES_ASETS_H_
