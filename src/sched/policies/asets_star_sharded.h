#ifndef WEBTX_SCHED_POLICIES_ASETS_STAR_SHARDED_H_
#define WEBTX_SCHED_POLICIES_ASETS_STAR_SHARDED_H_

#include <algorithm>
#include <future>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "common/thread_pool.h"
#include "sched/indexed_priority_queue.h"
#include "sched/lazy_delete_heap.h"
#include "sched/policies/asets_star.h"
#include "sched/scheduler_policy.h"
#include "txn/workflow.h"

namespace webtx {

/// ASETS* with per-shard policy state ("ASETS*-sharded" in the factory):
/// every workflow is owned by a shard (shard = server) — initially
/// wid % num_shards, then the shard of the server its head was last
/// dispatched to (OnPlaced steals ownership into the placing shard, the
/// deterministic handoff ordered by the simulator's ascending-server
/// placement sweep).
///
/// The *physical* partition of the EDF-/HDF-/critical lists is sized to
/// the parallelism actually available, because entry location is
/// decision-neutral (see below) while ownership is what the parallel
/// flush needs:
///   - Serial rounds (no shard pool) keep all filings in one queue
///     triple, so Touch and PickNext run the exact global-policy access
///     pattern — no per-pick k-way merge, no steal relocations — and the
///     serial path stays within noise of the global-state policy.
///   - The first round that flushes on the shard pool expands to one
///     triple per shard (each workflow re-filed under its owner, keys
///     preserved), so concurrent Touches write disjoint queue slices and
///     OnPlaced relocates filings eagerly to keep the buckets aligned
///     with ownership.
/// Steal accounting is identical in both regimes: a placement that moves
/// a filed workflow to a new owner counts once, whether or not a
/// physical relocation was needed.
///
/// Byte-identity with the global AsetsStarPolicyT: both queue types pop
/// in the content-determined (key, wid) total order, so the merge over
/// per-shard tops selects exactly the workflow the one global queue
/// would, and every per-workflow operation (Touch, due-migration,
/// exclusion re-derivation) depends only on that workflow's own state —
/// never on which shard (or how many shards) file it. That location
/// neutrality is what licenses sizing the physical partition to the
/// parallelism. Pinned across the full differential matrix by
/// tests/sim/sharded_differential_test.cc.
///
/// PrepareRound fans the dirty-set flush out on the simulator's shard
/// pool when a round has enough dirty workflows: buckets are keyed by
/// owner shard, so concurrent Touches write disjoint states_/queue
/// slices (raced only against const view reads; proven race-free under
/// the tsan preset).
///
/// Instantiations (compiled once in asets_star_sharded.cc):
///   - AsetsStarShardedPolicy     over IndexedPriorityQueue;
///   - AsetsStarShardedLazyPolicy over LazyDeleteHeap
///     ("ASETS*-lazy-sharded", for huge-scale runs).
template <typename Queue>
class AsetsStarShardedPolicyT final : public SchedulerPolicy,
                                      public ShardedPolicyState {
 public:
  explicit AsetsStarShardedPolicyT(AsetsStarOptions options = {})
      : options_(options), shards_(1) {}

  std::string name() const override {
    return std::is_same_v<Queue, LazyDeleteHeap> ? "ASETS*-lazy-sharded"
                                                 : "ASETS*-sharded";
  }

  void Bind(const SimView& view) override;
  void OnArrival(TxnId id, SimTime now) override;
  void OnReady(TxnId id, SimTime now) override;
  void OnCompletion(TxnId id, SimTime now) override;
  void OnRemainingUpdated(TxnId id, SimTime now) override;
  void OnDropped(TxnId id, SimTime now) override;
  void OnMigrated(TxnId id, SimTime now) override;
  TxnId PickNext(SimTime now) override;
  TxnId PickNextExcluding(SimTime now,
                          const std::vector<TxnId>& exclude) override;

  // ShardedPolicyState:
  ShardedPolicyState* AsShardedState() override { return this; }
  void BindShards(uint32_t num_shards) override;
  void PrepareRound(SimTime now, ThreadPool* pool) override;
  void OnPlaced(TxnId id, uint32_t server, SimTime now) override;
  uint64_t steal_count() const override { return steals_; }

  /// Minimum dirty workflows in a round before PrepareRound fans the
  /// flush out on the pool (below it, the serial flush at PickNext is
  /// cheaper than the dispatch). Tests set 0 to force the parallel path.
  void set_parallel_flush_threshold(size_t n) { parallel_flush_min_ = n; }

  /// Introspection for tests (sums over shards). Non-const: flushes
  /// pending dirty refiles first.
  size_t edf_list_size();
  size_t hdf_list_size();

 protected:
  void Reset() override;

 private:
  struct WorkflowState {
    bool active = false;  // has at least one ready member
    TxnId head = kInvalidTxn;
    SimTime rep_deadline = 0.0;
    SimTime rep_remaining = 0.0;
    double rep_weight = 1.0;
    size_t live_begin = 0;
    size_t live_size = 0;
  };

  /// One shard's slice of the three lists; once the physical partition
  /// is expanded, a workflow's filings live entirely in its owner
  /// shard's triple.
  struct ShardQueues {
    Queue edf;       // key: d_rep
    Queue hdf;       // key: r_rep / w_rep
    Queue critical;  // EDF-List members, key: d_rep - r_rep
  };

  /// Physical shard holding workflow `wid`'s filings: shard 0 until the
  /// partition is expanded, the owner shard afterwards.
  uint32_t PhysShardOf(WorkflowId wid) const {
    return phys_shards_ == 1 ? 0 : wf_owner_[wid];
  }

  /// Splits the single physical triple into one per shard, re-filing
  /// every entry under its owner with keys preserved (decision-neutral).
  /// Called by the first PrepareRound that flushes on the pool.
  void ExpandShards();

  void AddLiveMember(WorkflowId wid, TxnId id);
  void RemoveLiveMember(WorkflowId wid, TxnId id);
  void Touch(WorkflowId wid, SimTime now);
  void MarkDirty(WorkflowId wid, SimTime now);
  void MarkWorkflowsOf(TxnId id, SimTime now);
  void FlushDirty(SimTime now);
  void MigrateDue(SimTime now);

  /// Shard holding the globally least (key, wid) top of the EDF (or HDF)
  /// lists, or -1 when all are empty. The merge is the only cross-shard
  /// read of a pick.
  int TopShardEdf();
  int TopShardHdf();

  double HdfKey(const WorkflowState& ws) const {
    return ws.rep_remaining / ws.rep_weight;
  }
  bool HeadBetter(TxnId a, TxnId b) const;
  bool IsExcluded(TxnId id) const;

  AsetsStarOptions options_;
  std::vector<WorkflowState> states_;
  std::vector<TxnId> live_arena_;
  std::vector<TxnId> excluded_heads_;
  std::vector<char> dirty_;
  std::vector<WorkflowId> dirty_list_;
  SimTime dirty_now_ = 0.0;
  std::vector<ShardQueues> shards_;   // size phys_shards_
  std::vector<uint32_t> wf_owner_;    // WorkflowId -> owner shard
  uint32_t num_shards_ = 1;           // ownership / steal domain
  uint32_t phys_shards_ = 1;          // physical queue triples
  uint64_t steals_ = 0;
  size_t parallel_flush_min_ = 64;
  /// Per-shard dirty buckets, reused across PrepareRound calls.
  std::vector<std::vector<WorkflowId>> flush_buckets_;
};

/// Sharded ASETS* over the strict indexed binary heap.
using AsetsStarShardedPolicy = AsetsStarShardedPolicyT<IndexedPriorityQueue>;

/// Sharded ASETS* over the lazy-delete heap ("ASETS*-lazy-sharded").
using AsetsStarShardedLazyPolicy = AsetsStarShardedPolicyT<LazyDeleteHeap>;

extern template class AsetsStarShardedPolicyT<IndexedPriorityQueue>;
extern template class AsetsStarShardedPolicyT<LazyDeleteHeap>;

// ---------------------------------------------------------------------------
// Implementation (template; the two supported instantiations are compiled
// once in asets_star_sharded.cc). The per-workflow logic is a line-for-line
// port of AsetsStarPolicyT (sched/policies/asets_star.h) with every queue
// access routed through the workflow's physical shard; see that header for
// the policy semantics and the incremental-maintenance contract.

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::Bind(const SimView& v) {
  SchedulerPolicy::Bind(v);
  const size_t num_wf = v.workflows().num_workflows();
  states_.assign(num_wf, WorkflowState{});
  size_t total_members = 0;
  for (size_t wid = 0; wid < num_wf; ++wid) {
    states_[wid].live_begin = total_members;
    total_members +=
        v.workflows().workflow(static_cast<WorkflowId>(wid)).members.size();
  }
  live_arena_.assign(total_members, kInvalidTxn);
  dirty_.assign(num_wf, 0);
  dirty_list_.clear();
  dirty_list_.reserve(num_wf);
  dirty_now_ = 0.0;
  shards_[0].edf.Reserve(num_wf);
  shards_[0].hdf.Reserve(num_wf);
  shards_[0].critical.Reserve(num_wf);
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::Reset() {
  states_.clear();
  live_arena_.clear();
  excluded_heads_.clear();
  dirty_.clear();
  dirty_list_.clear();
  dirty_now_ = 0.0;
  // Back to one physical shard until the next parallel round; shard 0
  // keeps its capacity so a warm re-Bind stays allocation-free.
  shards_.resize(1);
  shards_[0].edf.Clear();
  shards_[0].hdf.Clear();
  shards_[0].critical.Clear();
  num_shards_ = 1;
  phys_shards_ = 1;
  steals_ = 0;
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::BindShards(uint32_t num_shards) {
  WEBTX_DCHECK(dirty_list_.empty()) << "BindShards after events";
  num_shards_ = std::max(1u, num_shards);
  const size_t num_wf = states_.size();
  // Physically stay at one triple: serial rounds never pay the k-way
  // partition, and the first pooled flush expands on demand.
  phys_shards_ = 1;
  shards_.resize(1);
  shards_[0].edf.Clear();
  shards_[0].hdf.Clear();
  shards_[0].critical.Clear();
  shards_[0].edf.Reserve(num_wf);
  shards_[0].hdf.Reserve(num_wf);
  shards_[0].critical.Reserve(num_wf);
  wf_owner_.resize(num_wf);
  for (size_t wid = 0; wid < num_wf; ++wid) {
    wf_owner_[wid] = static_cast<uint32_t>(wid % num_shards_);
  }
  steals_ = 0;
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::ExpandShards() {
  const size_t num_wf = states_.size();
  shards_.resize(num_shards_);
  for (uint32_t s = 1; s < num_shards_; ++s) {
    ShardQueues& sq = shards_[s];
    sq.edf.Clear();
    sq.hdf.Clear();
    sq.critical.Clear();
    sq.edf.Reserve(num_wf);
    sq.hdf.Reserve(num_wf);
    sq.critical.Reserve(num_wf);
  }
  flush_buckets_.resize(num_shards_);
  for (auto& b : flush_buckets_) {
    b.clear();
    b.reserve(num_wf);
  }
  // Re-file every entry under its owner, keys preserved: relocations
  // never change a merge decision, only which triple pays the ops.
  ShardQueues& from = shards_[0];
  for (size_t i = 0; i < num_wf; ++i) {
    const WorkflowId wid = static_cast<WorkflowId>(i);
    const uint32_t owner = wf_owner_[wid];
    if (owner == 0) continue;
    ShardQueues& to = shards_[owner];
    if (from.edf.Contains(wid)) {
      const double edf_key = from.edf.KeyOf(wid);
      const double critical_key = from.critical.KeyOf(wid);
      from.edf.Erase(wid);
      from.critical.Erase(wid);
      to.edf.Push(wid, edf_key);
      to.critical.Push(wid, critical_key);
    } else if (from.hdf.Contains(wid)) {
      const double hdf_key = from.hdf.KeyOf(wid);
      from.hdf.Erase(wid);
      to.hdf.Push(wid, hdf_key);
    }
  }
  phys_shards_ = num_shards_;
}

template <typename Queue>
bool AsetsStarShardedPolicyT<Queue>::IsExcluded(TxnId id) const {
  return std::find(excluded_heads_.begin(), excluded_heads_.end(), id) !=
         excluded_heads_.end();
}

template <typename Queue>
bool AsetsStarShardedPolicyT<Queue>::HeadBetter(TxnId a, TxnId b) const {
  if (b == kInvalidTxn) return true;
  const TransactionSpec& sa = view().specs()[a];
  const TransactionSpec& sb = view().specs()[b];
  switch (options_.head_rule) {
    case HeadSelectionRule::kEarliestDeadline:
      if (sa.deadline != sb.deadline) return sa.deadline < sb.deadline;
      break;
    case HeadSelectionRule::kShortestRemaining: {
      const SimTime ra = view().remaining(a);
      const SimTime rb = view().remaining(b);
      if (ra != rb) return ra < rb;
      break;
    }
    case HeadSelectionRule::kFifoArrival:
      if (sa.arrival != sb.arrival) return sa.arrival < sb.arrival;
      break;
  }
  return a < b;
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::AddLiveMember(WorkflowId wid, TxnId id) {
  WorkflowState& ws = states_[wid];
  TxnId* live = live_arena_.data() + ws.live_begin;
  WEBTX_DCHECK(std::find(live, live + ws.live_size, id) ==
               live + ws.live_size);
  if (ws.live_size == 0) {
    ws.rep_deadline = asets_star_internal::kInf;
    ws.rep_weight = 0.0;
  }
  live[ws.live_size++] = id;
  const TransactionSpec& spec = view().specs()[id];
  ws.rep_deadline = std::min(ws.rep_deadline, spec.deadline);
  ws.rep_weight = std::max(ws.rep_weight, spec.weight);
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::RemoveLiveMember(WorkflowId wid,
                                                      TxnId id) {
  WorkflowState& ws = states_[wid];
  TxnId* live = live_arena_.data() + ws.live_begin;
  TxnId* const end = live + ws.live_size;
  TxnId* const it = std::find(live, end, id);
  if (it == end) return;  // shed before it ever arrived
  *it = end[-1];
  --ws.live_size;
  ws.rep_deadline = asets_star_internal::kInf;
  ws.rep_weight = 0.0;
  for (size_t i = 0; i < ws.live_size; ++i) {
    const TransactionSpec& spec = view().specs()[live[i]];
    ws.rep_deadline = std::min(ws.rep_deadline, spec.deadline);
    ws.rep_weight = std::max(ws.rep_weight, spec.weight);
  }
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::Touch(WorkflowId wid, SimTime now) {
  WorkflowState& ws = states_[wid];
  SimTime rep_remaining = asets_star_internal::kInf;
  TxnId head = kInvalidTxn;
  const TxnId* live = live_arena_.data() + ws.live_begin;
  for (size_t i = 0; i < ws.live_size; ++i) {
    const TxnId m = live[i];
    rep_remaining = std::min(rep_remaining, view().remaining(m));
    if (view().IsReady(m) && !IsExcluded(m) && HeadBetter(m, head)) {
      head = m;
    }
  }
  ws.rep_remaining = rep_remaining;
  ws.head = head;
  ws.active = head != kInvalidTxn;

  ShardQueues& sq = shards_[PhysShardOf(wid)];
  if (!ws.active) {
    if (sq.edf.Erase(wid)) {
      sq.critical.Erase(wid);
    } else {
      sq.hdf.Erase(wid);
    }
    return;
  }
  if (TimeLessEq(now + ws.rep_remaining, ws.rep_deadline)) {
    if (sq.edf.Contains(wid)) {
      sq.edf.UpdateKeyIfChanged(wid, ws.rep_deadline);
      sq.critical.UpdateKeyIfChanged(wid, ws.rep_deadline - ws.rep_remaining);
    } else {
      sq.hdf.Erase(wid);
      sq.edf.Push(wid, ws.rep_deadline);
      sq.critical.Push(wid, ws.rep_deadline - ws.rep_remaining);
    }
  } else {
    if (sq.hdf.Contains(wid)) {
      sq.hdf.UpdateKeyIfChanged(wid, HdfKey(ws));
    } else {
      if (sq.edf.Erase(wid)) sq.critical.Erase(wid);
      sq.hdf.Push(wid, HdfKey(ws));
    }
  }
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::MarkDirty(WorkflowId wid, SimTime now) {
  dirty_now_ = now;
  if (dirty_[wid]) return;
  dirty_[wid] = 1;
  dirty_list_.push_back(wid);
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::MarkWorkflowsOf(TxnId id, SimTime now) {
  for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
    MarkDirty(wid, now);
  }
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::FlushDirty(SimTime now) {
  for (const WorkflowId wid : dirty_list_) {
    dirty_[wid] = 0;
    Touch(wid, now);
  }
  dirty_list_.clear();
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::PrepareRound(SimTime now,
                                                  ThreadPool* pool) {
  // Below the threshold (or without a pool / without shards) the serial
  // flush at PickNext is cheaper than a dispatch; results are identical
  // either way — a Touch depends only on its own workflow's state, and
  // queue content after a batch of Touches is insertion-order-invariant
  // (both queue types order by (key, wid)).
  if (pool == nullptr || num_shards_ == 1 ||
      dirty_list_.size() < parallel_flush_min_) {
    return;
  }
  // First pooled flush of the run: give each shard its own triple so the
  // tasks below write disjoint slices.
  if (phys_shards_ == 1) ExpandShards();
  for (auto& b : flush_buckets_) b.clear();
  for (const WorkflowId wid : dirty_list_) {
    dirty_[wid] = 0;
    flush_buckets_[wf_owner_[wid]].push_back(wid);
  }
  dirty_list_.clear();
  // One task per shard with work: each touches only its own shard's
  // queue triple and its own workflows' states (buckets are disjoint by
  // construction), against const view reads — no shared mutable state.
  std::vector<std::future<void>> done;
  done.reserve(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    if (flush_buckets_[s].empty()) continue;
    done.push_back(pool->Submit([this, s, now] {
      for (const WorkflowId wid : flush_buckets_[s]) Touch(wid, now);
    }));
  }
  for (std::future<void>& f : done) f.get();
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::OnPlaced(TxnId id, uint32_t server,
                                              SimTime now) {
  (void)now;
  if (num_shards_ == 1) return;
  const uint32_t dest =
      server < num_shards_ ? server : server % num_shards_;
  for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
    const uint32_t src = wf_owner_[wid];
    if (src == dest) continue;
    if (phys_shards_ == 1) {
      // Ownership-only steal: with a single physical triple there is
      // nothing to relocate, but a filed workflow changing owners is
      // the same protocol event the expanded layout pays heap ops for,
      // and must count identically. Touch files/erases a workflow in
      // the same call that sets `active`, so activity IS queue
      // membership — no heap-index probes needed.
      if (states_[wid].active) ++steals_;
    } else {
      // Deterministic steal: the workflow's filings move to the placing
      // server's shard with keys preserved — relocating entries between
      // shards never changes a merge decision, only which shard's
      // queues pay the operations.
      ShardQueues& from = shards_[src];
      ShardQueues& to = shards_[dest];
      if (from.edf.Contains(wid)) {
        const double edf_key = from.edf.KeyOf(wid);
        const double critical_key = from.critical.KeyOf(wid);
        from.edf.Erase(wid);
        from.critical.Erase(wid);
        to.edf.Push(wid, edf_key);
        to.critical.Push(wid, critical_key);
        ++steals_;
      } else if (from.hdf.Contains(wid)) {
        const double hdf_key = from.hdf.KeyOf(wid);
        from.hdf.Erase(wid);
        to.hdf.Push(wid, hdf_key);
        ++steals_;
      }
    }
    wf_owner_[wid] = dest;
  }
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::OnArrival(TxnId id, SimTime now) {
  for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
    AddLiveMember(wid, id);
    MarkDirty(wid, now);
  }
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::OnReady(TxnId id, SimTime now) {
  MarkWorkflowsOf(id, now);
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::OnCompletion(TxnId id, SimTime now) {
  const bool departed = view().IsFinished(id);
  for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
    if (departed) RemoveLiveMember(wid, id);
    MarkDirty(wid, now);
  }
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::OnRemainingUpdated(TxnId id,
                                                        SimTime now) {
  MarkWorkflowsOf(id, now);
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::OnMigrated(TxnId id, SimTime now) {
  MarkWorkflowsOf(id, now);
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::OnDropped(TxnId id, SimTime now) {
  for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
    RemoveLiveMember(wid, id);
    MarkDirty(wid, now);
  }
}

template <typename Queue>
void AsetsStarShardedPolicyT<Queue>::MigrateDue(SimTime now) {
  // Due-migration is per-workflow (a workflow moves iff its own critical
  // key passed `now`), so per-shard drains reach exactly the set the one
  // global critical queue would — order across shards is immaterial.
  for (ShardQueues& sq : shards_) {
    while (!sq.critical.empty() && sq.critical.TopKey() < now - kTimeEpsilon) {
      const WorkflowId wid = sq.critical.Pop();
      const bool present = sq.edf.Erase(wid);
      WEBTX_DCHECK(present) << "critical queue out of sync with EDF-List";
      sq.hdf.Push(wid, HdfKey(states_[wid]));
    }
  }
}

template <typename Queue>
int AsetsStarShardedPolicyT<Queue>::TopShardEdf() {
  int best = -1;
  double best_key = 0.0;
  WorkflowId best_wid = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Queue& q = shards_[s].edf;
    if (q.empty()) continue;
    const double key = q.TopKey();
    const WorkflowId wid = q.Top();
    if (best < 0 || key < best_key ||
        (key == best_key && wid < best_wid)) {
      best = static_cast<int>(s);
      best_key = key;
      best_wid = wid;
    }
  }
  return best;
}

template <typename Queue>
int AsetsStarShardedPolicyT<Queue>::TopShardHdf() {
  int best = -1;
  double best_key = 0.0;
  WorkflowId best_wid = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Queue& q = shards_[s].hdf;
    if (q.empty()) continue;
    const double key = q.TopKey();
    const WorkflowId wid = q.Top();
    if (best < 0 || key < best_key ||
        (key == best_key && wid < best_wid)) {
      best = static_cast<int>(s);
      best_key = key;
      best_wid = wid;
    }
  }
  return best;
}

template <typename Queue>
TxnId AsetsStarShardedPolicyT<Queue>::PickNext(SimTime now) {
  FlushDirty(now);
  MigrateDue(now);
  // The merge over shard tops reproduces the global queues' tops: both
  // queue types pop the (key, wid)-least entry, and each shard's top is
  // its local least, so the lexicographic minimum over tops IS the
  // global least. With one physical shard (serial rounds) the merge
  // degenerates to the global policy's direct top reads.
  int se;
  int sh;
  if (phys_shards_ == 1) {
    se = shards_[0].edf.empty() ? -1 : 0;
    sh = shards_[0].hdf.empty() ? -1 : 0;
  } else {
    se = TopShardEdf();
    sh = TopShardHdf();
  }
  if (se < 0 && sh < 0) return kInvalidTxn;
  if (se < 0) return states_[shards_[sh].hdf.Top()].head;
  if (sh < 0) return states_[shards_[se].edf.Top()].head;

  const WorkflowState& we = states_[shards_[se].edf.Top()];
  const WorkflowState& wh = states_[shards_[sh].hdf.Top()];
  const double r_head_e = view().remaining(we.head);
  const double r_head_h = view().remaining(wh.head);
  const double s_rep_e = we.rep_deadline - (now + we.rep_remaining);
  const double s_rep_h = wh.rep_deadline - (now + wh.rep_remaining);

  double impact_e;  // tardiness added to wh's representative by running we
  double impact_h;  // tardiness added to we's representative by running wh
  if (options_.impact.clamp_slack) {
    impact_e = std::max(0.0, r_head_e - std::max(0.0, s_rep_h)) * wh.rep_weight;
    impact_h = std::max(0.0, r_head_h - std::max(0.0, s_rep_e)) * we.rep_weight;
  } else {
    impact_e = (r_head_e - s_rep_h) * wh.rep_weight;
    impact_h = (r_head_h - s_rep_e) * we.rep_weight;
  }
  const bool run_edf = options_.impact.ties_to_edf ? impact_e <= impact_h
                                                   : impact_e < impact_h;
  return run_edf ? we.head : wh.head;
}

template <typename Queue>
TxnId AsetsStarShardedPolicyT<Queue>::PickNextExcluding(
    SimTime now, const std::vector<TxnId>& exclude) {
  if (exclude.empty()) return PickNext(now);
  // Same protocol as the global policy: settle pending marks unexcluded,
  // re-derive the affected workflows' heads with the exclusion active,
  // decide, and restore with an immediate flush (see asets_star.h for
  // why the restore must not stay batched).
  FlushDirty(now);
  excluded_heads_ = exclude;
  for (const TxnId id : exclude) MarkWorkflowsOf(id, now);
  const TxnId pick = PickNext(now);
  WEBTX_DCHECK(pick == kInvalidTxn || !IsExcluded(pick));
  excluded_heads_.clear();
  for (const TxnId id : exclude) MarkWorkflowsOf(id, now);
  FlushDirty(now);
  return pick;
}

template <typename Queue>
size_t AsetsStarShardedPolicyT<Queue>::edf_list_size() {
  FlushDirty(dirty_now_);
  size_t total = 0;
  for (ShardQueues& sq : shards_) total += sq.edf.size();
  return total;
}

template <typename Queue>
size_t AsetsStarShardedPolicyT<Queue>::hdf_list_size() {
  FlushDirty(dirty_now_);
  size_t total = 0;
  for (ShardQueues& sq : shards_) total += sq.hdf.size();
  return total;
}

}  // namespace webtx

#endif  // WEBTX_SCHED_POLICIES_ASETS_STAR_SHARDED_H_
