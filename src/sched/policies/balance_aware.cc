#include "sched/policies/balance_aware.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace webtx {

BalanceAwarePolicy::BalanceAwarePolicy(
    std::unique_ptr<SchedulerPolicy> inner, BalanceAwareOptions options)
    : inner_(std::move(inner)), options_(options) {
  WEBTX_CHECK(inner_ != nullptr);
  WEBTX_CHECK_GT(options_.rate, 0.0) << "activation rate must be positive";
}

std::string BalanceAwarePolicy::name() const {
  return inner_->name() + "-BA";
}

void BalanceAwarePolicy::Bind(const SimView& v) {
  SchedulerPolicy::Bind(v);
  inner_->Bind(v);
}

void BalanceAwarePolicy::Reset() {
  last_activation_time_ = 0.0;
  points_since_activation_ = 0;
  activations_ = 0;
}

void BalanceAwarePolicy::OnArrival(TxnId id, SimTime now) {
  inner_->OnArrival(id, now);
}
void BalanceAwarePolicy::OnReady(TxnId id, SimTime now) {
  inner_->OnReady(id, now);
}
void BalanceAwarePolicy::OnCompletion(TxnId id, SimTime now) {
  inner_->OnCompletion(id, now);
}
void BalanceAwarePolicy::OnRemainingUpdated(TxnId id, SimTime now) {
  inner_->OnRemainingUpdated(id, now);
}
void BalanceAwarePolicy::OnDropped(TxnId id, SimTime now) {
  inner_->OnDropped(id, now);
}

bool BalanceAwarePolicy::ActivationDue(SimTime now) const {
  switch (options_.mode) {
    case ActivationMode::kTimeBased:
      return now - last_activation_time_ >= 1.0 / options_.rate;
    case ActivationMode::kCountBased: {
      const auto period =
          static_cast<size_t>(std::llround(std::max(1.0, 1.0 / options_.rate)));
      return points_since_activation_ >= period;
    }
  }
  return false;
}

TxnId BalanceAwarePolicy::PickOldest(
    SimTime now, const std::vector<TxnId>& exclude) const {
  TxnId best = kInvalidTxn;
  double best_score = -1.0;
  for (const TxnId id : view().ready_transactions()) {
    if (std::find(exclude.begin(), exclude.end(), id) != exclude.end()) {
      continue;
    }
    const TransactionSpec& spec = view().specs()[id];
    double score = 0.0;
    switch (options_.selection) {
      case OldestSelection::kWeightedOverdue:
        // Current weighted lateness. Candidates that are not overdue are
        // not worth a forced run (skipping them keeps the average-case
        // cost down); returning kInvalidTxn lets PickNext fall through
        // to the inner policy.
        score = spec.weight * std::max(0.0, now - spec.deadline);
        if (score <= 0.0) continue;
        break;
      case OldestSelection::kWeightOverDeadline:
        score = spec.weight / spec.deadline;
        break;
    }
    if (score > best_score || (score == best_score && id < best)) {
      best_score = score;
      best = id;
    }
  }
  return best;
}

TxnId BalanceAwarePolicy::PickNext(SimTime now) {
  return PickNextExcluding(now, {});
}

TxnId BalanceAwarePolicy::PickNextExcluding(
    SimTime now, const std::vector<TxnId>& exclude) {
  // Only the first placement of a multi-server round counts as a
  // scheduling point for activation pacing.
  if (exclude.empty()) ++points_since_activation_;
  if (ActivationDue(now)) {
    const TxnId oldest = PickOldest(now, exclude);
    if (oldest != kInvalidTxn) {
      ++activations_;
      last_activation_time_ = now;
      points_since_activation_ = 0;
      return oldest;
    }
  }
  return inner_->PickNextExcluding(now, exclude);
}

}  // namespace webtx
