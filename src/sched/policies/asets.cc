#include "sched/policies/asets.h"

#include <algorithm>
#include <vector>

namespace webtx {

void AsetsPolicy::Reset() {
  edf_.Clear();
  hdf_.Clear();
  critical_.Clear();
}

double AsetsPolicy::HdfKey(TxnId id) const {
  return view().remaining(id) / view().specs()[id].weight;
}

void AsetsPolicy::OnReady(TxnId id, SimTime now) {
  const TransactionSpec& spec = view().specs()[id];
  const SimTime r = view().remaining(id);
  if (TimeLessEq(now + r, spec.deadline)) {
    edf_.Push(id, spec.deadline);
    critical_.Push(id, spec.deadline - r);
  } else {
    hdf_.Push(id, HdfKey(id));
  }
}

void AsetsPolicy::OnCompletion(TxnId id, SimTime now) {
  (void)now;
  if (edf_.Erase(id)) {
    critical_.Erase(id);
  } else {
    const bool present = hdf_.Erase(id);
    WEBTX_DCHECK(present) << "completed transaction was in neither list";
  }
}

void AsetsPolicy::OnRemainingUpdated(TxnId id, SimTime now) {
  (void)now;
  if (edf_.Contains(id)) {
    // Deadline key is unchanged; only the critical time d_i - r_i moved.
    critical_.Update(id, view().specs()[id].deadline - view().remaining(id));
  } else if (hdf_.Contains(id)) {
    hdf_.Update(id, HdfKey(id));
  }
}

void AsetsPolicy::MigrateDue(SimTime now) {
  while (!critical_.empty() && critical_.TopKey() < now - kTimeEpsilon) {
    const TxnId id = critical_.Pop();
    const bool present = edf_.Erase(id);
    WEBTX_DCHECK(present) << "critical queue out of sync with EDF-List";
    hdf_.Push(id, HdfKey(id));
  }
}

bool AsetsPolicy::RunEdfHead(TxnId e, TxnId h, SimTime now) const {
  const double r_e = view().remaining(e);
  const double r_h = view().remaining(h);
  const double w_e = view().specs()[e].weight;
  const double w_h = view().specs()[h].weight;
  const double s_e = view().SlackAt(e, now);
  const double s_h = view().SlackAt(h, now);

  double impact_e;  // tardiness added to h by running e first
  double impact_h;  // tardiness added to e by running h first
  if (options_.clamp_slack) {
    impact_e = std::max(0.0, r_e - std::max(0.0, s_h)) * w_h;
    impact_h = std::max(0.0, r_h - std::max(0.0, s_e)) * w_e;
  } else {
    impact_e = (r_e - s_h) * w_h;
    impact_h = (r_h - s_e) * w_e;
  }
  return options_.ties_to_edf ? impact_e <= impact_h : impact_e < impact_h;
}

TxnId AsetsPolicy::PickNext(SimTime now) {
  MigrateDue(now);
  if (edf_.empty() && hdf_.empty()) return kInvalidTxn;
  if (edf_.empty()) return hdf_.Top();
  if (hdf_.empty()) return edf_.Top();
  const TxnId e = edf_.Top();
  const TxnId h = hdf_.Top();
  return RunEdfHead(e, h, now) ? e : h;
}

TxnId AsetsPolicy::PickNextExcluding(SimTime now,
                                     const std::vector<TxnId>& exclude) {
  if (exclude.empty()) return PickNext(now);
  // Park excluded winners outside both lists, decide, restore.
  struct Parked {
    TxnId id;
    bool in_edf;
  };
  std::vector<Parked> parked;
  TxnId found = kInvalidTxn;
  while (true) {
    const TxnId pick = PickNext(now);
    if (pick == kInvalidTxn ||
        std::find(exclude.begin(), exclude.end(), pick) == exclude.end()) {
      found = pick;
      break;
    }
    if (edf_.Erase(pick)) {
      critical_.Erase(pick);
      parked.push_back(Parked{pick, true});
    } else {
      const bool present = hdf_.Erase(pick);
      WEBTX_DCHECK(present);
      parked.push_back(Parked{pick, false});
    }
  }
  for (const Parked& p : parked) {
    if (p.in_edf) {
      const SimTime deadline = view().specs()[p.id].deadline;
      edf_.Push(p.id, deadline);
      critical_.Push(p.id, deadline - view().remaining(p.id));
    } else {
      hdf_.Push(p.id, HdfKey(p.id));
    }
  }
  return found;
}

void AsetsPolicy::PickBatch(SimTime now, size_t k, std::vector<TxnId>& out) {
  out.clear();
  if (k == 0) return;
  // In the greedy chain each call runs MigrateDue(now) and then compares
  // the two list heads with the prior picks parked away. At a fixed
  // `now`, parking only shrinks the lists, so migrations past the first
  // call are no-ops, and the successive heads of each list are exactly
  // its top-k in (key, id) order. The whole round therefore reduces to
  // one MigrateDue plus a two-pointer walk over read-only top-k streams
  // of the lists under the shared head compare — identical picks, no
  // erase/re-push round trip (and none of its three-heap sift churn).
  MigrateDue(now);
  edf_stream_.clear();
  hdf_stream_.clear();
  edf_.AppendTopK(k, edf_stream_, frontier_);
  hdf_.AppendTopK(k, hdf_stream_, frontier_);
  size_t i = 0;
  size_t j = 0;
  while (out.size() < k) {
    const bool has_e = i < edf_stream_.size();
    const bool has_h = j < hdf_stream_.size();
    if (!has_e && !has_h) break;
    TxnId pick;
    if (!has_e) {
      pick = hdf_stream_[j++];
    } else if (!has_h) {
      pick = edf_stream_[i++];
    } else if (RunEdfHead(edf_stream_[i], hdf_stream_[j], now)) {
      pick = edf_stream_[i++];
    } else {
      pick = hdf_stream_[j++];
    }
    out.push_back(pick);
  }
}

}  // namespace webtx
