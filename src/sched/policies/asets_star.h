#ifndef WEBTX_SCHED_POLICIES_ASETS_STAR_H_
#define WEBTX_SCHED_POLICIES_ASETS_STAR_H_

#include <algorithm>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "sched/indexed_priority_queue.h"
#include "sched/lazy_delete_heap.h"
#include "sched/policies/asets.h"
#include "sched/scheduler_policy.h"
#include "txn/workflow.h"

namespace webtx {

/// How ASETS* chooses a workflow's head transaction when several members
/// are ready (Definition 8 leaves this open). Ablated by
/// bench/ablation_head_choice.
enum class HeadSelectionRule {
  kEarliestDeadline,   // default: most urgent ready member
  kShortestRemaining,  // cheapest ready member
  kFifoArrival,        // earliest-arrived ready member
};

struct AsetsStarOptions {
  AsetsOptions impact;  // negative-impact rule knobs (shared with ASETS)
  HeadSelectionRule head_rule = HeadSelectionRule::kEarliestDeadline;
};

/// ASETS*: the workflow-level, weight-aware generalization of ASETS
/// (Sec. III-B/III-C, Fig. 7) — the paper's primary contribution.
///
/// Scheduling units are *workflows* (one per root transaction, Sec. II-A).
/// Each workflow with at least one ready member is represented by:
///   - its *head* transaction T_head: a ready member (Definition 8), the
///     transaction that actually runs if the workflow wins;
///   - its *representative* transaction T_rep (Definition 9): a virtual
///     transaction with d_rep = min deadline, r_rep = min remaining time
///     and w_rep = max weight over the workflow's in-system (arrived,
///     unfinished) members — letting the scheduler "see into the Wait
///     queue" and boost heads whose dependents are urgent or valuable.
///
/// A workflow sits in the EDF-List iff its representative can still meet
/// its deadline (now + r_rep <= d_rep), ordered by d_rep; otherwise in the
/// HDF-List ordered by r_rep/w_rep. The winner between the two list tops
/// minimizes weighted negative impact:
///
///   impact(EDF wf)  = r_head,EDF * w_rep,HDF                 (Fig. 7 l.15)
///   impact(HDF wf)  = max(0, r_head,HDF - s_rep,EDF) * w_rep,EDF   (l.16)
///
/// With singleton workflows (no precedence constraints) head == rep and
/// ASETS* reduces exactly to transaction-level ASETS; with equal weights
/// HDF reduces to SRPT — the policy is parameter-free and adapts to load,
/// dependencies and weights automatically.
///
/// Hot-path contract (Sec. III-A2): every scheduler event is
/// O(live members + log #workflows) and allocation-free after Bind. Each
/// workflow tracks its *live* member set (arrived, unfinished)
/// incrementally — membership changes only at arrival / completion /
/// drop — so per-event refreshes scan live members only, never the full
/// `wf.members` roster, and re-file the workflow in the EDF-/HDF-lists
/// only when its key or target list actually changed. rep_remaining and
/// the head are recomputed from live values at every touch because the
/// simulator charges progress to outage-preempted and aborted
/// transactions without a policy callback; cached copies of either would
/// go stale (see tests/sched/asets_star_incremental_test.cc, which
/// asserts byte-identical schedules against the pre-optimization
/// full-rescan reference).
///
/// Callback bursts are additionally BATCHED: a lifecycle callback only
/// marks the affected workflows dirty (live-set membership and the
/// static aggregates stay immediate), and the recompute-and-refile
/// happens once per dirty workflow at the next flush point — the top of
/// PickNext / PickNextExcluding, i.e. the simulator's next scheduling
/// round at the same instant. A multi-completion or crash instant that
/// touches one workflow through several members therefore pays one
/// refile instead of one per callback. Byte-identity is preserved
/// because the flush runs at the same simulation time as the marks and
/// a workflow's filing depends only on its own final state (both queue
/// types order by content, (key, id), never by operation history).
///
/// The class is templated on the priority-queue type backing the three
/// lists. `Queue` must provide the IndexedPriorityQueue surface
/// (Reserve/empty/size/Contains/KeyOf/Push/Top/TopKey/Pop/Erase/Update/
/// UpdateKeyIfChanged/PushOrUpdate/Clear) with identical (key, id) pop
/// order. Instantiations:
///   - AsetsStarPolicy      = AsetsStarPolicyT<IndexedPriorityQueue>
///     ("ASETS*", the default) — strict indexed binary heap;
///   - AsetsStarLazyPolicy  = AsetsStarPolicyT<LazyDeleteHeap>
///     ("ASETS*-lazy", factory-constructible) — tombstone heap for
///     huge-scale runs. Byte-identical schedules to the default are
///     pinned by the huge-structures differential matrix.
template <typename Queue>
class AsetsStarPolicyT final : public SchedulerPolicy {
 public:
  explicit AsetsStarPolicyT(AsetsStarOptions options = {})
      : options_(options) {}

  std::string name() const override {
    return std::is_same_v<Queue, LazyDeleteHeap> ? "ASETS*-lazy" : "ASETS*";
  }

  void Bind(const SimView& view) override;
  void OnArrival(TxnId id, SimTime now) override;
  void OnReady(TxnId id, SimTime now) override;
  void OnCompletion(TxnId id, SimTime now) override;
  void OnRemainingUpdated(TxnId id, SimTime now) override;
  void OnDropped(TxnId id, SimTime now) override;
  void OnMigrated(TxnId id, SimTime now) override;
  TxnId PickNext(SimTime now) override;
  TxnId PickNextExcluding(SimTime now,
                          const std::vector<TxnId>& exclude) override;

  /// Introspection for tests. Non-const: flushes pending dirty refiles
  /// so the lists reflect every callback delivered so far.
  size_t edf_list_size() {
    FlushDirty(dirty_now_);
    return edf_.size();
  }
  size_t hdf_list_size() {
    FlushDirty(dirty_now_);
    return hdf_.size();
  }

  /// Representative / head of a workflow as currently cached (tests only).
  struct WorkflowSnapshot {
    bool active = false;
    TxnId head = kInvalidTxn;
    SimTime rep_deadline = 0.0;
    SimTime rep_remaining = 0.0;
    double rep_weight = 0.0;
  };
  WorkflowSnapshot SnapshotOf(WorkflowId id);

 protected:
  void Reset() override;

 private:
  struct WorkflowState {
    bool active = false;     // has at least one ready member
    TxnId head = kInvalidTxn;
    SimTime rep_deadline = 0.0;
    SimTime rep_remaining = 0.0;
    double rep_weight = 1.0;
    /// In-system (arrived, unfinished) members, maintained incrementally
    /// as the slice live_arena_[live_begin, live_begin + live_size). Scan
    /// order differs from wf.members but every fold over it (min / max /
    /// HeadBetter) is a total order, so results are order-invariant.
    size_t live_begin = 0;
    size_t live_size = 0;
  };

  /// Folds the arriving member into the workflow's live set and static
  /// aggregates (min deadline, max weight), then touches the workflow.
  void AddLiveMember(WorkflowId wid, TxnId id);

  /// Drops a departed (finished or dropped) member from the live set and
  /// re-derives the static aggregates from the survivors. Tolerates ids
  /// that never arrived (admission-shed before OnArrival).
  void RemoveLiveMember(WorkflowId wid, TxnId id);

  /// Recomputes rep_remaining and the head from the live members' current
  /// values and re-files the workflow in the EDF-/HDF-List iff its target
  /// list or key changed. O(live members + log #workflows), no allocation.
  void Touch(WorkflowId wid, SimTime now);

  /// Queues the workflow for a Touch at the next flush point. Idempotent
  /// within a burst: the second mark of the same workflow is free.
  void MarkDirty(WorkflowId wid, SimTime now);

  /// Marks every workflow the transaction belongs to dirty.
  void MarkWorkflowsOf(TxnId id, SimTime now);

  /// Applies one Touch per dirty workflow and clears the dirty set.
  void FlushDirty(SimTime now);

  /// Moves EDF-List workflows whose representative deadline became
  /// unreachable to the HDF-List.
  void MigrateDue(SimTime now);

  double HdfKey(const WorkflowState& ws) const {
    return ws.rep_remaining / ws.rep_weight;
  }

  /// True when `a` beats `b` under the configured head-selection rule.
  bool HeadBetter(TxnId a, TxnId b) const;

  bool IsExcluded(TxnId id) const;

  AsetsStarOptions options_;
  std::vector<WorkflowState> states_;
  /// Backing store for every workflow's live slice: one allocation per
  /// Bind instead of one vector per workflow (workflow wid owns the
  /// members.size()-capacity slice starting at states_[wid].live_begin).
  std::vector<TxnId> live_arena_;
  /// Transactions already placed on other servers during a multi-server
  /// scheduling round; Refresh skips them as head candidates. Empty
  /// outside PickNextExcluding.
  std::vector<TxnId> excluded_heads_;
  /// Dirty-set batching state: dirty_[wid] != 0 iff wid is queued in
  /// dirty_list_ awaiting a Touch. dirty_now_ remembers the timestamp of
  /// the latest mark so const-free introspection can flush at the right
  /// instant (callback bursts and the following flush share one `now`).
  std::vector<char> dirty_;
  std::vector<WorkflowId> dirty_list_;
  SimTime dirty_now_ = 0.0;
  Queue edf_;       // key: d_rep
  Queue hdf_;       // key: r_rep / w_rep
  Queue critical_;  // EDF-List members, key: d_rep - r_rep
};

/// The paper's ASETS* over the strict indexed binary heap (default).
using AsetsStarPolicy = AsetsStarPolicyT<IndexedPriorityQueue>;

/// ASETS* over the lazy-delete heap ("ASETS*-lazy" in the factory).
using AsetsStarLazyPolicy = AsetsStarPolicyT<LazyDeleteHeap>;

extern template class AsetsStarPolicyT<IndexedPriorityQueue>;
extern template class AsetsStarPolicyT<LazyDeleteHeap>;

// ---------------------------------------------------------------------------
// Implementation. Kept in the header because the class is a template;
// the two supported instantiations are compiled once in asets_star.cc
// (extern template above keeps every other TU from re-instantiating).

namespace asets_star_internal {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace asets_star_internal

template <typename Queue>
void AsetsStarPolicyT<Queue>::Bind(const SimView& v) {
  SchedulerPolicy::Bind(v);
  const size_t num_wf = v.workflows().num_workflows();
  states_.assign(num_wf, WorkflowState{});
  // All live sets share one flat arena (a workflow's live set can never
  // outgrow its member roster), so a cold Bind costs two allocations
  // instead of one per workflow — and a re-Bind to a same-shape view
  // costs none at all: assign() reuses capacity, as does every Reserve
  // below (pinned by tests/sim/allocation_test.cc).
  size_t total_members = 0;
  for (size_t wid = 0; wid < num_wf; ++wid) {
    states_[wid].live_begin = total_members;
    total_members +=
        v.workflows().workflow(static_cast<WorkflowId>(wid)).members.size();
  }
  live_arena_.assign(total_members, kInvalidTxn);
  dirty_.assign(num_wf, 0);
  dirty_list_.clear();
  dirty_list_.reserve(num_wf);
  dirty_now_ = 0.0;
  edf_.Reserve(num_wf);
  hdf_.Reserve(num_wf);
  critical_.Reserve(num_wf);
}

template <typename Queue>
void AsetsStarPolicyT<Queue>::Reset() {
  states_.clear();
  live_arena_.clear();
  excluded_heads_.clear();
  dirty_.clear();
  dirty_list_.clear();
  dirty_now_ = 0.0;
  edf_.Clear();
  hdf_.Clear();
  critical_.Clear();
}

template <typename Queue>
bool AsetsStarPolicyT<Queue>::IsExcluded(TxnId id) const {
  return std::find(excluded_heads_.begin(), excluded_heads_.end(), id) !=
         excluded_heads_.end();
}

template <typename Queue>
bool AsetsStarPolicyT<Queue>::HeadBetter(TxnId a, TxnId b) const {
  if (b == kInvalidTxn) return true;
  const TransactionSpec& sa = view().specs()[a];
  const TransactionSpec& sb = view().specs()[b];
  switch (options_.head_rule) {
    case HeadSelectionRule::kEarliestDeadline:
      if (sa.deadline != sb.deadline) return sa.deadline < sb.deadline;
      break;
    case HeadSelectionRule::kShortestRemaining: {
      const SimTime ra = view().remaining(a);
      const SimTime rb = view().remaining(b);
      if (ra != rb) return ra < rb;
      break;
    }
    case HeadSelectionRule::kFifoArrival:
      if (sa.arrival != sb.arrival) return sa.arrival < sb.arrival;
      break;
  }
  return a < b;
}

template <typename Queue>
void AsetsStarPolicyT<Queue>::AddLiveMember(WorkflowId wid, TxnId id) {
  WorkflowState& ws = states_[wid];
  TxnId* live = live_arena_.data() + ws.live_begin;
  WEBTX_DCHECK(std::find(live, live + ws.live_size, id) ==
               live + ws.live_size);
  if (ws.live_size == 0) {
    ws.rep_deadline = asets_star_internal::kInf;
    ws.rep_weight = 0.0;
  }
  live[ws.live_size++] = id;
  const TransactionSpec& spec = view().specs()[id];
  ws.rep_deadline = std::min(ws.rep_deadline, spec.deadline);
  ws.rep_weight = std::max(ws.rep_weight, spec.weight);
}

template <typename Queue>
void AsetsStarPolicyT<Queue>::RemoveLiveMember(WorkflowId wid, TxnId id) {
  WorkflowState& ws = states_[wid];
  TxnId* live = live_arena_.data() + ws.live_begin;
  TxnId* const end = live + ws.live_size;
  TxnId* const it = std::find(live, end, id);
  if (it == end) return;  // shed before it ever arrived
  *it = end[-1];
  --ws.live_size;
  // The departed member may have carried the min deadline or max weight;
  // re-derive both from the survivors (live sets are small).
  ws.rep_deadline = asets_star_internal::kInf;
  ws.rep_weight = 0.0;
  for (size_t i = 0; i < ws.live_size; ++i) {
    const TransactionSpec& spec = view().specs()[live[i]];
    ws.rep_deadline = std::min(ws.rep_deadline, spec.deadline);
    ws.rep_weight = std::max(ws.rep_weight, spec.weight);
  }
}

template <typename Queue>
void AsetsStarPolicyT<Queue>::Touch(WorkflowId wid, SimTime now) {
  WorkflowState& ws = states_[wid];
  // rep_remaining and the head must come from live values every time: the
  // simulator charges progress to outage-preempted transactions and
  // resets aborted ones without a policy callback, so a cached copy of
  // either would diverge from what a full rescan sees.
  SimTime rep_remaining = asets_star_internal::kInf;
  TxnId head = kInvalidTxn;
  const TxnId* live = live_arena_.data() + ws.live_begin;
  for (size_t i = 0; i < ws.live_size; ++i) {
    const TxnId m = live[i];
    rep_remaining = std::min(rep_remaining, view().remaining(m));
    if (view().IsReady(m) && !IsExcluded(m) && HeadBetter(m, head)) {
      head = m;
    }
  }
  ws.rep_remaining = rep_remaining;
  ws.head = head;
  ws.active = head != kInvalidTxn;

  if (!ws.active) {
    if (edf_.Erase(wid)) {
      critical_.Erase(wid);
    } else {
      hdf_.Erase(wid);
    }
    return;
  }
  if (TimeLessEq(now + ws.rep_remaining, ws.rep_deadline)) {
    if (edf_.Contains(wid)) {
      edf_.UpdateKeyIfChanged(wid, ws.rep_deadline);
      critical_.UpdateKeyIfChanged(wid, ws.rep_deadline - ws.rep_remaining);
    } else {
      hdf_.Erase(wid);
      edf_.Push(wid, ws.rep_deadline);
      critical_.Push(wid, ws.rep_deadline - ws.rep_remaining);
    }
  } else {
    if (hdf_.Contains(wid)) {
      hdf_.UpdateKeyIfChanged(wid, HdfKey(ws));
    } else {
      if (edf_.Erase(wid)) critical_.Erase(wid);
      hdf_.Push(wid, HdfKey(ws));
    }
  }
}

template <typename Queue>
void AsetsStarPolicyT<Queue>::MarkDirty(WorkflowId wid, SimTime now) {
  dirty_now_ = now;
  if (dirty_[wid]) return;
  dirty_[wid] = 1;
  dirty_list_.push_back(wid);
}

template <typename Queue>
void AsetsStarPolicyT<Queue>::MarkWorkflowsOf(TxnId id, SimTime now) {
  for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
    MarkDirty(wid, now);
  }
}

template <typename Queue>
void AsetsStarPolicyT<Queue>::FlushDirty(SimTime now) {
  for (const WorkflowId wid : dirty_list_) {
    dirty_[wid] = 0;
    Touch(wid, now);
  }
  dirty_list_.clear();
}

template <typename Queue>
void AsetsStarPolicyT<Queue>::OnArrival(TxnId id, SimTime now) {
  for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
    AddLiveMember(wid, id);
    MarkDirty(wid, now);
  }
}

template <typename Queue>
void AsetsStarPolicyT<Queue>::OnReady(TxnId id, SimTime now) {
  MarkWorkflowsOf(id, now);
}

template <typename Queue>
void AsetsStarPolicyT<Queue>::OnCompletion(TxnId id, SimTime now) {
  // Real completions depart the live set; abort-dequeues (IsFinished
  // still false — the victim re-enters the ready set later) stay live so
  // they keep contributing to the representative, exactly as a full
  // rescan over arrived-and-unfinished members would see them. The
  // departure test runs NOW — the view's finished bit is only guaranteed
  // at callback time — but the refile itself is deferred to the flush.
  const bool departed = view().IsFinished(id);
  for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
    if (departed) RemoveLiveMember(wid, id);
    MarkDirty(wid, now);
  }
}

template <typename Queue>
void AsetsStarPolicyT<Queue>::OnRemainingUpdated(TxnId id, SimTime now) {
  MarkWorkflowsOf(id, now);
}

template <typename Queue>
void AsetsStarPolicyT<Queue>::OnMigrated(TxnId id, SimTime now) {
  // Mid-workflow re-planning: a warm migration charges progress to the
  // victim (shrinking its remaining) with no other callback, and a cold
  // one resets it to the full estimate — either way every workflow the
  // victim represents must re-derive rep_remaining and its head from the
  // post-migration values before the scheduling round at the crash
  // instant, or the EDF-/HDF-list keys that decide the next pick would
  // reflect the pre-crash plan.
  MarkWorkflowsOf(id, now);
}

template <typename Queue>
void AsetsStarPolicyT<Queue>::OnDropped(TxnId id, SimTime now) {
  // The dropped member is IsFinished from the view's perspective; evict
  // it from its workflows' live sets, representatives and heads.
  for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
    RemoveLiveMember(wid, id);
    MarkDirty(wid, now);
  }
}

template <typename Queue>
void AsetsStarPolicyT<Queue>::MigrateDue(SimTime now) {
  while (!critical_.empty() && critical_.TopKey() < now - kTimeEpsilon) {
    const WorkflowId wid = critical_.Pop();
    const bool present = edf_.Erase(wid);
    WEBTX_DCHECK(present) << "critical queue out of sync with EDF-List";
    hdf_.Push(wid, HdfKey(states_[wid]));
  }
}

template <typename Queue>
TxnId AsetsStarPolicyT<Queue>::PickNext(SimTime now) {
  FlushDirty(now);
  MigrateDue(now);
  if (edf_.empty() && hdf_.empty()) return kInvalidTxn;
  if (edf_.empty()) return states_[hdf_.Top()].head;
  if (hdf_.empty()) return states_[edf_.Top()].head;

  const WorkflowState& we = states_[edf_.Top()];
  const WorkflowState& wh = states_[hdf_.Top()];
  const double r_head_e = view().remaining(we.head);
  const double r_head_h = view().remaining(wh.head);
  const double s_rep_e = we.rep_deadline - (now + we.rep_remaining);
  const double s_rep_h = wh.rep_deadline - (now + wh.rep_remaining);

  double impact_e;  // tardiness added to wh's representative by running we
  double impact_h;  // tardiness added to we's representative by running wh
  if (options_.impact.clamp_slack) {
    impact_e = std::max(0.0, r_head_e - std::max(0.0, s_rep_h)) * wh.rep_weight;
    impact_h = std::max(0.0, r_head_h - std::max(0.0, s_rep_e)) * we.rep_weight;
  } else {
    impact_e = (r_head_e - s_rep_h) * wh.rep_weight;
    impact_h = (r_head_h - s_rep_e) * we.rep_weight;
  }
  const bool run_edf = options_.impact.ties_to_edf ? impact_e <= impact_h
                                                   : impact_e < impact_h;
  return run_edf ? we.head : wh.head;
}

template <typename Queue>
TxnId AsetsStarPolicyT<Queue>::PickNextExcluding(
    SimTime now, const std::vector<TxnId>& exclude) {
  if (exclude.empty()) return PickNext(now);
  // Settle any pending callback marks with the exclusion set still empty
  // (matching the immediate-touch semantics those callbacks had), then
  // re-derive heads of the affected workflows with the exclusion set
  // active, decide, and restore the unexcluded view. The restore MUST
  // flush before returning: leaving it batched would refile those
  // workflows at a later event, after the simulator has charged progress
  // to their running members, with keys a rescan at `now` never sees.
  FlushDirty(now);
  excluded_heads_ = exclude;
  for (const TxnId id : exclude) MarkWorkflowsOf(id, now);
  const TxnId pick = PickNext(now);
  WEBTX_DCHECK(pick == kInvalidTxn || !IsExcluded(pick));
  excluded_heads_.clear();
  for (const TxnId id : exclude) MarkWorkflowsOf(id, now);
  FlushDirty(now);
  return pick;
}

template <typename Queue>
typename AsetsStarPolicyT<Queue>::WorkflowSnapshot
AsetsStarPolicyT<Queue>::SnapshotOf(WorkflowId id) {
  FlushDirty(dirty_now_);
  const WorkflowState& ws = states_[id];
  return WorkflowSnapshot{ws.active, ws.head, ws.rep_deadline,
                          ws.rep_remaining, ws.rep_weight};
}

}  // namespace webtx

#endif  // WEBTX_SCHED_POLICIES_ASETS_STAR_H_
