#ifndef WEBTX_SCHED_POLICIES_ASETS_STAR_H_
#define WEBTX_SCHED_POLICIES_ASETS_STAR_H_

#include <string>
#include <vector>

#include "sched/indexed_priority_queue.h"
#include "sched/policies/asets.h"
#include "sched/scheduler_policy.h"
#include "txn/workflow.h"

namespace webtx {

/// How ASETS* chooses a workflow's head transaction when several members
/// are ready (Definition 8 leaves this open). Ablated by
/// bench/ablation_head_choice.
enum class HeadSelectionRule {
  kEarliestDeadline,   // default: most urgent ready member
  kShortestRemaining,  // cheapest ready member
  kFifoArrival,        // earliest-arrived ready member
};

struct AsetsStarOptions {
  AsetsOptions impact;  // negative-impact rule knobs (shared with ASETS)
  HeadSelectionRule head_rule = HeadSelectionRule::kEarliestDeadline;
};

/// ASETS*: the workflow-level, weight-aware generalization of ASETS
/// (Sec. III-B/III-C, Fig. 7) — the paper's primary contribution.
///
/// Scheduling units are *workflows* (one per root transaction, Sec. II-A).
/// Each workflow with at least one ready member is represented by:
///   - its *head* transaction T_head: a ready member (Definition 8), the
///     transaction that actually runs if the workflow wins;
///   - its *representative* transaction T_rep (Definition 9): a virtual
///     transaction with d_rep = min deadline, r_rep = min remaining time
///     and w_rep = max weight over the workflow's in-system (arrived,
///     unfinished) members — letting the scheduler "see into the Wait
///     queue" and boost heads whose dependents are urgent or valuable.
///
/// A workflow sits in the EDF-List iff its representative can still meet
/// its deadline (now + r_rep <= d_rep), ordered by d_rep; otherwise in the
/// HDF-List ordered by r_rep/w_rep. The winner between the two list tops
/// minimizes weighted negative impact:
///
///   impact(EDF wf)  = r_head,EDF * w_rep,HDF                 (Fig. 7 l.15)
///   impact(HDF wf)  = max(0, r_head,HDF - s_rep,EDF) * w_rep,EDF   (l.16)
///
/// With singleton workflows (no precedence constraints) head == rep and
/// ASETS* reduces exactly to transaction-level ASETS; with equal weights
/// HDF reduces to SRPT — the policy is parameter-free and adapts to load,
/// dependencies and weights automatically.
///
/// Hot-path contract (Sec. III-A2): every scheduler event is
/// O(live members + log #workflows) and allocation-free after Bind. Each
/// workflow tracks its *live* member set (arrived, unfinished)
/// incrementally — membership changes only at arrival / completion /
/// drop — so per-event refreshes scan live members only, never the full
/// `wf.members` roster, and re-file the workflow in the EDF-/HDF-lists
/// only when its key or target list actually changed. rep_remaining and
/// the head are recomputed from live values at every touch because the
/// simulator charges progress to outage-preempted and aborted
/// transactions without a policy callback; cached copies of either would
/// go stale (see tests/sched/asets_star_incremental_test.cc, which
/// asserts byte-identical schedules against the pre-optimization
/// full-rescan reference).
///
/// Callback bursts are additionally BATCHED: a lifecycle callback only
/// marks the affected workflows dirty (live-set membership and the
/// static aggregates stay immediate), and the recompute-and-refile
/// happens once per dirty workflow at the next flush point — the top of
/// PickNext / PickNextExcluding, i.e. the simulator's next scheduling
/// round at the same instant. A multi-completion or crash instant that
/// touches one workflow through several members therefore pays one
/// refile instead of one per callback. Byte-identity is preserved
/// because the flush runs at the same simulation time as the marks and
/// a workflow's filing depends only on its own final state
/// (IndexedPriorityQueue order is content-deterministic).
class AsetsStarPolicy final : public SchedulerPolicy {
 public:
  explicit AsetsStarPolicy(AsetsStarOptions options = {})
      : options_(options) {}

  std::string name() const override { return "ASETS*"; }

  void Bind(const SimView& view) override;
  void OnArrival(TxnId id, SimTime now) override;
  void OnReady(TxnId id, SimTime now) override;
  void OnCompletion(TxnId id, SimTime now) override;
  void OnRemainingUpdated(TxnId id, SimTime now) override;
  void OnDropped(TxnId id, SimTime now) override;
  TxnId PickNext(SimTime now) override;
  TxnId PickNextExcluding(SimTime now,
                          const std::vector<TxnId>& exclude) override;

  /// Introspection for tests. Non-const: flushes pending dirty refiles
  /// so the lists reflect every callback delivered so far.
  size_t edf_list_size() {
    FlushDirty(dirty_now_);
    return edf_.size();
  }
  size_t hdf_list_size() {
    FlushDirty(dirty_now_);
    return hdf_.size();
  }

  /// Representative / head of a workflow as currently cached (tests only).
  struct WorkflowSnapshot {
    bool active = false;
    TxnId head = kInvalidTxn;
    SimTime rep_deadline = 0.0;
    SimTime rep_remaining = 0.0;
    double rep_weight = 0.0;
  };
  WorkflowSnapshot SnapshotOf(WorkflowId id);

 protected:
  void Reset() override;

 private:
  struct WorkflowState {
    bool active = false;     // has at least one ready member
    TxnId head = kInvalidTxn;
    SimTime rep_deadline = 0.0;
    SimTime rep_remaining = 0.0;
    double rep_weight = 1.0;
    /// In-system (arrived, unfinished) members, maintained incrementally
    /// as the slice live_arena_[live_begin, live_begin + live_size). Scan
    /// order differs from wf.members but every fold over it (min / max /
    /// HeadBetter) is a total order, so results are order-invariant.
    size_t live_begin = 0;
    size_t live_size = 0;
  };

  /// Folds the arriving member into the workflow's live set and static
  /// aggregates (min deadline, max weight), then touches the workflow.
  void AddLiveMember(WorkflowId wid, TxnId id);

  /// Drops a departed (finished or dropped) member from the live set and
  /// re-derives the static aggregates from the survivors. Tolerates ids
  /// that never arrived (admission-shed before OnArrival).
  void RemoveLiveMember(WorkflowId wid, TxnId id);

  /// Recomputes rep_remaining and the head from the live members' current
  /// values and re-files the workflow in the EDF-/HDF-List iff its target
  /// list or key changed. O(live members + log #workflows), no allocation.
  void Touch(WorkflowId wid, SimTime now);

  /// Queues the workflow for a Touch at the next flush point. Idempotent
  /// within a burst: the second mark of the same workflow is free.
  void MarkDirty(WorkflowId wid, SimTime now);

  /// Marks every workflow the transaction belongs to dirty.
  void MarkWorkflowsOf(TxnId id, SimTime now);

  /// Applies one Touch per dirty workflow and clears the dirty set.
  void FlushDirty(SimTime now);

  /// Moves EDF-List workflows whose representative deadline became
  /// unreachable to the HDF-List.
  void MigrateDue(SimTime now);

  double HdfKey(const WorkflowState& ws) const {
    return ws.rep_remaining / ws.rep_weight;
  }

  /// True when `a` beats `b` under the configured head-selection rule.
  bool HeadBetter(TxnId a, TxnId b) const;

  bool IsExcluded(TxnId id) const;

  AsetsStarOptions options_;
  std::vector<WorkflowState> states_;
  /// Backing store for every workflow's live slice: one allocation per
  /// Bind instead of one vector per workflow (workflow wid owns the
  /// members.size()-capacity slice starting at states_[wid].live_begin).
  std::vector<TxnId> live_arena_;
  /// Transactions already placed on other servers during a multi-server
  /// scheduling round; Refresh skips them as head candidates. Empty
  /// outside PickNextExcluding.
  std::vector<TxnId> excluded_heads_;
  /// Dirty-set batching state: dirty_[wid] != 0 iff wid is queued in
  /// dirty_list_ awaiting a Touch. dirty_now_ remembers the timestamp of
  /// the latest mark so const-free introspection can flush at the right
  /// instant (callback bursts and the following flush share one `now`).
  std::vector<char> dirty_;
  std::vector<WorkflowId> dirty_list_;
  SimTime dirty_now_ = 0.0;
  IndexedPriorityQueue edf_;       // key: d_rep
  IndexedPriorityQueue hdf_;       // key: r_rep / w_rep
  IndexedPriorityQueue critical_;  // EDF-List members, key: d_rep - r_rep
};

}  // namespace webtx

#endif  // WEBTX_SCHED_POLICIES_ASETS_STAR_H_
