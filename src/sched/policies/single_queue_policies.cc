#include "sched/policies/single_queue_policies.h"

#include <algorithm>
#include <utility>

namespace webtx {

void SingleQueuePolicy::Reset() {
  queue_.Clear();
}

void SingleQueuePolicy::OnReady(TxnId id, SimTime now) {
  queue_.Push(id, KeyFor(id, now));
}

void SingleQueuePolicy::OnCompletion(TxnId id, SimTime now) {
  (void)now;
  const bool present = queue_.Erase(id);
  WEBTX_DCHECK(present) << "completed transaction was not queued";
}

void SingleQueuePolicy::OnRemainingUpdated(TxnId id, SimTime now) {
  if (RemainingSensitive() && queue_.Contains(id)) {
    queue_.Update(id, KeyFor(id, now));
  }
}

TxnId SingleQueuePolicy::PickNext(SimTime now) {
  (void)now;
  if (queue_.empty()) return kInvalidTxn;
  return queue_.Top();
}

TxnId SingleQueuePolicy::PickNextExcluding(
    SimTime now, const std::vector<TxnId>& exclude) {
  (void)now;
  // Park excluded tops aside, take the first admissible one, restore.
  std::vector<std::pair<TxnId, double>> parked;
  TxnId found = kInvalidTxn;
  while (!queue_.empty()) {
    const TxnId top = queue_.Top();
    if (std::find(exclude.begin(), exclude.end(), top) == exclude.end()) {
      found = top;
      break;
    }
    parked.emplace_back(top, queue_.TopKey());
    queue_.Pop();
  }
  for (const auto& [id, key] : parked) queue_.Push(id, key);
  return found;
}

double FcfsPolicy::KeyFor(TxnId id, SimTime now) const {
  (void)now;
  return view().specs()[id].arrival;
}

double EdfPolicy::KeyFor(TxnId id, SimTime now) const {
  (void)now;
  return view().specs()[id].deadline;
}

double SrptPolicy::KeyFor(TxnId id, SimTime now) const {
  (void)now;
  return view().remaining(id);
}

double LsPolicy::KeyFor(TxnId id, SimTime now) const {
  (void)now;
  // Slack ordering is invariant to the common `now` term.
  return view().specs()[id].deadline - view().remaining(id);
}

double HdfPolicy::KeyFor(TxnId id, SimTime now) const {
  (void)now;
  return view().remaining(id) / view().specs()[id].weight;
}

double HvfPolicy::KeyFor(TxnId id, SimTime now) const {
  (void)now;
  return -view().specs()[id].weight;
}

}  // namespace webtx
