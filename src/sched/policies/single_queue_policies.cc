#include "sched/policies/single_queue_policies.h"

#include <algorithm>
#include <utility>

namespace webtx {

void SingleQueuePolicy::Reset() {
  // Back to one shard until the simulator calls BindShards (which only
  // happens after Bind, while every queue is still empty). resize keeps
  // queue 0's capacity, so a warm re-Bind stays allocation-free.
  queues_.resize(1);
  for (IndexedPriorityQueue& q : queues_) q.Clear();
  num_shards_ = 1;
  steals_ = 0;
}

void SingleQueuePolicy::BindShards(uint32_t num_shards) {
  WEBTX_DCHECK(queue_size() == 0) << "BindShards after events";
  num_shards_ = std::max(1u, num_shards);
  queues_.resize(num_shards_);
  for (IndexedPriorityQueue& q : queues_) q.Clear();
  steals_ = 0;
  if (num_shards_ > 1) {
    // Initial owner assignment: id % shards. Any fixed content-blind map
    // works — picks merge over shard tops, so ownership never changes a
    // decision, only which shard pays the heap operations.
    const size_t n = view().specs().size();
    owner_.resize(n);
    for (size_t id = 0; id < n; ++id) {
      owner_[id] = static_cast<uint32_t>(id % num_shards_);
    }
  }
}

void SingleQueuePolicy::OnReady(TxnId id, SimTime now) {
  queues_[OwnerOf(id)].Push(id, KeyFor(id, now));
}

void SingleQueuePolicy::OnCompletion(TxnId id, SimTime now) {
  (void)now;
  const bool present = queues_[OwnerOf(id)].Erase(id);
  WEBTX_DCHECK(present) << "completed transaction was not queued";
}

void SingleQueuePolicy::OnRemainingUpdated(TxnId id, SimTime now) {
  if (!RemainingSensitive()) return;
  IndexedPriorityQueue& q = queues_[OwnerOf(id)];
  if (q.Contains(id)) q.Update(id, KeyFor(id, now));
}

void SingleQueuePolicy::OnPlaced(TxnId id, uint32_t server, SimTime now) {
  (void)now;
  if (num_shards_ == 1) return;
  const uint32_t dest =
      server < num_shards_ ? server : server % num_shards_;
  const uint32_t src = owner_[id];
  if (src == dest) return;
  // Deterministic steal: move the entry, key preserved — queue pop order
  // is (key, id), so relocating an entry between shards cannot change
  // any future merge decision.
  IndexedPriorityQueue& from = queues_[src];
  WEBTX_DCHECK(from.Contains(id)) << "placed transaction was not queued";
  const double key = from.KeyOf(id);
  from.Erase(id);
  queues_[dest].Push(id, key);
  owner_[id] = dest;
  ++steals_;
}

size_t SingleQueuePolicy::queue_size() const {
  size_t total = 0;
  for (const IndexedPriorityQueue& q : queues_) total += q.size();
  return total;
}

int SingleQueuePolicy::TopShard() const {
  int best = -1;
  double best_key = 0.0;
  TxnId best_id = kInvalidTxn;
  for (size_t s = 0; s < queues_.size(); ++s) {
    const IndexedPriorityQueue& q = queues_[s];
    if (q.empty()) continue;
    const double key = q.TopKey();
    const TxnId id = q.Top();
    if (best < 0 || key < best_key || (key == best_key && id < best_id)) {
      best = static_cast<int>(s);
      best_key = key;
      best_id = id;
    }
  }
  return best;
}

TxnId SingleQueuePolicy::PickNext(SimTime now) {
  (void)now;
  if (num_shards_ == 1) {
    // Global fast path: identical to the historical single queue.
    return queues_[0].empty() ? kInvalidTxn : queues_[0].Top();
  }
  const int s = TopShard();
  return s < 0 ? kInvalidTxn : queues_[s].Top();
}

TxnId SingleQueuePolicy::PickNextExcluding(
    SimTime now, const std::vector<TxnId>& exclude) {
  (void)now;
  // Park excluded tops aside, take the first admissible one, restore.
  // The sharded walk enumerates tops in ascending (key, id) — exactly
  // the global queue's pop order — and each parked entry restores into
  // its owner shard with its key intact.
  parked_.clear();
  TxnId found = kInvalidTxn;
  for (;;) {
    const int s = num_shards_ == 1 ? (queues_[0].empty() ? -1 : 0)
                                   : TopShard();
    if (s < 0) break;
    const TxnId top = queues_[s].Top();
    if (std::find(exclude.begin(), exclude.end(), top) == exclude.end()) {
      found = top;
      break;
    }
    parked_.emplace_back(top, queues_[s].TopKey());
    queues_[s].Pop();
  }
  for (const auto& [id, key] : parked_) queues_[OwnerOf(id)].Push(id, key);
  return found;
}

void SingleQueuePolicy::PickBatch(SimTime now, size_t k,
                                  std::vector<TxnId>& out) {
  (void)now;
  // In the greedy PickNextExcluding chain the slot-i exclude set is
  // exactly the i previous picks, which are exactly the i least (key,
  // id) entries over all shards — so each call parks precisely those i
  // entries and returns the (i+1)-least. The whole round is therefore
  // the k least entries in merge order: identical picks, without the
  // per-slot re-park/re-push churn that made rounds quadratic in k.
  out.clear();
  if (num_shards_ == 1) {
    // Hot path: a read-only top-k walk of the heap — no pops, no
    // restores, no heap writes at all (sched/indexed_priority_queue.h).
    queues_[0].AppendTopK(k, out, frontier_);
    return;
  }
  // Sharded: pop the k least across shards via the TopShard merge and
  // restore once. (Rounds are k-bounded and shard counts small; the
  // sharded digest battery pins this path byte for byte.)
  parked_.clear();
  while (out.size() < k) {
    const int s = TopShard();
    if (s < 0) break;
    const TxnId top = queues_[s].Top();
    out.push_back(top);
    parked_.emplace_back(top, queues_[s].TopKey());
    queues_[s].Pop();
  }
  for (const auto& [id, key] : parked_) queues_[OwnerOf(id)].Push(id, key);
}

double FcfsPolicy::KeyFor(TxnId id, SimTime now) const {
  (void)now;
  return view().specs()[id].arrival;
}

double EdfPolicy::KeyFor(TxnId id, SimTime now) const {
  (void)now;
  return view().specs()[id].deadline;
}

double SrptPolicy::KeyFor(TxnId id, SimTime now) const {
  (void)now;
  return view().remaining(id);
}

double LsPolicy::KeyFor(TxnId id, SimTime now) const {
  (void)now;
  // Slack ordering is invariant to the common `now` term.
  return view().specs()[id].deadline - view().remaining(id);
}

double HdfPolicy::KeyFor(TxnId id, SimTime now) const {
  (void)now;
  return view().remaining(id) / view().specs()[id].weight;
}

double HvfPolicy::KeyFor(TxnId id, SimTime now) const {
  (void)now;
  return -view().specs()[id].weight;
}

}  // namespace webtx
