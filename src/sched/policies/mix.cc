#include "sched/policies/mix.h"

#include <sstream>

#include "common/check.h"

namespace webtx {

MixPolicy::MixPolicy(double beta, double value_scale)
    : beta_(beta), value_scale_(value_scale) {
  WEBTX_CHECK(beta >= 0.0 && beta <= 1.0) << "MIX beta must be in [0, 1]";
  WEBTX_CHECK_GT(value_scale, 0.0);
}

std::string MixPolicy::name() const {
  std::ostringstream os;
  os << "MIX(" << beta_ << ")";
  return os.str();
}

double MixPolicy::KeyFor(TxnId id, SimTime now) const {
  (void)now;
  const TransactionSpec& spec = view().specs()[id];
  return (1.0 - beta_) * spec.deadline - beta_ * value_scale_ * spec.weight;
}

}  // namespace webtx
