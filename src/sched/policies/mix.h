#ifndef WEBTX_SCHED_POLICIES_MIX_H_
#define WEBTX_SCHED_POLICIES_MIX_H_

#include <string>

#include "sched/policies/single_queue_policies.h"

namespace webtx {

/// MIX [Buttazzo, Spuri & Sensini, RTSS '95], discussed in the paper's
/// related work (Sec. V): a STATIC hybrid that ranks transactions by a
/// fixed linear combination of deadline urgency and value, in contrast to
/// the parameter-free adaptive switching of ASETS*.
///
/// Priority key (smaller runs first):
///   key_i = (1 - beta) * d_i - beta * value_scale * w_i
/// beta = 0 is pure EDF; beta = 1 is pure HVF; `value_scale` converts a
/// unit of weight into time units so the two terms are commensurate (the
/// original paper normalizes similarly; exact constants are not specified
/// there, so the scale is exposed as a knob and swept by
/// bench/ext_mix_comparison).
class MixPolicy final : public SingleQueuePolicy {
 public:
  explicit MixPolicy(double beta = 0.5, double value_scale = 50.0);

  std::string name() const override;

  double beta() const { return beta_; }

 protected:
  double KeyFor(TxnId id, SimTime now) const override;

 private:
  double beta_;
  double value_scale_;
};

}  // namespace webtx

#endif  // WEBTX_SCHED_POLICIES_MIX_H_
