#include "sched/policies/asets_star.h"

#include <algorithm>
#include <limits>

namespace webtx {

void AsetsStarPolicy::Bind(const SimView& v) {
  SchedulerPolicy::Bind(v);
  states_.assign(v.workflows().num_workflows(), WorkflowState{});
}

void AsetsStarPolicy::Reset() {
  states_.clear();
  excluded_heads_.clear();
  edf_.Clear();
  hdf_.Clear();
  critical_.Clear();
}

bool AsetsStarPolicy::IsExcluded(TxnId id) const {
  return std::find(excluded_heads_.begin(), excluded_heads_.end(), id) !=
         excluded_heads_.end();
}

bool AsetsStarPolicy::HeadBetter(TxnId a, TxnId b) const {
  if (b == kInvalidTxn) return true;
  const TransactionSpec& sa = view().specs()[a];
  const TransactionSpec& sb = view().specs()[b];
  switch (options_.head_rule) {
    case HeadSelectionRule::kEarliestDeadline:
      if (sa.deadline != sb.deadline) return sa.deadline < sb.deadline;
      break;
    case HeadSelectionRule::kShortestRemaining: {
      const SimTime ra = view().remaining(a);
      const SimTime rb = view().remaining(b);
      if (ra != rb) return ra < rb;
      break;
    }
    case HeadSelectionRule::kFifoArrival:
      if (sa.arrival != sb.arrival) return sa.arrival < sb.arrival;
      break;
  }
  return a < b;
}

void AsetsStarPolicy::Refresh(WorkflowId wid, SimTime now) {
  const Workflow& wf = view().workflows().workflow(wid);
  WorkflowState ws;
  ws.rep_deadline = std::numeric_limits<double>::infinity();
  ws.rep_remaining = std::numeric_limits<double>::infinity();
  ws.rep_weight = 0.0;
  for (const TxnId m : wf.members) {
    if (view().IsFinished(m) || !view().IsArrived(m)) continue;
    const TransactionSpec& spec = view().specs()[m];
    ws.rep_deadline = std::min(ws.rep_deadline, spec.deadline);
    ws.rep_remaining = std::min(ws.rep_remaining, view().remaining(m));
    ws.rep_weight = std::max(ws.rep_weight, spec.weight);
    if (view().IsReady(m) && !IsExcluded(m) && HeadBetter(m, ws.head)) {
      ws.head = m;
    }
  }
  ws.active = ws.head != kInvalidTxn;
  states_[wid] = ws;

  edf_.Erase(wid);
  hdf_.Erase(wid);
  critical_.Erase(wid);
  if (!ws.active) return;
  if (TimeLessEq(now + ws.rep_remaining, ws.rep_deadline)) {
    edf_.Push(wid, ws.rep_deadline);
    critical_.Push(wid, ws.rep_deadline - ws.rep_remaining);
  } else {
    hdf_.Push(wid, HdfKey(ws));
  }
}

void AsetsStarPolicy::RefreshWorkflowsOf(TxnId id, SimTime now) {
  for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
    Refresh(wid, now);
  }
}

void AsetsStarPolicy::OnArrival(TxnId id, SimTime now) {
  RefreshWorkflowsOf(id, now);
}

void AsetsStarPolicy::OnReady(TxnId id, SimTime now) {
  RefreshWorkflowsOf(id, now);
}

void AsetsStarPolicy::OnCompletion(TxnId id, SimTime now) {
  RefreshWorkflowsOf(id, now);
}

void AsetsStarPolicy::OnRemainingUpdated(TxnId id, SimTime now) {
  RefreshWorkflowsOf(id, now);
}

void AsetsStarPolicy::OnDropped(TxnId id, SimTime now) {
  // The dropped member is IsFinished from the view's perspective; the
  // refresh evicts it from its workflows' representatives and heads.
  RefreshWorkflowsOf(id, now);
}

void AsetsStarPolicy::MigrateDue(SimTime now) {
  while (!critical_.empty() && critical_.TopKey() < now - kTimeEpsilon) {
    const WorkflowId wid = critical_.Pop();
    const bool present = edf_.Erase(wid);
    WEBTX_DCHECK(present) << "critical queue out of sync with EDF-List";
    hdf_.Push(wid, HdfKey(states_[wid]));
  }
}

TxnId AsetsStarPolicy::PickNext(SimTime now) {
  MigrateDue(now);
  if (edf_.empty() && hdf_.empty()) return kInvalidTxn;
  if (edf_.empty()) return states_[hdf_.Top()].head;
  if (hdf_.empty()) return states_[edf_.Top()].head;

  const WorkflowState& we = states_[edf_.Top()];
  const WorkflowState& wh = states_[hdf_.Top()];
  const double r_head_e = view().remaining(we.head);
  const double r_head_h = view().remaining(wh.head);
  const double s_rep_e = we.rep_deadline - (now + we.rep_remaining);
  const double s_rep_h = wh.rep_deadline - (now + wh.rep_remaining);

  double impact_e;  // tardiness added to wh's representative by running we
  double impact_h;  // tardiness added to we's representative by running wh
  if (options_.impact.clamp_slack) {
    impact_e = std::max(0.0, r_head_e - std::max(0.0, s_rep_h)) * wh.rep_weight;
    impact_h = std::max(0.0, r_head_h - std::max(0.0, s_rep_e)) * we.rep_weight;
  } else {
    impact_e = (r_head_e - s_rep_h) * wh.rep_weight;
    impact_h = (r_head_h - s_rep_e) * we.rep_weight;
  }
  const bool run_edf = options_.impact.ties_to_edf ? impact_e <= impact_h
                                                   : impact_e < impact_h;
  return run_edf ? we.head : wh.head;
}

TxnId AsetsStarPolicy::PickNextExcluding(SimTime now,
                                         const std::vector<TxnId>& exclude) {
  if (exclude.empty()) return PickNext(now);
  // Re-derive heads of the affected workflows with the exclusion set
  // active, decide, then restore the unexcluded view.
  excluded_heads_ = exclude;
  for (const TxnId id : exclude) RefreshWorkflowsOf(id, now);
  const TxnId pick = PickNext(now);
  WEBTX_DCHECK(pick == kInvalidTxn || !IsExcluded(pick));
  excluded_heads_.clear();
  for (const TxnId id : exclude) RefreshWorkflowsOf(id, now);
  return pick;
}

AsetsStarPolicy::WorkflowSnapshot AsetsStarPolicy::SnapshotOf(
    WorkflowId id) const {
  const WorkflowState& ws = states_[id];
  return WorkflowSnapshot{ws.active, ws.head, ws.rep_deadline,
                          ws.rep_remaining, ws.rep_weight};
}

}  // namespace webtx
