#include "sched/policies/asets_star.h"

namespace webtx {

// The two supported queue backings are compiled exactly once, here.
template class AsetsStarPolicyT<IndexedPriorityQueue>;
template class AsetsStarPolicyT<LazyDeleteHeap>;

}  // namespace webtx
