#include "sched/policies/asets_star.h"

#include <algorithm>
#include <limits>

namespace webtx {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void AsetsStarPolicy::Bind(const SimView& v) {
  SchedulerPolicy::Bind(v);
  const size_t num_wf = v.workflows().num_workflows();
  states_.assign(num_wf, WorkflowState{});
  // All live sets share one flat arena (a workflow's live set can never
  // outgrow its member roster), so a cold Bind costs two allocations
  // instead of one per workflow — and a re-Bind to a same-shape view
  // costs none at all: assign() reuses capacity, as does every Reserve
  // below (pinned by tests/sim/allocation_test.cc).
  size_t total_members = 0;
  for (size_t wid = 0; wid < num_wf; ++wid) {
    states_[wid].live_begin = total_members;
    total_members +=
        v.workflows().workflow(static_cast<WorkflowId>(wid)).members.size();
  }
  live_arena_.assign(total_members, kInvalidTxn);
  dirty_.assign(num_wf, 0);
  dirty_list_.clear();
  dirty_list_.reserve(num_wf);
  dirty_now_ = 0.0;
  edf_.Reserve(num_wf);
  hdf_.Reserve(num_wf);
  critical_.Reserve(num_wf);
}

void AsetsStarPolicy::Reset() {
  states_.clear();
  live_arena_.clear();
  excluded_heads_.clear();
  dirty_.clear();
  dirty_list_.clear();
  dirty_now_ = 0.0;
  edf_.Clear();
  hdf_.Clear();
  critical_.Clear();
}

bool AsetsStarPolicy::IsExcluded(TxnId id) const {
  return std::find(excluded_heads_.begin(), excluded_heads_.end(), id) !=
         excluded_heads_.end();
}

bool AsetsStarPolicy::HeadBetter(TxnId a, TxnId b) const {
  if (b == kInvalidTxn) return true;
  const TransactionSpec& sa = view().specs()[a];
  const TransactionSpec& sb = view().specs()[b];
  switch (options_.head_rule) {
    case HeadSelectionRule::kEarliestDeadline:
      if (sa.deadline != sb.deadline) return sa.deadline < sb.deadline;
      break;
    case HeadSelectionRule::kShortestRemaining: {
      const SimTime ra = view().remaining(a);
      const SimTime rb = view().remaining(b);
      if (ra != rb) return ra < rb;
      break;
    }
    case HeadSelectionRule::kFifoArrival:
      if (sa.arrival != sb.arrival) return sa.arrival < sb.arrival;
      break;
  }
  return a < b;
}

void AsetsStarPolicy::AddLiveMember(WorkflowId wid, TxnId id) {
  WorkflowState& ws = states_[wid];
  TxnId* live = live_arena_.data() + ws.live_begin;
  WEBTX_DCHECK(std::find(live, live + ws.live_size, id) ==
               live + ws.live_size);
  if (ws.live_size == 0) {
    ws.rep_deadline = kInf;
    ws.rep_weight = 0.0;
  }
  live[ws.live_size++] = id;
  const TransactionSpec& spec = view().specs()[id];
  ws.rep_deadline = std::min(ws.rep_deadline, spec.deadline);
  ws.rep_weight = std::max(ws.rep_weight, spec.weight);
}

void AsetsStarPolicy::RemoveLiveMember(WorkflowId wid, TxnId id) {
  WorkflowState& ws = states_[wid];
  TxnId* live = live_arena_.data() + ws.live_begin;
  TxnId* const end = live + ws.live_size;
  TxnId* const it = std::find(live, end, id);
  if (it == end) return;  // shed before it ever arrived
  *it = end[-1];
  --ws.live_size;
  // The departed member may have carried the min deadline or max weight;
  // re-derive both from the survivors (live sets are small).
  ws.rep_deadline = kInf;
  ws.rep_weight = 0.0;
  for (size_t i = 0; i < ws.live_size; ++i) {
    const TransactionSpec& spec = view().specs()[live[i]];
    ws.rep_deadline = std::min(ws.rep_deadline, spec.deadline);
    ws.rep_weight = std::max(ws.rep_weight, spec.weight);
  }
}

void AsetsStarPolicy::Touch(WorkflowId wid, SimTime now) {
  WorkflowState& ws = states_[wid];
  // rep_remaining and the head must come from live values every time: the
  // simulator charges progress to outage-preempted transactions and
  // resets aborted ones without a policy callback, so a cached copy of
  // either would diverge from what a full rescan sees.
  SimTime rep_remaining = kInf;
  TxnId head = kInvalidTxn;
  const TxnId* live = live_arena_.data() + ws.live_begin;
  for (size_t i = 0; i < ws.live_size; ++i) {
    const TxnId m = live[i];
    rep_remaining = std::min(rep_remaining, view().remaining(m));
    if (view().IsReady(m) && !IsExcluded(m) && HeadBetter(m, head)) {
      head = m;
    }
  }
  ws.rep_remaining = rep_remaining;
  ws.head = head;
  ws.active = head != kInvalidTxn;

  if (!ws.active) {
    if (edf_.Erase(wid)) {
      critical_.Erase(wid);
    } else {
      hdf_.Erase(wid);
    }
    return;
  }
  if (TimeLessEq(now + ws.rep_remaining, ws.rep_deadline)) {
    if (edf_.Contains(wid)) {
      edf_.UpdateKeyIfChanged(wid, ws.rep_deadline);
      critical_.UpdateKeyIfChanged(wid, ws.rep_deadline - ws.rep_remaining);
    } else {
      hdf_.Erase(wid);
      edf_.Push(wid, ws.rep_deadline);
      critical_.Push(wid, ws.rep_deadline - ws.rep_remaining);
    }
  } else {
    if (hdf_.Contains(wid)) {
      hdf_.UpdateKeyIfChanged(wid, HdfKey(ws));
    } else {
      if (edf_.Erase(wid)) critical_.Erase(wid);
      hdf_.Push(wid, HdfKey(ws));
    }
  }
}

void AsetsStarPolicy::MarkDirty(WorkflowId wid, SimTime now) {
  dirty_now_ = now;
  if (dirty_[wid]) return;
  dirty_[wid] = 1;
  dirty_list_.push_back(wid);
}

void AsetsStarPolicy::MarkWorkflowsOf(TxnId id, SimTime now) {
  for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
    MarkDirty(wid, now);
  }
}

void AsetsStarPolicy::FlushDirty(SimTime now) {
  for (const WorkflowId wid : dirty_list_) {
    dirty_[wid] = 0;
    Touch(wid, now);
  }
  dirty_list_.clear();
}

void AsetsStarPolicy::OnArrival(TxnId id, SimTime now) {
  for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
    AddLiveMember(wid, id);
    MarkDirty(wid, now);
  }
}

void AsetsStarPolicy::OnReady(TxnId id, SimTime now) {
  MarkWorkflowsOf(id, now);
}

void AsetsStarPolicy::OnCompletion(TxnId id, SimTime now) {
  // Real completions depart the live set; abort-dequeues (IsFinished
  // still false — the victim re-enters the ready set later) stay live so
  // they keep contributing to the representative, exactly as a full
  // rescan over arrived-and-unfinished members would see them. The
  // departure test runs NOW — the view's finished bit is only guaranteed
  // at callback time — but the refile itself is deferred to the flush.
  const bool departed = view().IsFinished(id);
  for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
    if (departed) RemoveLiveMember(wid, id);
    MarkDirty(wid, now);
  }
}

void AsetsStarPolicy::OnRemainingUpdated(TxnId id, SimTime now) {
  MarkWorkflowsOf(id, now);
}

void AsetsStarPolicy::OnDropped(TxnId id, SimTime now) {
  // The dropped member is IsFinished from the view's perspective; evict
  // it from its workflows' live sets, representatives and heads.
  for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
    RemoveLiveMember(wid, id);
    MarkDirty(wid, now);
  }
}

void AsetsStarPolicy::MigrateDue(SimTime now) {
  while (!critical_.empty() && critical_.TopKey() < now - kTimeEpsilon) {
    const WorkflowId wid = critical_.Pop();
    const bool present = edf_.Erase(wid);
    WEBTX_DCHECK(present) << "critical queue out of sync with EDF-List";
    hdf_.Push(wid, HdfKey(states_[wid]));
  }
}

TxnId AsetsStarPolicy::PickNext(SimTime now) {
  FlushDirty(now);
  MigrateDue(now);
  if (edf_.empty() && hdf_.empty()) return kInvalidTxn;
  if (edf_.empty()) return states_[hdf_.Top()].head;
  if (hdf_.empty()) return states_[edf_.Top()].head;

  const WorkflowState& we = states_[edf_.Top()];
  const WorkflowState& wh = states_[hdf_.Top()];
  const double r_head_e = view().remaining(we.head);
  const double r_head_h = view().remaining(wh.head);
  const double s_rep_e = we.rep_deadline - (now + we.rep_remaining);
  const double s_rep_h = wh.rep_deadline - (now + wh.rep_remaining);

  double impact_e;  // tardiness added to wh's representative by running we
  double impact_h;  // tardiness added to we's representative by running wh
  if (options_.impact.clamp_slack) {
    impact_e = std::max(0.0, r_head_e - std::max(0.0, s_rep_h)) * wh.rep_weight;
    impact_h = std::max(0.0, r_head_h - std::max(0.0, s_rep_e)) * we.rep_weight;
  } else {
    impact_e = (r_head_e - s_rep_h) * wh.rep_weight;
    impact_h = (r_head_h - s_rep_e) * we.rep_weight;
  }
  const bool run_edf = options_.impact.ties_to_edf ? impact_e <= impact_h
                                                   : impact_e < impact_h;
  return run_edf ? we.head : wh.head;
}

TxnId AsetsStarPolicy::PickNextExcluding(SimTime now,
                                         const std::vector<TxnId>& exclude) {
  if (exclude.empty()) return PickNext(now);
  // Settle any pending callback marks with the exclusion set still empty
  // (matching the immediate-touch semantics those callbacks had), then
  // re-derive heads of the affected workflows with the exclusion set
  // active, decide, and restore the unexcluded view. The restore MUST
  // flush before returning: leaving it batched would refile those
  // workflows at a later event, after the simulator has charged progress
  // to their running members, with keys a rescan at `now` never sees.
  FlushDirty(now);
  excluded_heads_ = exclude;
  for (const TxnId id : exclude) MarkWorkflowsOf(id, now);
  const TxnId pick = PickNext(now);
  WEBTX_DCHECK(pick == kInvalidTxn || !IsExcluded(pick));
  excluded_heads_.clear();
  for (const TxnId id : exclude) MarkWorkflowsOf(id, now);
  FlushDirty(now);
  return pick;
}

AsetsStarPolicy::WorkflowSnapshot AsetsStarPolicy::SnapshotOf(WorkflowId id) {
  FlushDirty(dirty_now_);
  const WorkflowState& ws = states_[id];
  return WorkflowSnapshot{ws.active, ws.head, ws.rep_deadline,
                          ws.rep_remaining, ws.rep_weight};
}

}  // namespace webtx
