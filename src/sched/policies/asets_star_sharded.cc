#include "sched/policies/asets_star_sharded.h"

namespace webtx {

template class AsetsStarShardedPolicyT<IndexedPriorityQueue>;
template class AsetsStarShardedPolicyT<LazyDeleteHeap>;

}  // namespace webtx
