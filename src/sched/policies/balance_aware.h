#ifndef WEBTX_SCHED_POLICIES_BALANCE_AWARE_H_
#define WEBTX_SCHED_POLICIES_BALANCE_AWARE_H_

#include <memory>
#include <string>

#include "sched/scheduler_policy.h"

namespace webtx {

/// Activation cadence for the balance-aware wrapper (Sec. III-D).
enum class ActivationMode {
  /// A T_old runs whenever at least 1/rate time units passed since the
  /// previous forced activation.
  kTimeBased,
  /// A T_old runs every round(1/rate) scheduling points.
  kCountBased,
};

/// How T_old is chosen among ready transactions when an activation fires.
enum class OldestSelection {
  /// argmax w_i * max(0, now - d_i): the transaction currently hurting
  /// the worst-case metric the most (falls back to w_i/d_i when nothing
  /// is overdue). Default: over a long horizon, absolute deadlines make
  /// the literal w_i/d_i ratio degenerate to weight-only selection, and
  /// the paper's intent — rescue the oldest starving high-weight
  /// transaction — is captured by weighted overdue-ness (Sec. III-D's
  /// "natural aging scheme captured by the missed deadline").
  kWeightedOverdue,
  /// argmax w_i / d_i: the paper's literal formula.
  kWeightOverDeadline,
};

struct BalanceAwareOptions {
  ActivationMode mode = ActivationMode::kTimeBased;
  /// Activation rate; the paper sweeps 0.002-0.01 (time-based) and
  /// 0.02-0.1 (count-based). Higher rate = more frequent overrides =
  /// better worst case, worse average case.
  double rate = 0.005;
  OldestSelection selection = OldestSelection::kWeightedOverdue;
};

/// Balance-aware wrapper (Sec. III-D): trades average-case for worst-case
/// weighted tardiness by periodically overriding the inner policy and
/// running T_old — the ready transaction with the highest weight-to-
/// deadline ratio w_i/d_i (the natural aging key: the earliest-deadline,
/// highest-utility starving transaction).
///
/// Wraps any SchedulerPolicy; the paper uses it around ASETS*.
class BalanceAwarePolicy final : public SchedulerPolicy {
 public:
  BalanceAwarePolicy(std::unique_ptr<SchedulerPolicy> inner,
                     BalanceAwareOptions options);

  std::string name() const override;

  void Bind(const SimView& view) override;
  void OnArrival(TxnId id, SimTime now) override;
  void OnReady(TxnId id, SimTime now) override;
  void OnCompletion(TxnId id, SimTime now) override;
  void OnRemainingUpdated(TxnId id, SimTime now) override;
  void OnDropped(TxnId id, SimTime now) override;
  TxnId PickNext(SimTime now) override;
  TxnId PickNextExcluding(SimTime now,
                          const std::vector<TxnId>& exclude) override;

  /// Number of forced T_old activations so far (tests / diagnostics).
  size_t activation_count() const { return activations_; }

 protected:
  void Reset() override;

 private:
  bool ActivationDue(SimTime now) const;

  /// The ready T_old under the configured selection (never one of
  /// `exclude`), or kInvalidTxn.
  TxnId PickOldest(SimTime now, const std::vector<TxnId>& exclude) const;

  std::unique_ptr<SchedulerPolicy> inner_;
  BalanceAwareOptions options_;
  SimTime last_activation_time_ = 0.0;
  size_t points_since_activation_ = 0;
  size_t activations_ = 0;
};

}  // namespace webtx

#endif  // WEBTX_SCHED_POLICIES_BALANCE_AWARE_H_
