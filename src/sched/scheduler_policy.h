#ifndef WEBTX_SCHED_SCHEDULER_POLICY_H_
#define WEBTX_SCHED_SCHEDULER_POLICY_H_

#include <string>

#include "common/check.h"
#include "common/sim_time.h"
#include "sched/sim_view.h"
#include "txn/transaction.h"

namespace webtx {

/// Interface every scheduling policy implements.
///
/// The simulator drives a policy through a fixed protocol:
///   1. `Bind(view)` once per run, before any event.
///   2. For each event, in simulated-time order:
///      - `OnArrival(id)` when a transaction enters the system;
///      - `OnReady(id)` when it becomes runnable (at arrival for
///        independent transactions, or when its last dependency finishes);
///      - `OnCompletion(id)` when it finishes;
///      - `OnRemainingUpdated(id)` after the simulator reduces the
///        remaining time of the transaction that was running, at every
///        scheduling point where it did not finish;
///      - `OnDropped(id)` when a transaction the policy has observed
///        leaves the system without completing (load shedding, abort
///        retry budget exhausted, or a failed dependency).
///   3. `PickNext(now)` at every scheduling point (arrival or completion,
///      per Sec. III-A2 of the paper); the returned transaction must be
///      ready, or kInvalidTxn to idle. The chosen transaction runs until
///      the next scheduling point (preemptive at arrivals).
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  SchedulerPolicy(const SchedulerPolicy&) = delete;
  SchedulerPolicy& operator=(const SchedulerPolicy&) = delete;

  /// Display name, e.g. "EDF", "ASETS*".
  virtual std::string name() const = 0;

  /// Attaches the policy to a run and clears all internal state. Must be
  /// called before any event; a policy object can be reused across runs.
  virtual void Bind(const SimView& view) {
    view_ = &view;
    Reset();
  }

  virtual void OnArrival(TxnId id, SimTime now) {
    (void)id;
    (void)now;
  }
  virtual void OnReady(TxnId id, SimTime now) = 0;
  virtual void OnCompletion(TxnId id, SimTime now) = 0;
  virtual void OnRemainingUpdated(TxnId id, SimTime now) {
    (void)id;
    (void)now;
  }

  /// Failure semantics (see sim/simulator.h for the full contract): a
  /// transaction that leaves the system unfinished is dequeued first —
  /// if it was ready, `OnCompletion(id)` fires exactly as for a real
  /// completion (it is the dequeue signal) — and then `OnDropped(id)`
  /// follows so policies that track arrived-but-not-ready state (e.g.
  /// workflow representatives) can refresh. An aborted transaction that
  /// will retry is likewise dequeued via `OnCompletion` and re-announced
  /// with `OnReady` when it re-enters the ready set (its remaining time
  /// reset to the full estimate); no `OnDropped` fires for retries.
  virtual void OnDropped(TxnId id, SimTime now) {
    (void)id;
    (void)now;
  }

  /// A running transaction was migrated off a crashed server (warm: work
  /// retained, the transaction stays ready; cold: work discarded — the
  /// OnCompletion dequeue signal and the OnReady re-announcement have
  /// already fired, exactly as for an abort). Fires after those
  /// callbacks, before the scheduling round at the crash instant, so
  /// policies that cache derived plans (e.g. ASETS* workflow
  /// representatives and heads) can re-derive them from the
  /// post-migration state. Default: no re-planning.
  virtual void OnMigrated(TxnId id, SimTime now) {
    (void)id;
    (void)now;
  }

  /// The transaction to run until the next scheduling point, or
  /// kInvalidTxn when no transaction is ready.
  virtual TxnId PickNext(SimTime now) = 0;

  /// Multi-server extension: the transaction to run on a free server
  /// given that the transactions in `exclude` are already placed on
  /// other servers this scheduling point. The k-server simulator calls
  /// this greedily (exclude grows by one per placed server); with an
  /// empty `exclude` it must equal PickNext. The base implementation
  /// only supports the single-server case; policies opt into
  /// multi-server by overriding.
  virtual TxnId PickNextExcluding(SimTime now,
                                  const std::vector<TxnId>& exclude) {
    WEBTX_CHECK(exclude.empty())
        << name() << " does not support multi-server scheduling";
    return PickNext(now);
  }

 protected:
  SchedulerPolicy() = default;

  /// Clears per-run state. Called by Bind.
  virtual void Reset() = 0;

  const SimView& view() const {
    WEBTX_DCHECK(view_ != nullptr) << "policy used before Bind()";
    return *view_;
  }

 private:
  const SimView* view_ = nullptr;
};

}  // namespace webtx

#endif  // WEBTX_SCHED_SCHEDULER_POLICY_H_
