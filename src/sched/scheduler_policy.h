#ifndef WEBTX_SCHED_SCHEDULER_POLICY_H_
#define WEBTX_SCHED_SCHEDULER_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"
#include "sched/sim_view.h"
#include "txn/transaction.h"

namespace webtx {

class ThreadPool;

/// Optional sharded-state surface of a policy: the ready set is
/// partitioned into per-shard priority structures (one shard per
/// server), each pick round consults only shard-local heads, and a
/// transaction placed on a server whose shard does not own it is
/// STOLEN — its queue entries physically move to the placing shard,
/// keys preserved. Because every shipped priority structure pops in a
/// content-determined (key, id) total order, partitioning plus a
/// lexicographic merge over shard tops is decision-identical to one
/// global queue, so RunResult digests stay byte-identical to the
/// global-state policies (pinned by tests/sim/sharded_differential_test.cc).
///
/// Protocol, driven by the simulator (see sim/simulator.cc):
///   1. `BindShards(k)` once per run, after SchedulerPolicy::Bind and
///      before any event; a policy whose BindShards is never called
///      behaves exactly like its global-state twin (one shard).
///   2. `PrepareRound(now, pool)` at the top of each multi-server
///      scheduling round, before the first PickNextExcluding; policies
///      with deferred per-shard maintenance (ASETS* dirty flushes) may
///      fan it out on `pool`. Only invoked when a shard pool exists —
///      serial runs skip the hook and policies flush lazily in PickNext.
///   3. `OnPlaced(id, server, now)` for every transaction newly
///      dispatched this round, in ascending server order — the same
///      deterministic (time, shard, seq) discipline as the PR 5
///      cross-shard crash mailbox. Crash-migration rebinds and
///      admission-deferred re-entries need no extra hook: the victim
///      re-enters via OnReady into its owner shard and is re-homed by
///      the OnPlaced of its next dispatch.
///   4. `steal_count()` is the number of cross-shard moves so far this
///      run (bench plumbing; reset by BindShards).
class ShardedPolicyState {
 public:
  virtual ~ShardedPolicyState() = default;

  /// Partitions the policy state into `num_shards` shards (clamped to
  /// >= 1). Must be called before any event callback; resets the steal
  /// counter.
  virtual void BindShards(uint32_t num_shards) = 0;

  /// Hook for deferred per-shard maintenance at the top of a scheduling
  /// round. Called only when the simulator has a shard pool (`pool` is
  /// never null); results must be byte-identical to the lazy serial
  /// flush a pool-less run performs inside PickNext.
  virtual void PrepareRound(SimTime now, ThreadPool* pool) {
    (void)now;
    (void)pool;
  }

  /// Transaction `id` was dispatched to `server` this round; steals it
  /// into the server's shard if another shard owns it.
  virtual void OnPlaced(TxnId id, uint32_t server, SimTime now) = 0;

  /// Cross-shard moves performed since BindShards.
  virtual uint64_t steal_count() const = 0;
};

/// Interface every scheduling policy implements.
///
/// The simulator drives a policy through a fixed protocol:
///   1. `Bind(view)` once per run, before any event.
///   2. For each event, in simulated-time order:
///      - `OnArrival(id)` when a transaction enters the system;
///      - `OnReady(id)` when it becomes runnable (at arrival for
///        independent transactions, or when its last dependency finishes);
///      - `OnCompletion(id)` when it finishes;
///      - `OnRemainingUpdated(id)` after the simulator reduces the
///        remaining time of the transaction that was running, at every
///        scheduling point where it did not finish;
///      - `OnDropped(id)` when a transaction the policy has observed
///        leaves the system without completing (load shedding, abort
///        retry budget exhausted, or a failed dependency).
///   3. `PickNext(now)` at every scheduling point (arrival or completion,
///      per Sec. III-A2 of the paper); the returned transaction must be
///      ready, or kInvalidTxn to idle. The chosen transaction runs until
///      the next scheduling point (preemptive at arrivals).
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  SchedulerPolicy(const SchedulerPolicy&) = delete;
  SchedulerPolicy& operator=(const SchedulerPolicy&) = delete;

  /// Display name, e.g. "EDF", "ASETS*".
  virtual std::string name() const = 0;

  /// Attaches the policy to a run and clears all internal state. Must be
  /// called before any event; a policy object can be reused across runs.
  virtual void Bind(const SimView& view) {
    view_ = &view;
    Reset();
  }

  virtual void OnArrival(TxnId id, SimTime now) {
    (void)id;
    (void)now;
  }
  virtual void OnReady(TxnId id, SimTime now) = 0;
  virtual void OnCompletion(TxnId id, SimTime now) = 0;
  virtual void OnRemainingUpdated(TxnId id, SimTime now) {
    (void)id;
    (void)now;
  }

  /// Failure semantics (see sim/simulator.h for the full contract): a
  /// transaction that leaves the system unfinished is dequeued first —
  /// if it was ready, `OnCompletion(id)` fires exactly as for a real
  /// completion (it is the dequeue signal) — and then `OnDropped(id)`
  /// follows so policies that track arrived-but-not-ready state (e.g.
  /// workflow representatives) can refresh. An aborted transaction that
  /// will retry is likewise dequeued via `OnCompletion` and re-announced
  /// with `OnReady` when it re-enters the ready set (its remaining time
  /// reset to the full estimate); no `OnDropped` fires for retries.
  virtual void OnDropped(TxnId id, SimTime now) {
    (void)id;
    (void)now;
  }

  /// A running transaction was migrated off a crashed server (warm: work
  /// retained, the transaction stays ready; cold: work discarded — the
  /// OnCompletion dequeue signal and the OnReady re-announcement have
  /// already fired, exactly as for an abort). Fires after those
  /// callbacks, before the scheduling round at the crash instant, so
  /// policies that cache derived plans (e.g. ASETS* workflow
  /// representatives and heads) can re-derive them from the
  /// post-migration state. Default: no re-planning.
  virtual void OnMigrated(TxnId id, SimTime now) {
    (void)id;
    (void)now;
  }

  /// The transaction to run until the next scheduling point, or
  /// kInvalidTxn when no transaction is ready.
  virtual TxnId PickNext(SimTime now) = 0;

  /// Multi-server extension: the transaction to run on a free server
  /// given that the transactions in `exclude` are already placed on
  /// other servers this scheduling point. The k-server simulator calls
  /// this greedily (exclude grows by one per placed server); with an
  /// empty `exclude` it must equal PickNext. The base implementation
  /// only supports the single-server case; policies opt into
  /// multi-server by overriding.
  virtual TxnId PickNextExcluding(SimTime now,
                                  const std::vector<TxnId>& exclude) {
    WEBTX_CHECK(exclude.empty())
        << name() << " does not support multi-server scheduling";
    return PickNext(now);
  }

  /// One whole multi-server scheduling round: fills `out` (cleared
  /// first) with the picks for up to `k` free servers, in server-slot
  /// order, stopping early when the policy idles. MUST equal the greedy
  /// PickNextExcluding chain — out[i] is exactly what
  /// PickNextExcluding(now, {out[0..i-1]}) would return — which is what
  /// the default does literally, call by call. Policies whose exclusion
  /// semantics reduce to "the next k pops" may override with a batch
  /// implementation that skips the per-slot park-and-restore churn; the
  /// override carries the proof burden of byte-identical picks
  /// (differential-tested against the greedy chain by
  /// tests/sched/pick_excluding_test.cc and every pinned digest).
  virtual void PickBatch(SimTime now, size_t k, std::vector<TxnId>& out) {
    out.clear();
    for (size_t slot = 0; slot < k; ++slot) {
      const TxnId pick = PickNextExcluding(now, out);
      if (pick == kInvalidTxn) break;
      out.push_back(pick);
    }
  }

  /// False when OnRemainingUpdated is a no-op for this policy (its
  /// priority keys ignore remaining processing time), licensing the
  /// simulator to skip the per-scheduling-point refresh calls entirely.
  /// Skipping a no-op cannot change decisions; policies that return
  /// false but do react to the callback are contract violations.
  virtual bool WantsRemainingUpdates() const { return true; }

  /// The policy's sharded-state surface, or null for global-state
  /// policies (the default). The simulator calls this once per Run,
  /// right after Bind, and drives the ShardedPolicyState protocol only
  /// on a non-null result.
  virtual ShardedPolicyState* AsShardedState() { return nullptr; }

 protected:
  SchedulerPolicy() = default;

  /// Clears per-run state. Called by Bind.
  virtual void Reset() = 0;

  const SimView& view() const {
    WEBTX_DCHECK(view_ != nullptr) << "policy used before Bind()";
    return *view_;
  }

 private:
  const SimView* view_ = nullptr;
};

}  // namespace webtx

#endif  // WEBTX_SCHED_SCHEDULER_POLICY_H_
