#ifndef WEBTX_WORKLOAD_ARRIVAL_PROCESS_H_
#define WEBTX_WORKLOAD_ARRIVAL_PROCESS_H_

#include <memory>

#include "common/distributions.h"
#include "common/rng.h"
#include "common/sim_time.h"

namespace webtx {

/// A point process generating transaction arrival instants.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// The next arrival instant (strictly non-decreasing across calls).
  virtual SimTime Next(Rng& rng) = 0;

  /// Restarts the process at time zero.
  virtual void Reset() = 0;
};

/// Homogeneous Poisson arrivals with the given rate — the paper's Table-I
/// process.
class PoissonProcess final : public ArrivalProcess {
 public:
  explicit PoissonProcess(double rate);

  SimTime Next(Rng& rng) override;
  void Reset() override { clock_ = 0.0; }

 private:
  ExponentialDistribution interarrival_;
  SimTime clock_ = 0.0;
};

/// Markov-modulated ON/OFF Poisson process: an extension modeling the
/// "bursty and unpredictable behavior of web user populations" the
/// paper's introduction motivates (not part of Table I). ON and OFF
/// phases alternate with exponentially distributed durations; arrivals
/// occur only during ON phases, at a rate inflated so the LONG-RUN rate
/// equals `rate` regardless of burstiness.
///
/// `burstiness` in [0, 1): 0 degenerates to plain Poisson; larger values
/// concentrate the same arrival mass into shorter ON windows.
class OnOffPoissonProcess final : public ArrivalProcess {
 public:
  /// `mean_cycle` is the expected ON+OFF cycle duration in time units.
  OnOffPoissonProcess(double rate, double burstiness,
                      double mean_cycle = 400.0);

  SimTime Next(Rng& rng) override;
  void Reset() override;

  /// Fraction of time spent in the ON phase.
  double on_fraction() const { return on_fraction_; }

 private:
  double rate_;
  double on_fraction_;
  ExponentialDistribution on_duration_;
  ExponentialDistribution off_duration_;
  ExponentialDistribution burst_interarrival_;

  SimTime clock_ = 0.0;
  SimTime phase_end_ = 0.0;  // end of the current ON window
  bool in_on_phase_ = false;
};

/// Flash-crowd process: piecewise-constant-rate Poisson arrivals at
/// `base_rate` outside the spike window and `base_rate * spike_factor`
/// inside [spike_start, spike_start + spike_duration) — the "breaking
/// news" load shape the digital twin's controller is evaluated under.
/// The Poisson process is memoryless, so a candidate arrival falling on
/// the far side of a rate boundary is discarded and redrawn from the
/// boundary at the new rate (exact piecewise-constant thinning).
class FlashCrowdProcess final : public ArrivalProcess {
 public:
  FlashCrowdProcess(double base_rate, double spike_factor,
                    double spike_start, double spike_duration);

  SimTime Next(Rng& rng) override;
  void Reset() override { clock_ = 0.0; }

  double rate_at(SimTime t) const {
    const bool in_spike =
        t >= spike_start_ && t < spike_start_ + spike_duration_;
    return in_spike ? base_rate_ * spike_factor_ : base_rate_;
  }

 private:
  /// End of the rate segment containing `t` (kNever for the tail).
  SimTime SegmentEnd(SimTime t) const;

  double base_rate_;
  double spike_factor_;
  double spike_start_;
  double spike_duration_;
  SimTime clock_ = 0.0;
};

/// Builds the process implied by (rate, burstiness): plain Poisson when
/// burstiness == 0, ON/OFF modulated otherwise.
std::unique_ptr<ArrivalProcess> MakeArrivalProcess(double rate,
                                                   double burstiness);

}  // namespace webtx

#endif  // WEBTX_WORKLOAD_ARRIVAL_PROCESS_H_
