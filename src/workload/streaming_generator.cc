#include "workload/streaming_generator.h"

#include <algorithm>

#include "common/check.h"

namespace webtx {

Result<StreamingWorkloadGenerator> StreamingWorkloadGenerator::Create(
    const WorkloadSpec& spec, uint64_t seed) {
  WEBTX_RETURN_NOT_OK(spec.Validate());
  return StreamingWorkloadGenerator(spec, seed);
}

StreamingWorkloadGenerator::StreamingWorkloadGenerator(
    const WorkloadSpec& spec, uint64_t seed)
    : spec_(spec),
      length_dist_(spec.max_length - spec.min_length + 1, spec.zipf_alpha),
      slack_factor_(0.0, spec.k_max),
      weight_dist_(spec.min_weight, spec.max_weight),
      chain_length_dist_(1, static_cast<uint64_t>(spec.max_workflow_length)),
      chains_per_txn_dist_(1,
                           static_cast<uint64_t>(spec.max_workflows_per_txn)),
      estimate_factor_(1.0 - spec.estimate_error, 1.0 + spec.estimate_error),
      pass1_rng_(seed),
      pass2_rng_(seed),
      estimate_rng_(seed ^ 0x9e3779b97f4a7c15ULL),
      arrivals_(MakeArrivalProcess(spec.ArrivalRate(), spec.burstiness)) {
  // Fast-forward pass2_rng_ through the batch generator's complete
  // scalar pass: the SAME Sample/Next call sequence (draw counts are
  // data-dependent inside the samplers, so only replaying the calls —
  // not counting draws — lands on the right stream position), values
  // discarded. Uses a throwaway arrival process; the member one is
  // consumed by the lazy pass-1 replay.
  const std::unique_ptr<ArrivalProcess> ff_arrivals =
      MakeArrivalProcess(spec_.ArrivalRate(), spec_.burstiness);
  for (size_t i = 0; i < spec_.num_transactions; ++i) {
    (void)length_dist_.Sample(pass2_rng_);
    (void)ff_arrivals->Next(pass2_rng_);
    (void)slack_factor_.Sample(pass2_rng_);
    (void)weight_dist_.Sample(pass2_rng_);
  }
}

TransactionSpec StreamingWorkloadGenerator::Next() {
  WEBTX_CHECK(!Done());
  const size_t i = next_;
  TransactionSpec t;
  t.id = static_cast<TxnId>(i);

  // Scalar pass for this transaction (batch pass 1, replayed lazily).
  t.length = static_cast<SimTime>(spec_.min_length - 1 +
                                  length_dist_.Sample(pass1_rng_));
  t.arrival = arrivals_->Next(pass1_rng_);
  const double slack = slack_factor_.Sample(pass1_rng_);
  t.weight = static_cast<double>(weight_dist_.Sample(pass1_rng_));
  if (spec_.estimate_error > 0.0) {
    t.length_estimate =
        std::max(0.1, t.length * estimate_factor_.Sample(estimate_rng_));
  }

  // Topology pass (batch pass 2, byte-for-byte logic, pass2_rng_).
  const size_t want =
      static_cast<size_t>(chains_per_txn_dist_.Sample(pass2_rng_));
  joined_.clear();
  while (joined_.size() < want && joined_.size() < open_.size()) {
    const size_t pick = static_cast<size_t>(
        pass2_rng_.NextInRange(0, static_cast<uint64_t>(open_.size() - 1)));
    if (std::find(joined_.begin(), joined_.end(), pick) == joined_.end()) {
      joined_.push_back(pick);
    }
  }
  while (joined_.size() < want) {
    // opened_at is the RAW arrival: chains are opened before the batched
    // rewrite below, exactly as in the batch generator.
    open_.push_back(OpenChain{
        static_cast<size_t>(chain_length_dist_.Sample(pass2_rng_)), 0,
        kInvalidTxn, t.arrival, 0.0});
    joined_.push_back(open_.size() - 1);
  }

  SimTime batched_arrival = t.arrival;
  SimTime pred_frontier = 0.0;
  for (const size_t c : joined_) {
    OpenChain& chain = open_[c];
    if (chain.last != kInvalidTxn) {
      t.dependencies.push_back(chain.last);
      pred_frontier = std::max(pred_frontier, chain.frontier);
    }
    batched_arrival = std::min(batched_arrival, chain.opened_at);
  }
  if (spec_.batch_workflow_arrivals) {
    t.arrival = batched_arrival;
  }
  const SimTime earliest_finish =
      std::max(t.arrival, pred_frontier) + t.length;
  for (const size_t c : joined_) {
    OpenChain& chain = open_[c];
    chain.last = static_cast<TxnId>(i);
    ++chain.current_length;
    chain.frontier = earliest_finish;
  }
  std::sort(t.dependencies.begin(), t.dependencies.end());
  t.dependencies.erase(
      std::unique(t.dependencies.begin(), t.dependencies.end()),
      t.dependencies.end());
  for (size_t c = open_.size(); c-- > 0;) {
    if (open_[c].current_length >= open_[c].target_length) {
      open_[c] = open_.back();
      open_.pop_back();
    }
  }

  // Deadline (batch pass 3; no draws, so it folds into this call).
  const SimTime base = spec_.deadline_model == DeadlineModel::kPathAware
                           ? earliest_finish
                           : t.arrival + t.length;
  t.deadline = base + slack * t.length;

  ++next_;
  return t;
}

}  // namespace webtx
