#include "workload/trace.h"

#include <sstream>
#include <string>

#include "common/csv.h"

namespace webtx {

namespace {

std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

Status WriteTrace(const std::string& path,
                  const std::vector<TransactionSpec>& txns) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(txns.size() + 1);
  rows.push_back({"id", "arrival", "length", "estimate", "deadline",
                  "weight", "deps"});
  for (const TransactionSpec& t : txns) {
    std::string deps;
    for (size_t i = 0; i < t.dependencies.size(); ++i) {
      if (i > 0) deps += ';';
      deps += std::to_string(t.dependencies[i]);
    }
    rows.push_back({std::to_string(t.id), FormatDouble(t.arrival),
                    FormatDouble(t.length), FormatDouble(t.length_estimate),
                    FormatDouble(t.deadline), FormatDouble(t.weight), deps});
  }
  return WriteCsvFile(path, rows);
}

Result<std::vector<TransactionSpec>> ReadTrace(const std::string& path) {
  WEBTX_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(path));
  if (rows.empty()) {
    return Status::InvalidArgument("trace " + path + " is empty");
  }
  const std::vector<std::string> header = {
      "id", "arrival", "length", "estimate", "deadline", "weight", "deps"};
  if (rows[0] != header) {
    return Status::InvalidArgument("trace " + path + " has a bad header");
  }

  std::vector<TransactionSpec> txns;
  txns.reserve(rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 7) {
      return Status::InvalidArgument("trace row " + std::to_string(r) +
                                     " has " + std::to_string(row.size()) +
                                     " fields, want 7");
    }
    TransactionSpec t;
    WEBTX_ASSIGN_OR_RETURN(const long long id, ParseInt(row[0]));
    if (id < 0 || static_cast<size_t>(id) != txns.size()) {
      return Status::InvalidArgument(
          "trace ids must be dense and ascending; row " + std::to_string(r) +
          " has id " + row[0]);
    }
    t.id = static_cast<TxnId>(id);
    WEBTX_ASSIGN_OR_RETURN(t.arrival, ParseDouble(row[1]));
    WEBTX_ASSIGN_OR_RETURN(t.length, ParseDouble(row[2]));
    WEBTX_ASSIGN_OR_RETURN(t.length_estimate, ParseDouble(row[3]));
    WEBTX_ASSIGN_OR_RETURN(t.deadline, ParseDouble(row[4]));
    WEBTX_ASSIGN_OR_RETURN(t.weight, ParseDouble(row[5]));
    if (!row[6].empty()) {
      std::istringstream deps(row[6]);
      std::string field;
      while (std::getline(deps, field, ';')) {
        WEBTX_ASSIGN_OR_RETURN(const long long dep, ParseInt(field));
        if (dep < 0) {
          return Status::InvalidArgument("negative dependency id in row " +
                                         std::to_string(r));
        }
        t.dependencies.push_back(static_cast<TxnId>(dep));
      }
    }
    txns.push_back(std::move(t));
  }
  return txns;
}

}  // namespace webtx
