#include "workload/live_arrivals.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "common/rng.h"
#include "workload/arrival_process.h"

namespace webtx {

namespace {

/// Smallest task the live harnesses submit (mirrors exp/live_chaos.cc).
constexpr double kMinTaskSeconds = 1e-4;
constexpr double kMinRelativeDeadline = 1e-6;

double ExpDraw(Rng& rng, double mean) {
  return -mean * std::log1p(-rng.NextDouble());
}

}  // namespace

const char* LiveArrivalShapeName(LiveArrivalShape shape) {
  switch (shape) {
    case LiveArrivalShape::kPoisson:
      return "poisson";
    case LiveArrivalShape::kOnOff:
      return "onoff";
    case LiveArrivalShape::kFlashCrowd:
      return "flash";
  }
  return "?";
}

std::vector<LiveArrival> GenerateLiveArrivals(
    const LiveArrivalOptions& options) {
  WEBTX_CHECK_GT(options.rate, 0.0);
  WEBTX_CHECK_GT(options.mean_duration, 0.0);
  WEBTX_CHECK_GE(options.deadline_slack, 0.0);
  WEBTX_CHECK_GE(options.max_weight, 1u);
  std::unique_ptr<ArrivalProcess> process;
  switch (options.shape) {
    case LiveArrivalShape::kPoisson:
      process = std::make_unique<PoissonProcess>(options.rate);
      break;
    case LiveArrivalShape::kOnOff:
      process = std::make_unique<OnOffPoissonProcess>(
          options.rate, options.burstiness, options.on_off_mean_cycle);
      break;
    case LiveArrivalShape::kFlashCrowd:
      process = std::make_unique<FlashCrowdProcess>(
          options.rate, options.spike_factor, options.spike_start,
          options.spike_duration);
      break;
  }
  Rng rng(options.seed);
  std::vector<LiveArrival> arrivals(options.num_tasks);
  for (LiveArrival& a : arrivals) {
    a.arrival = process->Next(rng);
    a.duration = std::max(kMinTaskSeconds, ExpDraw(rng, options.mean_duration));
    a.relative_deadline =
        a.duration * (1.0 + options.deadline_slack * rng.NextDouble());
    a.weight = static_cast<double>(rng.NextInRange(1, options.max_weight));
  }
  return arrivals;
}

std::vector<LiveArrival> LiveArrivalsFromTrace(
    const std::vector<TransactionSpec>& specs) {
  std::vector<size_t> order(specs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (specs[a].arrival != specs[b].arrival) {
      return specs[a].arrival < specs[b].arrival;
    }
    return a < b;
  });
  std::vector<LiveArrival> arrivals;
  arrivals.reserve(specs.size());
  for (const size_t i : order) {
    const TransactionSpec& spec = specs[i];
    LiveArrival a;
    a.arrival = spec.arrival;
    a.duration = std::max(kMinTaskSeconds, spec.length);
    a.relative_deadline =
        std::max(kMinRelativeDeadline, spec.deadline - spec.arrival);
    a.weight = spec.weight;
    arrivals.push_back(a);
  }
  return arrivals;
}

}  // namespace webtx
