#include "workload/spec.h"

#include "common/distributions.h"

namespace webtx {

Status WorkloadSpec::Validate() const {
  if (num_transactions == 0) {
    return Status::InvalidArgument("num_transactions must be positive");
  }
  if (zipf_alpha < 0.0) {
    return Status::InvalidArgument("zipf_alpha must be non-negative");
  }
  if (min_length < 1 || min_length > max_length) {
    return Status::InvalidArgument("length range must satisfy 1 <= min <= max");
  }
  if (k_max < 0.0) {
    return Status::InvalidArgument("k_max must be non-negative");
  }
  if (utilization <= 0.0) {
    return Status::InvalidArgument("utilization must be positive");
  }
  if (min_weight < 1 || min_weight > max_weight) {
    return Status::InvalidArgument("weight range must satisfy 1 <= min <= max");
  }
  if (max_workflow_length == 0) {
    return Status::InvalidArgument("max_workflow_length must be >= 1");
  }
  if (max_workflows_per_txn == 0) {
    return Status::InvalidArgument("max_workflows_per_txn must be >= 1");
  }
  if (burstiness < 0.0 || burstiness >= 1.0) {
    return Status::InvalidArgument("burstiness must be in [0, 1)");
  }
  if (estimate_error < 0.0 || estimate_error >= 1.0) {
    return Status::InvalidArgument("estimate_error must be in [0, 1)");
  }
  return Status::OK();
}

double WorkloadSpec::MeanLength() const {
  // Lengths are min_length - 1 + Zipf(alpha) over [1, max_length -
  // min_length + 1]; for the paper's min_length = 1 this is plain
  // Zipf(alpha) over [1, max_length].
  const ZipfDistribution zipf(max_length - min_length + 1, zipf_alpha);
  return static_cast<double>(min_length - 1) + zipf.Mean();
}

}  // namespace webtx
