#ifndef WEBTX_WORKLOAD_STREAMING_GENERATOR_H_
#define WEBTX_WORKLOAD_STREAMING_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/distributions.h"
#include "common/result.h"
#include "common/rng.h"
#include "txn/transaction.h"
#include "workload/arrival_process.h"
#include "workload/spec.h"

namespace webtx {

/// Open-system workload generator that materializes transactions one at
/// a time, in id order, BIT-IDENTICAL to WorkloadGenerator::Generate
/// for the same (spec, seed) — pinned by
/// tests/workload/streaming_generator_test.cc across the spec matrix.
/// A 10^7-transaction run can therefore stream its arrivals instead of
/// holding the full population in generator-side arrays: peak state is
/// O(open workflow chains), not O(n).
///
/// ## Why bit-identity is non-trivial
///
/// The batch generator draws in three passes over ONE RNG: all
/// per-transaction scalars first (length, arrival, slack, weight), then
/// all topology draws (chain counts, chain picks via rejection,
/// chain lengths). Draw counts are data-dependent (rejection loops), so
/// a naive "interleave passes per transaction" generator would consume
/// the stream in a different order and diverge. This class instead runs
/// TWO same-seeded RNG streams:
///
///   - `pass1_rng_` replays the scalar pass lazily, one transaction per
///     Next() call;
///   - `pass2_rng_` was fast-forwarded at construction through the
///     complete scalar-pass draw sequence (values discarded, O(1)
///     memory), leaving it positioned exactly where the batch
///     generator's topology pass begins; Next() then consumes it with
///     the identical per-transaction topology logic.
///
/// Estimates replay the batch generator's separate estimate stream.
/// Deadlines need no draws (slack was a scalar-pass value), so the
/// batch generator's third pass folds into Next() directly.
///
/// The construction-time fast-forward costs one linear sweep of RNG
/// draws (no allocation); every Next() after that is O(open chains).
class StreamingWorkloadGenerator {
 public:
  /// Validates the spec and positions both RNG streams.
  static Result<StreamingWorkloadGenerator> Create(const WorkloadSpec& spec,
                                                   uint64_t seed);

  StreamingWorkloadGenerator(StreamingWorkloadGenerator&&) = default;
  StreamingWorkloadGenerator& operator=(StreamingWorkloadGenerator&&) =
      default;

  size_t num_transactions() const { return spec_.num_transactions; }

  /// Transactions produced so far; the next Next() returns id produced().
  size_t produced() const { return next_; }

  bool Done() const { return next_ >= spec_.num_transactions; }

  /// The next transaction, identical to element produced() of the batch
  /// generator's vector. Must not be called when Done().
  TransactionSpec Next();

  /// Number of workflow chains currently under construction — the
  /// generator's only population-dependent state (tests/introspection).
  size_t open_chains() const { return open_.size(); }

  const WorkloadSpec& spec() const { return spec_; }

 private:
  /// A workflow chain under construction (mirrors the batch generator).
  struct OpenChain {
    size_t target_length;
    size_t current_length = 0;
    TxnId last = kInvalidTxn;
    SimTime opened_at = 0.0;  // page-request instant for batch arrivals
    SimTime frontier = 0.0;   // earliest possible finish of the last member
  };

  StreamingWorkloadGenerator(const WorkloadSpec& spec, uint64_t seed);

  WorkloadSpec spec_;
  ZipfDistribution length_dist_;
  UniformRealDistribution slack_factor_;
  UniformIntDistribution weight_dist_;
  UniformIntDistribution chain_length_dist_;
  UniformIntDistribution chains_per_txn_dist_;
  UniformRealDistribution estimate_factor_;

  Rng pass1_rng_;     // replays the scalar pass lazily
  Rng pass2_rng_;     // pre-advanced to the topology pass
  Rng estimate_rng_;  // the batch generator's independent estimate stream
  std::unique_ptr<ArrivalProcess> arrivals_;  // consumed by pass1_rng_

  size_t next_ = 0;
  std::vector<OpenChain> open_;
  std::vector<size_t> joined_;  // scratch: chains joined by this txn
};

}  // namespace webtx

#endif  // WEBTX_WORKLOAD_STREAMING_GENERATOR_H_
