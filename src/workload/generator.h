#ifndef WEBTX_WORKLOAD_GENERATOR_H_
#define WEBTX_WORKLOAD_GENERATOR_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "txn/transaction.h"
#include "workload/spec.h"

namespace webtx {

/// Synthesizes transaction workloads per the paper's Sec. IV-A recipe:
///
///   1. lengths ~ min_length - 1 + Zipf(alpha) over the length range;
///   2. arrival times: Poisson process with rate utilization / mean-length
///      (cumulative exponential interarrivals), in id order;
///   3. deadlines: d_i = a_i + l_i + k_i * l_i, k_i ~ U[0, k_max];
///   4. weights: integer U[min_weight, max_weight];
///   5. workflow topology: chains built in arrival order. Each chain is
///      created with a target length ~ U[1, max_workflow_length]; each
///      transaction joins n ~ U[1, max_workflows_per_txn] distinct open
///      chains (opening new chains when fewer exist), adding a dependency
///      on the chain's current last transaction; a chain closes when it
///      reaches its target length. Edges always point from earlier to
///      later transactions, so the result is a DAG by construction.
///      Chains that share a transaction merge into larger workflow DAGs,
///      which is how a transaction comes to belong to several workflows.
///
/// Given the same spec and seed, the generated workload is bit-identical
/// across platforms (xoshiro256**-based).
class WorkloadGenerator {
 public:
  /// Validates the spec (returns InvalidArgument on bad parameters).
  static Result<WorkloadGenerator> Create(const WorkloadSpec& spec);

  /// Generates one workload instance for `seed`.
  std::vector<TransactionSpec> Generate(uint64_t seed) const;

  const WorkloadSpec& spec() const { return spec_; }

 private:
  explicit WorkloadGenerator(const WorkloadSpec& spec) : spec_(spec) {}

  WorkloadSpec spec_;
};

}  // namespace webtx

#endif  // WEBTX_WORKLOAD_GENERATOR_H_
