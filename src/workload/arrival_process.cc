#include "workload/arrival_process.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace webtx {

PoissonProcess::PoissonProcess(double rate) : interarrival_(rate) {}

SimTime PoissonProcess::Next(Rng& rng) {
  clock_ += interarrival_.Sample(rng);
  return clock_;
}

OnOffPoissonProcess::OnOffPoissonProcess(double rate, double burstiness,
                                         double mean_cycle)
    // Member rates are clamped positive so construction reaches the
    // meaningful CHECKs below even for out-of-range arguments.
    : rate_(rate),
      on_fraction_(1.0 - burstiness),
      on_duration_(1.0 / std::max(1e-9, mean_cycle * on_fraction_)),
      off_duration_(1.0 /
                    std::max(1e-9, mean_cycle * (1.0 - on_fraction_))),
      burst_interarrival_(std::max(1e-9, rate) /
                          std::max(1e-9, on_fraction_)) {
  WEBTX_CHECK_GT(rate, 0.0);
  WEBTX_CHECK(burstiness >= 0.0 && burstiness < 1.0)
      << "burstiness must be in [0, 1)";
  WEBTX_CHECK_GT(mean_cycle, 0.0);
}

void OnOffPoissonProcess::Reset() {
  clock_ = 0.0;
  phase_end_ = 0.0;
  in_on_phase_ = false;
}

SimTime OnOffPoissonProcess::Next(Rng& rng) {
  if (on_fraction_ >= 1.0) {
    // Degenerate: plain Poisson.
    clock_ += burst_interarrival_.Sample(rng);
    return clock_;
  }
  while (true) {
    if (!in_on_phase_) {
      // Skip the OFF window, then open an ON window.
      clock_ = phase_end_ + off_duration_.Sample(rng);
      phase_end_ = clock_ + on_duration_.Sample(rng);
      in_on_phase_ = true;
    }
    const SimTime candidate = clock_ + burst_interarrival_.Sample(rng);
    if (candidate <= phase_end_) {
      clock_ = candidate;
      return clock_;
    }
    // The would-be arrival falls past the ON window: close the phase.
    in_on_phase_ = false;
  }
}

FlashCrowdProcess::FlashCrowdProcess(double base_rate, double spike_factor,
                                     double spike_start,
                                     double spike_duration)
    : base_rate_(base_rate),
      spike_factor_(spike_factor),
      spike_start_(spike_start),
      spike_duration_(spike_duration) {
  WEBTX_CHECK_GT(base_rate, 0.0);
  WEBTX_CHECK_GE(spike_factor, 1.0);
  WEBTX_CHECK_GE(spike_start, 0.0);
  WEBTX_CHECK_GE(spike_duration, 0.0);
}

SimTime FlashCrowdProcess::SegmentEnd(SimTime t) const {
  if (t < spike_start_) return spike_start_;
  if (t < spike_start_ + spike_duration_) {
    return spike_start_ + spike_duration_;
  }
  return std::numeric_limits<SimTime>::infinity();
}

SimTime FlashCrowdProcess::Next(Rng& rng) {
  while (true) {
    const double rate = rate_at(clock_);
    const SimTime segment_end = SegmentEnd(clock_);
    // Inverse-CDF exponential gap at the segment's rate; one draw per
    // probe keeps the stream a pure function of (knobs, seed).
    const SimTime gap = -std::log1p(-rng.NextDouble()) / rate;
    const SimTime candidate = clock_ + gap;
    if (candidate < segment_end) {
      clock_ = candidate;
      return clock_;
    }
    // Crossed a rate boundary: memorylessness lets us restart the draw
    // exactly at the boundary under the new rate.
    clock_ = segment_end;
  }
}

std::unique_ptr<ArrivalProcess> MakeArrivalProcess(double rate,
                                                   double burstiness) {
  if (burstiness <= 0.0) {
    return std::make_unique<PoissonProcess>(rate);
  }
  return std::make_unique<OnOffPoissonProcess>(rate, burstiness);
}

}  // namespace webtx
