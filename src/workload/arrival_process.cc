#include "workload/arrival_process.h"

#include <algorithm>

#include "common/check.h"

namespace webtx {

PoissonProcess::PoissonProcess(double rate) : interarrival_(rate) {}

SimTime PoissonProcess::Next(Rng& rng) {
  clock_ += interarrival_.Sample(rng);
  return clock_;
}

OnOffPoissonProcess::OnOffPoissonProcess(double rate, double burstiness,
                                         double mean_cycle)
    // Member rates are clamped positive so construction reaches the
    // meaningful CHECKs below even for out-of-range arguments.
    : rate_(rate),
      on_fraction_(1.0 - burstiness),
      on_duration_(1.0 / std::max(1e-9, mean_cycle * on_fraction_)),
      off_duration_(1.0 /
                    std::max(1e-9, mean_cycle * (1.0 - on_fraction_))),
      burst_interarrival_(std::max(1e-9, rate) /
                          std::max(1e-9, on_fraction_)) {
  WEBTX_CHECK_GT(rate, 0.0);
  WEBTX_CHECK(burstiness >= 0.0 && burstiness < 1.0)
      << "burstiness must be in [0, 1)";
  WEBTX_CHECK_GT(mean_cycle, 0.0);
}

void OnOffPoissonProcess::Reset() {
  clock_ = 0.0;
  phase_end_ = 0.0;
  in_on_phase_ = false;
}

SimTime OnOffPoissonProcess::Next(Rng& rng) {
  if (on_fraction_ >= 1.0) {
    // Degenerate: plain Poisson.
    clock_ += burst_interarrival_.Sample(rng);
    return clock_;
  }
  while (true) {
    if (!in_on_phase_) {
      // Skip the OFF window, then open an ON window.
      clock_ = phase_end_ + off_duration_.Sample(rng);
      phase_end_ = clock_ + on_duration_.Sample(rng);
      in_on_phase_ = true;
    }
    const SimTime candidate = clock_ + burst_interarrival_.Sample(rng);
    if (candidate <= phase_end_) {
      clock_ = candidate;
      return clock_;
    }
    // The would-be arrival falls past the ON window: close the phase.
    in_on_phase_ = false;
  }
}

std::unique_ptr<ArrivalProcess> MakeArrivalProcess(double rate,
                                                   double burstiness) {
  if (burstiness <= 0.0) {
    return std::make_unique<PoissonProcess>(rate);
  }
  return std::make_unique<OnOffPoissonProcess>(rate, burstiness);
}

}  // namespace webtx
