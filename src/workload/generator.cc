#include "workload/generator.h"

#include <algorithm>

#include "common/check.h"
#include "common/distributions.h"
#include "workload/arrival_process.h"

namespace webtx {

Result<WorkloadGenerator> WorkloadGenerator::Create(const WorkloadSpec& spec) {
  WEBTX_RETURN_NOT_OK(spec.Validate());
  return WorkloadGenerator(spec);
}

namespace {

/// A workflow chain under construction (generator-internal).
struct OpenChain {
  size_t target_length;
  size_t current_length = 0;
  TxnId last = kInvalidTxn;
  SimTime opened_at = 0.0;  // page-request instant for batch arrivals
  SimTime frontier = 0.0;   // earliest possible finish of the last member
};

}  // namespace

std::vector<TransactionSpec> WorkloadGenerator::Generate(uint64_t seed) const {
  Rng rng(seed);
  const size_t n = spec_.num_transactions;
  std::vector<TransactionSpec> txns(n);

  const ZipfDistribution length_dist(spec_.max_length - spec_.min_length + 1,
                                     spec_.zipf_alpha);
  const std::unique_ptr<ArrivalProcess> arrivals =
      MakeArrivalProcess(spec_.ArrivalRate(), spec_.burstiness);
  const UniformRealDistribution slack_factor(0.0, spec_.k_max);
  const UniformIntDistribution weight_dist(spec_.min_weight,
                                           spec_.max_weight);
  const UniformIntDistribution chain_length_dist(
      1, static_cast<uint64_t>(spec_.max_workflow_length));
  const UniformIntDistribution chains_per_txn_dist(
      1, static_cast<uint64_t>(spec_.max_workflows_per_txn));

  // Pass 1: lengths, raw arrival instants, slack factors, weights.
  // Estimates draw from an independent stream so the base workload is
  // bit-identical across estimate_error settings (an error sweep then
  // isolates the estimation effect).
  Rng estimate_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  const UniformRealDistribution estimate_factor(1.0 - spec_.estimate_error,
                                                1.0 + spec_.estimate_error);
  std::vector<double> slack_factors(n);
  for (size_t i = 0; i < n; ++i) {
    TransactionSpec& t = txns[i];
    t.id = static_cast<TxnId>(i);
    t.length = static_cast<SimTime>(spec_.min_length - 1 +
                                    length_dist.Sample(rng));
    t.arrival = arrivals->Next(rng);
    slack_factors[i] = slack_factor.Sample(rng);
    t.weight = static_cast<double>(weight_dist.Sample(rng));
    if (spec_.estimate_error > 0.0) {
      t.length_estimate =
          std::max(0.1, t.length * estimate_factor.Sample(estimate_rng));
    }
  }

  // Pass 2: workflow topology. Chains are built in arrival order; with
  // max_workflow_length == 1 every chain closes at its first member, so
  // all transactions stay independent. Edges always point from earlier to
  // later transactions, hence acyclic by construction.
  std::vector<OpenChain> open;
  std::vector<size_t> joined;  // indices into `open` chosen for this txn
  std::vector<SimTime> earliest_finish(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t want =
        static_cast<size_t>(chains_per_txn_dist.Sample(rng));
    joined.clear();
    // Choose `want` distinct open chains uniformly; open new ones if short.
    while (joined.size() < want && joined.size() < open.size()) {
      const size_t pick = static_cast<size_t>(
          rng.NextInRange(0, static_cast<uint64_t>(open.size() - 1)));
      if (std::find(joined.begin(), joined.end(), pick) == joined.end()) {
        joined.push_back(pick);
      }
    }
    while (joined.size() < want) {
      open.push_back(OpenChain{
          static_cast<size_t>(chain_length_dist.Sample(rng)), 0,
          kInvalidTxn, txns[i].arrival, 0.0});
      joined.push_back(open.size() - 1);
    }

    SimTime batched_arrival = txns[i].arrival;
    SimTime pred_frontier = 0.0;
    for (const size_t c : joined) {
      OpenChain& chain = open[c];
      if (chain.last != kInvalidTxn) {
        txns[i].dependencies.push_back(chain.last);
        pred_frontier = std::max(pred_frontier, chain.frontier);
      }
      batched_arrival = std::min(batched_arrival, chain.opened_at);
    }
    if (spec_.batch_workflow_arrivals) {
      // Page-request semantics: the transaction is submitted when the
      // earliest workflow it belongs to was requested.
      txns[i].arrival = batched_arrival;
    }
    // Earliest possible finish given predecessors, used by the
    // path-aware deadline model.
    earliest_finish[i] =
        std::max(txns[i].arrival, pred_frontier) + txns[i].length;
    for (const size_t c : joined) {
      OpenChain& chain = open[c];
      chain.last = static_cast<TxnId>(i);
      ++chain.current_length;
      chain.frontier = earliest_finish[i];
    }
    // Deduplicate dependencies (two chains can share the same tail).
    auto& deps = txns[i].dependencies;
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());

    // Close finished chains (erase by swap; order within `open` is
    // irrelevant to the distribution).
    for (size_t c = open.size(); c-- > 0;) {
      if (open[c].current_length >= open[c].target_length) {
        open[c] = open.back();
        open.pop_back();
      }
    }
  }

  // Pass 3: deadlines. Path-aware: d_i = E_i + k_i * l_i (reduces to the
  // Table-I formula for independent transactions, where E_i = a_i + l_i);
  // own-length: the literal Table-I formula.
  for (size_t i = 0; i < n; ++i) {
    const SimTime base =
        spec_.deadline_model == DeadlineModel::kPathAware
            ? earliest_finish[i]
            : txns[i].arrival + txns[i].length;
    txns[i].deadline = base + slack_factors[i] * txns[i].length;
  }

  return txns;
}

}  // namespace webtx
