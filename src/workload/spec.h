#ifndef WEBTX_WORKLOAD_SPEC_H_
#define WEBTX_WORKLOAD_SPEC_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace webtx {

/// How deadlines are assigned to workflow members (no effect on
/// independent transactions).
enum class DeadlineModel {
  /// d_i = E_i + k_i * l_i, where E_i is the earliest possible finish of
  /// T_i given its predecessors (E_i = a_i + l_i when independent, which
  /// is exactly the paper's Table-I formula). Keeps chains feasible at
  /// low load while preserving the precedence/deadline conflicts of
  /// Sec. II-B (a dependent with a small k_i can still be due before its
  /// predecessors).
  kPathAware,
  /// The literal Table-I formula d_i = a_i + l_i + k_i * l_i even inside
  /// workflows; long chains are then intrinsically tardy regardless of
  /// load (every policy pays the same floor).
  kOwnLength,
};

/// Workload parameters — a direct encoding of the paper's Table I.
///
/// Defaults reproduce the paper's base setting: 1000 transactions, lengths
/// Zipf(alpha = 0.5) over [1, 50] time units, slack factor k ~ U[0, 3],
/// Poisson arrivals with rate utilization / mean-length, equal weights, no
/// precedence constraints. Weighted experiments set max_weight = 10;
/// workflow experiments set max_workflow_length / max_workflows_per_txn.
struct WorkloadSpec {
  /// Number of transactions per run (paper: 1000).
  size_t num_transactions = 1000;

  /// Zipf skew of the length distribution (paper default alpha = 0.5,
  /// "skewed toward short transactions").
  double zipf_alpha = 0.5;
  /// Length support [min_length, max_length] in time units (paper: 1-50).
  uint64_t min_length = 1;
  uint64_t max_length = 50;

  /// Deadline d_i = a_i + l_i + k_i * l_i with k_i ~ U[0, k_max]
  /// (paper default k_max = 3.0).
  double k_max = 3.0;

  /// Target system utilization; Poisson arrival rate =
  /// utilization / mean-transaction-length (paper sweeps 0.1 .. 1.0).
  double utilization = 0.5;

  /// Integer weights drawn uniformly from [min_weight, max_weight]
  /// (paper: 1-10 in the weighted experiments; 1-1 elsewhere).
  uint64_t min_weight = 1;
  uint64_t max_weight = 1;

  /// Workflow topology (Sec. IV-A): a chain's length is drawn uniformly
  /// from [1, max_workflow_length]; the number of chains a transaction
  /// joins is drawn uniformly from [1, max_workflows_per_txn]. Length 1
  /// with 1 chain per transaction yields independent transactions.
  size_t max_workflow_length = 1;
  size_t max_workflows_per_txn = 1;

  /// When true (default), every member of a workflow chain arrives when
  /// the chain's first member arrives — the paper's page-request
  /// semantics (Sec. II-B: "all transactions are submitted to the
  /// database as the user logs onto the system"). Deadlines are computed
  /// from this shared arrival, which is what creates the paper's
  /// precedence/deadline *conflicts* (a short urgent dependent can have
  /// an earlier deadline than its long predecessor). When false, each
  /// transaction keeps its own Poisson arrival. Irrelevant when
  /// max_workflow_length == 1.
  bool batch_workflow_arrivals = true;

  /// See DeadlineModel; default keeps workflow deadlines feasible.
  DeadlineModel deadline_model = DeadlineModel::kPathAware;

  /// Length-estimation error in [0, 1): the scheduler plans with
  /// length_estimate = length * U[1 - e, 1 + e] instead of the true
  /// length (Sec. II-A: lengths are "computed by the system based on
  /// previous statistics", i.e. never exact). 0 (default) = perfect
  /// estimates, as the paper's evaluation implicitly assumes.
  double estimate_error = 0.0;

  /// Arrival burstiness in [0, 1): 0 (default) is the paper's plain
  /// Poisson process; larger values concentrate the same long-run
  /// arrival rate into ON/OFF bursts (see workload/arrival_process.h) —
  /// an extension modeling the bursty web populations of Sec. I.
  double burstiness = 0.0;

  /// Rejects nonsensical parameter combinations.
  Status Validate() const;

  /// Exact mean of the configured length distribution.
  double MeanLength() const;

  /// Poisson arrival rate implied by utilization and the mean length.
  double ArrivalRate() const { return utilization / MeanLength(); }
};

}  // namespace webtx

#endif  // WEBTX_WORKLOAD_SPEC_H_
