#ifndef WEBTX_WORKLOAD_LIVE_ARRIVALS_H_
#define WEBTX_WORKLOAD_LIVE_ARRIVALS_H_

#include <cstdint>
#include <vector>

#include "txn/transaction.h"

namespace webtx {

/// One arrival the live front end will submit to rt::Executor: the
/// common currency between the trace replayer, the open-loop load
/// generator, and the digital twin's serving loop (rt/twin.h). All
/// times are seconds; `arrival` instants are non-decreasing within a
/// generated batch.
struct LiveArrival {
  double arrival = 0.0;
  /// Simulated execution cost (TaskSpec::simulated_duration AND the
  /// policy's estimate — the live generator models honest estimates;
  /// estimate error studies live in bench/ext_estimate_error).
  double duration = 0.0;
  double relative_deadline = 0.0;
  double weight = 1.0;
};

/// Arrival-shape of the open-loop generator.
enum class LiveArrivalShape : uint8_t {
  kPoisson = 0,     // homogeneous Poisson at `rate`
  kOnOff,           // bursty Markov-modulated ON/OFF (workload/arrival_process)
  kFlashCrowd,      // rate spike in [spike_start, spike_start + spike_duration)
};

const char* LiveArrivalShapeName(LiveArrivalShape shape);

struct LiveArrivalOptions {
  LiveArrivalShape shape = LiveArrivalShape::kPoisson;
  uint64_t seed = 1;
  size_t num_tasks = 100;
  /// Long-run arrival rate (per second). For kFlashCrowd this is the
  /// BASE rate; the spike multiplies it by spike_factor.
  double rate = 100.0;
  /// kOnOff: burstiness in [0, 1) and expected ON+OFF cycle seconds.
  double burstiness = 0.5;
  double on_off_mean_cycle = 2.0;
  /// kFlashCrowd knobs.
  double spike_factor = 8.0;
  double spike_start = 1.0;
  double spike_duration = 1.0;
  /// Exponential task durations with this mean (floored at a small
  /// positive epsilon).
  double mean_duration = 0.05;
  /// relative_deadline = duration * (1 + deadline_slack * U[0,1)).
  double deadline_slack = 2.0;
  /// Weights drawn uniformly from {1, ..., max_weight}.
  uint64_t max_weight = 1;
};

/// Materializes the whole batch up front (arrival order fixes TxnId
/// assignment at submission, the live determinism contract). A pure
/// function of the options, byte-stable across platforms.
std::vector<LiveArrival> GenerateLiveArrivals(const LiveArrivalOptions& options);

/// Trace replayer adapter: converts recorded TransactionSpecs
/// (workload/trace.h ReadTrace) into live arrivals, sorted by (arrival,
/// id). Dependencies are dropped — the live replayer feeds open-ended
/// submissions. Deadlines already in the past of their arrival are
/// clamped to a tiny positive relative deadline (Submit requires > 0).
std::vector<LiveArrival> LiveArrivalsFromTrace(
    const std::vector<TransactionSpec>& specs);

}  // namespace webtx

#endif  // WEBTX_WORKLOAD_LIVE_ARRIVALS_H_
