#ifndef WEBTX_WORKLOAD_TRACE_H_
#define WEBTX_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "txn/transaction.h"

namespace webtx {

/// CSV trace persistence so workloads can be captured, inspected and
/// replayed (see examples/trace_replay.cc).
///
/// Format (header required):
///   id,arrival,length,estimate,deadline,weight,deps
/// where `estimate` is the scheduler's length estimate (0 = exact) and
/// `deps` is a ';'-separated list of predecessor ids (empty when the
/// transaction is independent). Lines starting with '#' are comments.
Status WriteTrace(const std::string& path,
                  const std::vector<TransactionSpec>& txns);

/// Parses a trace written by WriteTrace. Validates density of ids and
/// field syntax; dependency-graph validity is checked later by
/// Simulator::Create.
Result<std::vector<TransactionSpec>> ReadTrace(const std::string& path);

}  // namespace webtx

#endif  // WEBTX_WORKLOAD_TRACE_H_
