// chaos — randomized crash-failover campaign runner and replay tool.
//
// Campaign mode (default): runs N randomized (policy, fault plan, seed)
// cases through the simulator and the independent schedule validator;
// on the first invariant violation the failing case is shrunk to a
// local minimum and serialized as a replay file.
//
//   chaos [--cases N] [--seed S] [--out reproducer.chaos] [--verbose]
//
// Replay mode: re-runs a serialized case and reports the schedule
// digest plus the validator verdict. Byte-identical replays print the
// same digest on every machine.
//
//   chaos --replay reproducer.chaos
//
// Mint mode: when a campaign finds no violations (the healthy state),
// this produces a regression reproducer anyway — it takes the first
// randomized case exhibiting cold-failover migrations and shrinks it
// against the behavioral predicate "still migrates work off a crashed
// server", then writes the minimal case as a replay file. The replay
// integration test pins such a file plus its schedule digest.
//
//   chaos --mint FILE [--seed S]
//
// Live mode: the same campaign idea pointed at the LIVE executor
// (rt::Executor) under a VirtualClock — seeded fault injection (worker
// crashes, stall windows, forced aborts, latency spikes), retry storms,
// admission control, and the stall watchdog, audited by the live trace
// validator. Every case runs twice and must produce byte-identical
// trace digests (the determinism contract).
//
//   chaos --live [--cases N] [--seed S] [--out reproducer.chaos] [--verbose]
//
// Live replays share the --replay flag: the file header says which
// harness the case belongs to.
//
//   chaos --mint-live FILE [--seed S]   mint a live regression replay
//
// Twin mode: the digital-twin campaign (rt::Twin via exp/twin_chaos.h):
// seeded open-loop workloads (flash crowds, bursty ON/OFF) served live
// while the shadow-simulator controller forecasts, switches, and falls
// back behind its divergence guard. Every case runs twice and must
// produce byte-identical digests covering the trace AND the decision
// log; the first run is audited by the live validator plus the
// controller contract. Controller-enabled cases additionally re-run
// across forecast_threads 1/2/8 and with forecast pooling toggled —
// the decision-loop cost knobs must be digest-neutral.
//
//   chaos --twin [--cases N] [--seed S] [--out reproducer.chaos] [--verbose]
//   chaos --mint-twin FILE [--seed S]   mint a guard-exercising replay
//
// Twin replays also route through --replay (by file header).
//
// Huge mode: scale campaign for the large-population structures. Each
// case is a 10^5-transaction crash/abort/retry scenario run with the
// calendar-queue pending tier and the arena-SoA transaction store
// (SimOptions::pending_queue / txn_store), audited by the independent
// schedule validator, AND re-run with the historical structures to
// prove the schedule digests are byte-identical at scale.
//
//   chaos --huge [--cases N] [--seed S] [--txns T]
//
// Steal mode: campaign for the sharded policy state. Each case is a
// multi-server, workflow-heavy, overloaded scenario run once with a
// global-state policy and once with its "-sharded" variant (per-shard
// ready structures + deterministic work stealing; see
// sched/scheduler_policy.h). The sharded run is audited by the
// schedule validator and its digest must be byte-identical to the
// global run — the steal protocol must never change a decision.
//
//   chaos --steal [--cases N] [--seed S]
//
// Exit status: 0 when every case passed (or the replay validates),
// 1 on invariant violations (or a huge-/steal-mode digest divergence),
// 2 on usage/IO errors.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/chaos.h"
#include "exp/live_chaos.h"
#include "exp/twin_chaos.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--live|--twin] [--cases N] [--seed S] [--out FILE] "
               "[--verbose]\n"
               "       %s --replay FILE\n"
               "       %s --mint FILE [--seed S]\n"
               "       %s --mint-live FILE [--seed S]\n"
               "       %s --mint-twin FILE [--seed S]\n"
               "       %s --huge [--cases N] [--seed S] [--txns T]\n"
               "       %s --steal [--cases N] [--seed S]\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

// One case of the huge-scale campaign: a dense fault cocktail at
// population `num_txns`, derived deterministically from (seed, index).
webtx::ChaosCase HugeChaosCase(uint64_t master_seed, uint64_t index,
                               size_t num_txns) {
  webtx::ChaosCase c = webtx::RandomChaosCase(master_seed, index);
  // Keep the randomized policy/fault/retry draw, scale the population,
  // and make sure every structure carries load: aborts + retries feed
  // the pending wheel, workflows feed the SoA successor arena.
  c.num_transactions = num_txns;
  c.utilization = 0.9;
  c.max_workflow_length = 4;
  c.max_workflows_per_txn = 2;
  if (c.fault.abort_rate == 0.0) c.fault.abort_rate = 0.01;
  if (c.retry.max_attempts < 2) c.retry.max_attempts = 3;
  if (c.retry.backoff == 0.0) c.retry.backoff = 1.0;
  c.pending_queue = webtx::PendingQueueImpl::kCalendarQueue;
  c.txn_store = webtx::TxnStoreLayout::kArenaSoA;
  return c;
}

int RunHugeCampaign(uint64_t master_seed, size_t num_cases, size_t num_txns) {
  int failures = 0;
  for (uint64_t i = 0; i < num_cases; ++i) {
    const webtx::ChaosCase c = HugeChaosCase(master_seed, i, num_txns);
    auto run = webtx::RunChaosCase(c);
    if (!run.ok()) {
      std::fprintf(stderr, "chaos: huge case %llu: %s\n",
                   static_cast<unsigned long long>(i),
                   run.status().ToString().c_str());
      return 2;
    }
    const webtx::RunResult result = std::move(run).ValueOrDie();
    const webtx::Status verdict = webtx::CheckChaosInvariants(c, result);
    const uint64_t digest = webtx::ScheduleDigest(result);
    // Differential at scale: the historical structures must produce the
    // byte-identical schedule.
    webtx::ChaosCase reference = c;
    reference.pending_queue = webtx::PendingQueueImpl::kBinaryHeap;
    reference.txn_store = webtx::TxnStoreLayout::kSpecVector;
    auto ref_run = webtx::RunChaosCase(reference);
    if (!ref_run.ok()) {
      std::fprintf(stderr, "chaos: huge case %llu (reference): %s\n",
                   static_cast<unsigned long long>(i),
                   ref_run.status().ToString().c_str());
      return 2;
    }
    const uint64_t ref_digest =
        webtx::ScheduleDigest(ref_run.ValueOrDie());
    const bool diverged = digest != ref_digest;
    std::printf(
        "case %llu policy=%-22s txns=%zu crashes=%zu migrations=%zu "
        "aborts=%zu digest=%016llx validator=%s structures=%s\n",
        static_cast<unsigned long long>(i), c.policy.c_str(),
        c.num_transactions, result.num_crashes, result.num_migrations,
        result.num_aborts, static_cast<unsigned long long>(digest),
        verdict.ok() ? "ok" : verdict.ToString().c_str(),
        diverged ? "DIVERGED" : "byte-identical");
    if (!verdict.ok() || diverged) ++failures;
  }
  std::printf("huge cases        %zu\n", num_cases);
  std::printf("failures          %d\n", failures);
  return failures > 0 ? 1 : 0;
}

// One case of the steal campaign: multi-server, workflow-heavy and
// overloaded (every round places k heads, so cross-shard steals are
// dense), with the randomized policy mapped onto a base that has a
// sharded-state variant.
webtx::ChaosCase StealChaosCase(uint64_t master_seed, uint64_t index) {
  webtx::ChaosCase c = webtx::RandomChaosCase(master_seed, index);
  c.num_servers = 1u << (1 + index % 3);  // 2, 4, 8
  if (c.utilization < 2.0) c.utilization = 2.0;
  if (c.max_workflow_length < 3) c.max_workflow_length = 3;
  if (c.max_workflows_per_txn < 2) c.max_workflows_per_txn = 2;
  static const char* const kShardedBases[] = {
      "FCFS", "EDF", "SRPT", "LS", "HDF", "HVF", "ASETS*", "ASETS*-lazy"};
  for (const char* base : kShardedBases) {
    if (c.policy == base) return c;
  }
  c.policy = kShardedBases[index % 8];
  return c;
}

int RunStealCampaign(uint64_t master_seed, size_t num_cases) {
  int failures = 0;
  for (uint64_t i = 0; i < num_cases; ++i) {
    const webtx::ChaosCase global = StealChaosCase(master_seed, i);
    auto global_run = webtx::RunChaosCase(global);
    if (!global_run.ok()) {
      std::fprintf(stderr, "chaos: steal case %llu (global): %s\n",
                   static_cast<unsigned long long>(i),
                   global_run.status().ToString().c_str());
      return 2;
    }
    const uint64_t global_digest =
        webtx::ScheduleDigest(global_run.ValueOrDie());

    webtx::ChaosCase sharded = global;
    sharded.policy = global.policy + "-sharded";
    auto run = webtx::RunChaosCase(sharded);
    if (!run.ok()) {
      std::fprintf(stderr, "chaos: steal case %llu (sharded): %s\n",
                   static_cast<unsigned long long>(i),
                   run.status().ToString().c_str());
      return 2;
    }
    const webtx::RunResult result = std::move(run).ValueOrDie();
    const webtx::Status verdict =
        webtx::CheckChaosInvariants(sharded, result);
    const uint64_t digest = webtx::ScheduleDigest(result);
    const bool diverged = digest != global_digest;
    std::printf(
        "case %llu policy=%-22s servers=%zu crashes=%zu migrations=%zu "
        "aborts=%zu digest=%016llx validator=%s steal=%s\n",
        static_cast<unsigned long long>(i), sharded.policy.c_str(),
        sharded.num_servers, result.num_crashes, result.num_migrations,
        result.num_aborts, static_cast<unsigned long long>(digest),
        verdict.ok() ? "ok" : verdict.ToString().c_str(),
        diverged ? "DIVERGED" : "byte-identical");
    if (!verdict.ok() || diverged) ++failures;
  }
  std::printf("steal cases       %zu\n", num_cases);
  std::printf("failures          %d\n", failures);
  return failures > 0 ? 1 : 0;
}

// Re-runs a live replay twice: prints the trace digest, the determinism
// verdict (the two digests must match), and the live validator verdict.
int RunLiveReplay(const webtx::LiveChaosCase& c) {
  auto first = webtx::RunLiveChaosCase(c);
  if (!first.ok()) {
    std::fprintf(stderr, "chaos: %s\n", first.status().ToString().c_str());
    return 2;
  }
  auto second = webtx::RunLiveChaosCase(c);
  if (!second.ok()) {
    std::fprintf(stderr, "chaos: %s\n", second.status().ToString().c_str());
    return 2;
  }
  const webtx::LiveChaosRun run = std::move(first).ValueOrDie();
  const bool deterministic = run.digest == second.ValueOrDie().digest;
  std::printf("mode              live\n");
  std::printf("policy            %s\n", c.policy.c_str());
  std::printf("tasks             %zu\n", c.num_tasks);
  std::printf("workers           %zu\n", c.num_workers);
  std::printf("crashes           %zu\n", run.stats.crashes);
  std::printf("stalls            %zu\n", run.stats.stalls);
  std::printf("migrations        %zu\n", run.stats.migrations);
  std::printf("forced_aborts     %zu\n", run.stats.forced_aborts);
  std::printf("completed         %zu\n", run.stats.completed);
  std::printf("trace_digest      %016llx\n",
              static_cast<unsigned long long>(run.digest));
  std::printf("determinism       %s\n",
              deterministic ? "byte-identical" : "DIVERGED");
  const webtx::Status verdict = webtx::CheckLiveChaosInvariants(c, run);
  std::printf("validator         %s\n", verdict.ToString().c_str());
  return verdict.ok() && deterministic ? 0 : 1;
}

int RunLiveCampaign(const webtx::ChaosCampaignOptions& sim_options,
                    bool verbose) {
  webtx::LiveChaosCampaignOptions options;
  options.master_seed = sim_options.master_seed;
  options.num_cases = sim_options.num_cases;
  options.reproducer_path = sim_options.reproducer_path;
  if (verbose) {
    options.progress = [](size_t index, const std::string& violation) {
      if (violation.empty()) {
        std::fprintf(stderr, "live case %zu ok\n", index);
      } else {
        std::fprintf(stderr, "live case %zu VIOLATION: %s\n", index,
                     violation.c_str());
      }
    };
  }
  auto campaign = webtx::RunLiveChaosCampaign(options);
  if (!campaign.ok()) {
    std::fprintf(stderr, "chaos: %s\n",
                 campaign.status().ToString().c_str());
    return 2;
  }
  const webtx::LiveChaosCampaignResult r = std::move(campaign).ValueOrDie();
  std::printf("live cases        %zu\n", r.cases_run);
  std::printf("violations        %zu\n", r.violations);
  std::printf("nondeterministic  %zu\n", r.determinism_mismatches);
  std::printf("total_crashes     %zu\n", r.total_crashes);
  std::printf("total_stalls      %zu\n", r.total_stalls);
  std::printf("total_migrations  %zu\n", r.total_migrations);
  std::printf("total_aborts      %zu\n", r.total_forced_aborts);
  std::printf("total_retries     %zu\n", r.total_retries);
  if (r.violations > 0) {
    std::printf("first violation: %s\n", r.first_violation.c_str());
    if (!options.reproducer_path.empty()) {
      std::printf("shrunken reproducer written to %s\n",
                  options.reproducer_path.c_str());
    } else {
      std::printf("shrunken reproducer:\n%s",
                  webtx::SerializeLiveChaosCase(r.first_reproducer).c_str());
    }
    return 1;
  }
  return 0;
}

int RunMintLive(const std::string& path, uint64_t master_seed) {
  // Behavioral predicate: the case is deterministic, validates, and
  // still fails work over off a dead slot — the deepest live path
  // (zombie attempt, slot detach, uncharged re-dispatch).
  const webtx::LiveChaosPredicate migrates =
      [](const webtx::LiveChaosCase& c) {
        auto first = webtx::RunLiveChaosCase(c);
        if (!first.ok()) return false;
        auto second = webtx::RunLiveChaosCase(c);
        if (!second.ok()) return false;
        const webtx::LiveChaosRun& run = first.ValueOrDie();
        return run.digest == second.ValueOrDie().digest &&
               run.stats.migrations >= 1 &&
               webtx::CheckLiveChaosInvariants(c, run).ok();
      };
  for (uint64_t i = 0; i < 10000; ++i) {
    webtx::LiveChaosCase c = webtx::RandomLiveChaosCase(master_seed, i);
    if (!migrates(c)) continue;
    c = webtx::ShrinkLiveChaosCase(c, migrates);
    std::ofstream file(path);
    file << webtx::SerializeLiveChaosCase(c);
    if (!file.good()) {
      std::fprintf(stderr, "chaos: cannot write %s\n", path.c_str());
      return 2;
    }
    const webtx::LiveChaosRun run =
        webtx::RunLiveChaosCase(c).ValueOrDie();
    std::printf("minted %s (live case %llu of seed %llu)\n", path.c_str(),
                static_cast<unsigned long long>(i),
                static_cast<unsigned long long>(master_seed));
    std::printf("tasks             %zu\n", c.num_tasks);
    std::printf("migrations        %zu\n", run.stats.migrations);
    std::printf("trace_digest      %016llx\n",
                static_cast<unsigned long long>(run.digest));
    return 0;
  }
  std::fprintf(stderr, "chaos: no live migration case found\n");
  return 2;
}

// Re-runs a twin replay twice: prints the combined digest (trace +
// decision log), the determinism verdict, and the invariant verdict.
int RunTwinReplay(const webtx::TwinChaosCase& c) {
  auto first = webtx::RunTwinChaosCase(c);
  if (!first.ok()) {
    std::fprintf(stderr, "chaos: %s\n", first.status().ToString().c_str());
    return 2;
  }
  auto second = webtx::RunTwinChaosCase(c);
  if (!second.ok()) {
    std::fprintf(stderr, "chaos: %s\n", second.status().ToString().c_str());
    return 2;
  }
  const webtx::rt::TwinReport report = std::move(first).ValueOrDie();
  const bool deterministic = report.digest == second.ValueOrDie().digest;
  std::printf("mode              twin\n");
  std::printf("shape             %s\n", webtx::LiveArrivalShapeName(c.shape));
  std::printf("tasks             %zu\n", c.num_tasks);
  std::printf("workers           %zu\n", c.num_workers);
  std::printf("candidates        %zu\n", c.candidates.size());
  std::printf("controller        %s\n", c.controller_enabled ? "on" : "off");
  std::printf("decisions         %zu\n", report.decisions.size());
  std::printf("switches          %zu\n", report.switches);
  std::printf("fallbacks         %zu\n", report.fallbacks);
  std::printf("completed         %zu\n", report.stats.completed);
  std::printf("avg_tardiness     %.6f\n", report.avg_tardiness);
  std::printf("shed_ratio        %.4f\n", report.shed_ratio);
  std::printf("twin_digest       %016llx\n",
              static_cast<unsigned long long>(report.digest));
  std::printf("determinism       %s\n",
              deterministic ? "byte-identical" : "DIVERGED");
  const webtx::Status verdict = webtx::CheckTwinChaosInvariants(c, report);
  std::printf("validator         %s\n", verdict.ToString().c_str());
  return verdict.ok() && deterministic ? 0 : 1;
}

int RunTwinCampaign(const webtx::ChaosCampaignOptions& sim_options,
                    bool verbose) {
  webtx::TwinChaosCampaignOptions options;
  options.master_seed = sim_options.master_seed;
  // Each twin case runs the live loop twice plus a simulator fleet per
  // control tick; trim the sim campaign's default.
  options.num_cases =
      sim_options.num_cases == 200 ? 25 : sim_options.num_cases;
  options.reproducer_path = sim_options.reproducer_path;
  if (verbose) {
    options.progress = [](size_t index, const std::string& violation) {
      if (violation.empty()) {
        std::fprintf(stderr, "twin case %zu ok\n", index);
      } else {
        std::fprintf(stderr, "twin case %zu VIOLATION: %s\n", index,
                     violation.c_str());
      }
    };
  }
  auto campaign = webtx::RunTwinChaosCampaign(options);
  if (!campaign.ok()) {
    std::fprintf(stderr, "chaos: %s\n",
                 campaign.status().ToString().c_str());
    return 2;
  }
  const webtx::TwinChaosCampaignResult r = std::move(campaign).ValueOrDie();
  std::printf("twin cases        %zu\n", r.cases_run);
  std::printf("violations        %zu\n", r.violations);
  std::printf("nondeterministic  %zu\n", r.determinism_mismatches);
  std::printf("thread_mismatch   %zu\n", r.neutrality_mismatches);
  std::printf("total_decisions   %zu\n", r.total_decisions);
  std::printf("total_switches    %zu\n", r.total_switches);
  std::printf("total_fallbacks   %zu\n", r.total_fallbacks);
  std::printf("total_crashes     %zu\n", r.total_crashes);
  std::printf("total_migrations  %zu\n", r.total_migrations);
  if (r.violations > 0) {
    std::printf("first violation: %s\n", r.first_violation.c_str());
    if (!options.reproducer_path.empty()) {
      std::printf("shrunken reproducer written to %s\n",
                  options.reproducer_path.c_str());
    } else {
      std::printf("shrunken reproducer:\n%s",
                  webtx::SerializeTwinChaosCase(r.first_reproducer).c_str());
    }
    return 1;
  }
  return 0;
}

int RunMintTwin(const std::string& path, uint64_t master_seed) {
  // Behavioral predicate: the case is deterministic, passes every
  // invariant, and the divergence guard actually fired — the controller
  // noticed its shadow model lying and fell back. The pinned replay
  // regression-tests the whole loop: live serving, forecasting,
  // reconfiguration, guard, cooldown.
  const webtx::TwinChaosPredicate guard_fired =
      [](const webtx::TwinChaosCase& c) {
        auto first = webtx::RunTwinChaosCase(c);
        if (!first.ok()) return false;
        auto second = webtx::RunTwinChaosCase(c);
        if (!second.ok()) return false;
        const webtx::rt::TwinReport& report = first.ValueOrDie();
        return report.digest == second.ValueOrDie().digest &&
               report.fallbacks >= 1 &&
               webtx::CheckTwinChaosInvariants(c, report).ok();
      };
  for (uint64_t i = 0; i < 10000; ++i) {
    webtx::TwinChaosCase c = webtx::RandomTwinChaosCase(master_seed, i);
    // Pin the acceptance scenario: a flash crowd served by an enabled
    // controller whose snapshot stream is corrupted.
    c.shape = webtx::LiveArrivalShape::kFlashCrowd;
    c.controller_enabled = true;
    if (c.snapshot_corruption == 1.0) c.snapshot_corruption = 8.0;
    if (!guard_fired(c)) continue;
    c = webtx::ShrinkTwinChaosCase(c, guard_fired);
    std::ofstream file(path);
    file << webtx::SerializeTwinChaosCase(c);
    if (!file.good()) {
      std::fprintf(stderr, "chaos: cannot write %s\n", path.c_str());
      return 2;
    }
    const webtx::rt::TwinReport report =
        webtx::RunTwinChaosCase(c).ValueOrDie();
    std::printf("minted %s (twin case %llu of seed %llu)\n", path.c_str(),
                static_cast<unsigned long long>(i),
                static_cast<unsigned long long>(master_seed));
    std::printf("tasks             %zu\n", c.num_tasks);
    std::printf("fallbacks         %zu\n", report.fallbacks);
    std::printf("twin_digest       %016llx\n",
                static_cast<unsigned long long>(report.digest));
    return 0;
  }
  std::fprintf(stderr, "chaos: no guard-exercising twin case found\n");
  return 2;
}

int RunReplay(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "chaos: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << file.rdbuf();
  // The header names the harness; try the live parser first (it rejects
  // sim replays on the header line alone).
  auto live = webtx::ParseLiveChaosReplay(text.str());
  if (live.ok()) return RunLiveReplay(live.ValueOrDie());
  const std::string live_error = live.status().ToString();
  if (live_error.find("not a live chaos replay file") == std::string::npos) {
    // Right header, malformed body: report the live parser's error
    // instead of confusing the user with the sim parser's.
    std::fprintf(stderr, "chaos: %s\n", live_error.c_str());
    return 2;
  }
  auto twin = webtx::ParseTwinChaosReplay(text.str());
  if (twin.ok()) return RunTwinReplay(twin.ValueOrDie());
  const std::string twin_error = twin.status().ToString();
  if (twin_error.find("not a twin replay file") == std::string::npos) {
    std::fprintf(stderr, "chaos: %s\n", twin_error.c_str());
    return 2;
  }
  auto parsed = webtx::ParseChaosReplay(text.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "chaos: %s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const webtx::ChaosCase c = std::move(parsed).ValueOrDie();
  auto run = webtx::RunChaosCase(c);
  if (!run.ok()) {
    std::fprintf(stderr, "chaos: %s\n", run.status().ToString().c_str());
    return 2;
  }
  const webtx::RunResult result = std::move(run).ValueOrDie();
  std::printf("policy            %s\n", c.policy.c_str());
  std::printf("transactions      %zu\n", c.num_transactions);
  std::printf("servers           %zu\n", c.num_servers);
  std::printf("crashes           %zu\n", result.num_crashes);
  std::printf("migrations        %zu\n", result.num_migrations);
  std::printf("aborts            %zu\n", result.num_aborts);
  std::printf("goodput           %.4f\n", result.goodput);
  std::printf("schedule_digest   %016llx\n",
              static_cast<unsigned long long>(webtx::ScheduleDigest(result)));
  const webtx::Status verdict = webtx::CheckChaosInvariants(c, result);
  std::printf("validator         %s\n", verdict.ToString().c_str());
  return verdict.ok() ? 0 : 1;
}

int RunMint(const std::string& path, uint64_t master_seed) {
  // Behavioral predicate: the case runs, validates, and still migrates
  // at least one transaction off a crashed server under cold failover —
  // the deepest code path (attempt bump, work zeroed, no retry charge).
  const webtx::ChaosPredicate cold_migrates = [](const webtx::ChaosCase& c) {
    if (c.fault.migration != webtx::MigrationPolicy::kCold) return false;
    auto run = webtx::RunChaosCase(c);
    if (!run.ok()) return false;
    const webtx::RunResult& result = run.ValueOrDie();
    return result.num_migrations >= 1 &&
           webtx::CheckChaosInvariants(c, result).ok();
  };
  for (uint64_t i = 0; i < 10000; ++i) {
    webtx::ChaosCase c = webtx::RandomChaosCase(master_seed, i);
    if (!cold_migrates(c)) continue;
    c = webtx::ShrinkChaosCase(c, cold_migrates);
    std::ofstream file(path);
    file << webtx::SerializeChaosCase(c);
    if (!file.good()) {
      std::fprintf(stderr, "chaos: cannot write %s\n", path.c_str());
      return 2;
    }
    const webtx::RunResult result =
        webtx::RunChaosCase(c).ValueOrDie();
    std::printf("minted %s (case %llu of seed %llu)\n", path.c_str(),
                static_cast<unsigned long long>(i),
                static_cast<unsigned long long>(master_seed));
    std::printf("transactions      %zu\n", c.num_transactions);
    std::printf("migrations        %zu\n", result.num_migrations);
    std::printf("schedule_digest   %016llx\n",
                static_cast<unsigned long long>(
                    webtx::ScheduleDigest(result)));
    return 0;
  }
  std::fprintf(stderr, "chaos: no cold-migration case found\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  webtx::ChaosCampaignOptions options;
  bool verbose = false;
  bool huge = false;
  bool live = false;
  bool steal = false;
  bool twin = false;
  size_t huge_txns = 100000;
  std::string replay_path;
  std::string mint_path;
  std::string mint_live_path;
  std::string mint_twin_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--cases") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.num_cases = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.master_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.reproducer_path = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      replay_path = v;
    } else if (arg == "--mint") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      mint_path = v;
    } else if (arg == "--mint-live") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      mint_live_path = v;
    } else if (arg == "--mint-twin") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      mint_twin_path = v;
    } else if (arg == "--live") {
      live = true;
    } else if (arg == "--twin") {
      twin = true;
    } else if (arg == "--huge") {
      huge = true;
    } else if (arg == "--steal") {
      steal = true;
    } else if (arg == "--txns") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      huge_txns = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (!replay_path.empty()) return RunReplay(replay_path);
  if (!mint_path.empty()) return RunMint(mint_path, options.master_seed);
  if (!mint_live_path.empty()) {
    return RunMintLive(mint_live_path, options.master_seed);
  }
  if (!mint_twin_path.empty()) {
    return RunMintTwin(mint_twin_path, options.master_seed);
  }
  if (live) return RunLiveCampaign(options, verbose);
  if (twin) return RunTwinCampaign(options, verbose);
  if (huge) {
    // The default 200 campaign cases would be excessive at 10^5 txns.
    const size_t cases = options.num_cases == 200 ? 5 : options.num_cases;
    return RunHugeCampaign(options.master_seed, cases, huge_txns);
  }
  if (steal) {
    // Each steal case runs twice (global + sharded); trim the default.
    const size_t cases = options.num_cases == 200 ? 25 : options.num_cases;
    return RunStealCampaign(options.master_seed, cases);
  }

  if (verbose) {
    options.progress = [](size_t index, const std::string& violation) {
      if (violation.empty()) {
        std::fprintf(stderr, "case %zu ok\n", index);
      } else {
        std::fprintf(stderr, "case %zu VIOLATION: %s\n", index,
                     violation.c_str());
      }
    };
  }
  auto campaign = webtx::RunChaosCampaign(options);
  if (!campaign.ok()) {
    std::fprintf(stderr, "chaos: %s\n",
                 campaign.status().ToString().c_str());
    return 2;
  }
  const webtx::ChaosCampaignResult r = std::move(campaign).ValueOrDie();
  std::printf("cases             %zu\n", r.cases_run);
  std::printf("violations        %zu\n", r.violations);
  std::printf("total_crashes     %zu\n", r.total_crashes);
  std::printf("total_migrations  %zu\n", r.total_migrations);
  std::printf("total_aborts      %zu\n", r.total_aborts);
  std::printf("total_outages     %zu\n", r.total_outages);
  if (r.violations > 0) {
    std::printf("first violation: %s\n", r.first_violation.c_str());
    if (!options.reproducer_path.empty()) {
      std::printf("shrunken reproducer written to %s\n",
                  options.reproducer_path.c_str());
    } else {
      std::printf("shrunken reproducer:\n%s",
                  webtx::SerializeChaosCase(r.first_reproducer).c_str());
    }
    return 1;
  }
  return 0;
}
